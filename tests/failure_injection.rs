//! Failure-injection integration tests: erroneous votes, conflicting
//! votes, disconnected queries, truncated path enumeration, and degenerate
//! inputs must all degrade gracefully rather than corrupt the graph.

use kg_datasets::{erdos_renyi, generate_votes, GeneratorOptions, VoteGenConfig};
use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_sim::SimilarityConfig;
use kg_votes::encode::{encode_multi, EncodeOptions, MultiParams};
use kg_votes::{
    solve_multi_votes, solve_single_votes, MultiVoteOptions, SingleVoteOptions, Vote, VoteSet,
};
use proptest::prelude::*;

/// Two hub/answer pairs plus an unreachable answer.
fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId, NodeId) {
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let h1 = b.add_node("h1", NodeKind::Entity);
    let h2 = b.add_node("h2", NodeKind::Entity);
    let a1 = b.add_node("a1", NodeKind::Answer);
    let a2 = b.add_node("a2", NodeKind::Answer);
    let unreachable = b.add_node("unreachable", NodeKind::Answer);
    b.add_edge(q, h1, 0.5).unwrap();
    b.add_edge(q, h2, 0.5).unwrap();
    b.add_edge(h1, a1, 0.7).unwrap();
    b.add_edge(h2, a2, 0.3).unwrap();
    (b.build(), q, a1, a2, unreachable)
}

#[test]
fn erroneous_vote_is_discarded_and_graph_untouched() {
    let (mut g, q, a1, _, unreachable) = scene();
    let snap = WeightSnapshot::capture(&g);
    // The "best" answer is unreachable: no weight assignment can fix it.
    let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, unreachable], unreachable)]);
    let report = solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default());
    assert_eq!(report.discarded_votes, 1);
    assert_eq!(snap.squared_distance(&g), 0.0);
}

#[test]
fn directly_contradictory_votes_converge_to_one_side() {
    let (mut g, q, a1, a2, _) = scene();
    // Same query, opposite preferences — a maximally conflicting batch.
    let votes = VoteSet::from_votes(vec![
        Vote::new(q, vec![a1, a2], a2),
        Vote::new(q, vec![a1, a2], a1),
    ]);
    let report = solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default());
    // Exactly one of the two votes can be satisfied.
    assert_eq!(report.satisfied_votes(), 1, "{report:?}");
    // Weights stay inside the box.
    for e in g.edges() {
        assert!(e.weight > 0.0 && e.weight <= 1.0);
    }
}

#[test]
fn disconnected_query_yields_zero_scores_but_no_panic() {
    let mut b = GraphBuilder::new();
    let q = b.add_node("lonely", NodeKind::Query);
    let a = b.add_node("a", NodeKind::Answer);
    let g = b.build();
    let ranked = kg_sim::rank_answers(&g, q, &[a], &SimilarityConfig::default(), 5);
    assert_eq!(ranked[0].score, 0.0);
}

#[test]
fn truncated_enumeration_is_flagged_not_silent() {
    // A dense-ish graph with a tiny expansion budget must set `truncated`.
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let mut hubs = Vec::new();
    for i in 0..6 {
        hubs.push(b.add_node(format!("h{i}"), NodeKind::Entity));
    }
    let a = b.add_node("a", NodeKind::Answer);
    for &h in &hubs {
        b.add_edge(q, h, 1.0 / 6.0).unwrap();
        for &h2 in &hubs {
            if h != h2 {
                b.add_edge(h, h2, 0.1).unwrap();
            }
        }
        b.add_edge(h, a, 0.2).unwrap();
    }
    let g = b.build();
    let vote = Vote::new(q, vec![a], a);
    let opts = EncodeOptions {
        max_expansions: 10,
        ..Default::default()
    };
    let prog = encode_multi(&g, &[vote], &opts, &MultiParams::default());
    assert!(prog.truncated);
}

#[test]
fn empty_vote_set_is_a_noop_everywhere() {
    let (mut g, _, _, _, _) = scene();
    let snap = WeightSnapshot::capture(&g);
    let r1 = solve_multi_votes(&mut g, &VoteSet::new(), &MultiVoteOptions::default());
    let r2 = solve_single_votes(&mut g, &VoteSet::new(), &SingleVoteOptions::default());
    assert!(r1.outcomes.is_empty() && r2.outcomes.is_empty());
    assert_eq!(snap.squared_distance(&g), 0.0);
}

#[test]
fn vote_on_single_answer_list_is_trivially_positive() {
    let (mut g, q, a1, _, _) = scene();
    let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1], a1)]);
    let report = solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default());
    assert_eq!(report.outcomes[0].rank_before, 1);
    assert_eq!(report.outcomes[0].rank_after, 1);
}

#[test]
fn weights_remain_valid_after_many_adversarial_rounds() {
    let (mut g, q, a1, a2, _) = scene();
    // Alternate contradictory batches for several rounds.
    for round in 0..6 {
        let best = if round % 2 == 0 { a2 } else { a1 };
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], best)]);
        solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default());
    }
    for e in g.edges() {
        assert!(
            e.weight.is_finite() && e.weight > 0.0 && e.weight <= 1.0,
            "edge {:?} left the box: {}",
            e.edge,
            e.weight
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No optimization pipeline may ever leave a non-finite (or
    /// out-of-box) edge weight behind, whatever the workload — the
    /// invariant the snapshot guards and the merge's finite-weight
    /// filter exist to protect.
    #[test]
    fn no_pipeline_leaves_a_non_finite_weight(seed in 0u64..500) {
        let base = erdos_renyi(40, 180, &GeneratorOptions { seed, normalize: true });
        let cfg = VoteGenConfig {
            n_queries: 4,
            n_answers: 15,
            subgraph_nodes: 40,
            link_degree: 3,
            top_k: 5,
            target_best_rank: 3,
            positive_fraction: 0.25,
            sim: SimilarityConfig::default(),
            seed,
        };
        let world = generate_votes(&base, &cfg);
        prop_assume!(!world.votes.is_empty());

        let check = |g: &KnowledgeGraph, tag: &str| {
            for e in g.edges() {
                prop_assert!(
                    e.weight.is_finite() && e.weight > 0.0 && e.weight <= 1.0,
                    "{tag}: edge {:?} left the box: {}",
                    e.edge,
                    e.weight
                );
            }
            Ok(())
        };

        let mut g = world.graph.clone();
        solve_single_votes(&mut g, &world.votes, &SingleVoteOptions::default());
        check(&g, "single")?;

        let mut g = world.graph.clone();
        solve_multi_votes(&mut g, &world.votes, &MultiVoteOptions::default());
        check(&g, "multi")?;

        let mut g = world.graph.clone();
        kg_cluster::solve_split_merge(
            &mut g,
            &world.votes,
            &kg_cluster::SplitMergeOptions::default(),
        );
        check(&g, "split_merge")?;
    }
}
