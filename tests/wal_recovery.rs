//! Cross-crate crash-recovery integration: a realistic vote workload
//! (kg-datasets) optimized through the durable `votekg::Framework`,
//! interrupted by simulated crashes (torn WAL tails, lost snapshots),
//! must always recover to the exact committed state — weights compared
//! on `f64::to_bits`, rankings compared on the recovered graph.

use kg_datasets::{simulate_user_study, UserStudyConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use votekg::{DurableOptions, Framework, FrameworkConfig, Strategy};

fn study_cfg() -> UserStudyConfig {
    UserStudyConfig {
        entities: 60,
        edges: 500,
        n_docs: 40,
        n_votes: 9,
        n_test: 5,
        top_k: 8,
        ..Default::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "votekg-wal-integration-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn weight_bits(g: &votekg::graph::KnowledgeGraph) -> Vec<u64> {
    g.weights().iter().map(|w| w.to_bits()).collect()
}

#[test]
fn durable_incremental_run_recovers_bit_identically() {
    let study = simulate_user_study(&study_cfg());
    let dir = temp_dir("incremental");
    let opts = DurableOptions {
        snapshot_every: 3,
        keep_snapshots: 2,
    };
    let mut config = FrameworkConfig::default();
    config.multi.encode.sim = study_cfg().sim;

    let (expected_bits, expected_version) = {
        let (mut fw, report) =
            Framework::open_durable(&dir, study.deployed.clone(), config.clone(), opts.clone())
                .unwrap();
        assert_eq!(report.recovered_version, study.deployed.version());
        for v in &study.votes.votes {
            fw.record_vote_durable(v.clone()).unwrap();
        }
        let reports = fw
            .optimize_incremental_durable(Strategy::MultiVote, 2)
            .unwrap();
        assert_eq!(reports.len(), study.votes.len().div_ceil(2));
        (weight_bits(fw.graph()), fw.graph().version())
    };

    // Restart from the bare deployed graph: snapshot + WAL tail rebuild
    // the optimized weights exactly.
    let (fw2, report) =
        Framework::open_durable(&dir, study.deployed.clone(), config, opts).unwrap();
    assert_eq!(report.recovered_version, expected_version);
    assert_eq!(weight_bits(fw2.graph()), expected_bits);
    // With snapshot_every = 3 and ceil(9/2) = 5 commits, at least one
    // checkpoint fired: recovery starts from a snapshot, not version 0.
    assert!(report.snapshot_version.is_some(), "{report:?}");
    // The recovered graph ranks identically to the pre-crash one.
    let sim = study_cfg().sim;
    let ranks = study.test_ranks(fw2.graph(), &sim);
    let mut reference = study.deployed.clone();
    for (i, bitsv) in expected_bits.iter().enumerate() {
        reference
            .set_weight(votekg::graph::EdgeId(i as u32), f64::from_bits(*bitsv))
            .unwrap();
    }
    assert_eq!(ranks, study.test_ranks(&reference, &sim));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_after_partial_run_loses_only_the_uncommitted_round() {
    let study = simulate_user_study(&study_cfg());
    let dir = temp_dir("torn");
    let opts = DurableOptions {
        snapshot_every: 0, // keep the whole history in the WAL
        keep_snapshots: 1,
    };
    let config = FrameworkConfig::default();

    let mid_bits = {
        let (mut fw, _) =
            Framework::open_durable(&dir, study.deployed.clone(), config.clone(), opts.clone())
                .unwrap();
        for v in study.votes.votes.iter().take(4) {
            fw.record_vote_durable(v.clone()).unwrap();
        }
        fw.optimize_durable(Strategy::MultiVote).unwrap();
        let committed = weight_bits(fw.graph());
        // More votes arrive but no round commits them before the "crash".
        for v in study.votes.votes.iter().skip(4).take(2) {
            fw.record_vote_durable(v.clone()).unwrap();
        }
        fw.sync_wal().unwrap();
        committed
    };

    // Crash mid-append: chop bytes off the final record.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    let (fw2, report) =
        Framework::open_durable(&dir, study.deployed.clone(), config, opts).unwrap();
    assert!(report.torn_tail.is_some(), "{report:?}");
    assert_eq!(report.rounds_applied, 1);
    // The committed round survives bit for bit; of the two uncommitted
    // votes, the fully-written one is recovered and the torn one dropped.
    assert_eq!(weight_bits(fw2.graph()), mid_bits);
    assert_eq!(report.votes_recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleting_every_snapshot_still_recovers_from_the_wal() {
    let study = simulate_user_study(&study_cfg());
    let dir = temp_dir("no-snap");
    // snapshot_every = 0: the WAL holds the full history, so snapshots
    // are pure acceleration. Write one manually, then delete it.
    let opts = DurableOptions {
        snapshot_every: 0,
        keep_snapshots: 2,
    };
    let config = FrameworkConfig::default();
    let expected_bits = {
        let (mut fw, _) =
            Framework::open_durable(&dir, study.deployed.clone(), config.clone(), opts.clone())
                .unwrap();
        for v in &study.votes.votes {
            fw.record_vote_durable(v.clone()).unwrap();
        }
        fw.optimize_durable(Strategy::MultiVote).unwrap();
        weight_bits(fw.graph())
    };
    // No snapshots were written (snapshot_every = 0, no checkpoint call).
    let (fw2, report) =
        Framework::open_durable(&dir, study.deployed.clone(), config, opts).unwrap();
    assert!(report.snapshot_version.is_none());
    assert_eq!(report.rounds_applied, 1);
    assert_eq!(weight_bits(fw2.graph()), expected_bits);
    let _ = std::fs::remove_dir_all(&dir);
}
