//! Protocol torture suite for the network server: every malformed,
//! truncated, oversized, slow, or abruptly-terminated request must be
//! answered with a descriptive error or a clean close — never a panic,
//! a hang, or a poisoned worker. Each test ends by proving the server
//! still serves a fresh, healthy connection and that no handler
//! panicked.

use kg_server::{HttpClient, KgServer, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;
use votekg::{Framework, FrameworkConfig};

fn study_framework() -> Framework {
    let study = kg_datasets::simulate_user_study(&kg_datasets::UserStudyConfig {
        entities: 40,
        edges: 300,
        n_docs: 24,
        n_votes: 6,
        n_test: 3,
        top_k: 5,
        seed: 11,
        ..Default::default()
    });
    Framework::new(study.deployed.clone(), FrameworkConfig::default())
}

fn start(cfg: ServerConfig) -> (KgServer, SocketAddr) {
    let server = KgServer::start(study_framework(), cfg).expect("server starts");
    let addr = server.addr();
    (server, addr)
}

fn start_default() -> (KgServer, SocketAddr) {
    start(ServerConfig {
        workers: 2,
        ..Default::default()
    })
}

/// A raw socket with bounded timeouts — the misbehaving client.
fn raw(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Reads until EOF (or read timeout) and returns everything as text.
fn read_to_close(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// The after-torture gate: a fresh connection is served normally and no
/// worker ever panicked.
fn assert_alive(server: &KgServer, addr: SocketAddr) {
    let mut client = HttpClient::connect(addr).expect("fresh connection accepted");
    let resp = client.get("/healthz").expect("healthz serves");
    assert!(resp.text().contains("ok"), "{}", resp.text());
    assert_eq!(
        server.stats().handler_panics,
        0,
        "torture must never panic a worker"
    );
}

#[test]
fn malformed_request_line_gets_a_descriptive_400() {
    let (server, addr) = start_default();
    for garbage in [
        "COMPLETE GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "GET /rank\r\n\r\n", // no HTTP version
        "\x01\x02\x03\x04\r\n\r\n",
    ] {
        let mut s = raw(addr);
        s.write_all(garbage.as_bytes()).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let resp = read_to_close(&mut s);
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "garbage {garbage:?} should get 400, got {resp:?}"
        );
        assert!(resp.contains("error"), "{resp:?}");
    }
    assert!(server.stats().bad_requests >= 4);
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn unknown_paths_and_methods_get_404_and_405() {
    let (server, addr) = start_default();
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client.request("GET", "/nope", None).unwrap();
    assert_eq!(resp.code, 404);
    assert!(
        resp.text().contains("/rank"),
        "404 should list the endpoints: {}",
        resp.text()
    );
    let resp = client.request("DELETE", "/rank", None).unwrap();
    assert_eq!(resp.code, 405);
    assert!(resp.text().contains("DELETE"), "{}", resp.text());
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn oversized_body_is_rejected_before_allocation() {
    let (server, addr) = start_default();
    let mut s = raw(addr);
    // Claim a body far over the limit; never send it.
    s.write_all(b"POST /vote HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let resp = read_to_close(&mut s);
    assert!(
        resp.starts_with("HTTP/1.1 413"),
        "oversized Content-Length should get 413 immediately, got {resp:?}"
    );
    assert_eq!(server.stats().payload_too_large, 1);
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn truncated_body_gets_a_descriptive_error() {
    let (server, addr) = start_default();
    let mut s = raw(addr);
    s.write_all(b"POST /vote HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"query\":")
        .unwrap();
    s.shutdown(Shutdown::Write).unwrap(); // EOF mid-body
    let resp = read_to_close(&mut s);
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
    assert!(
        resp.contains("truncated"),
        "the error should say what went wrong: {resp:?}"
    );
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let (server, addr) = start(ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(150),
        ..Default::default()
    });
    let mut s = raw(addr);
    // Dribble a request that never completes.
    s.write_all(b"GET /ra").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    s.write_all(b"nk?que").unwrap();
    // ... then stall past the timeout.
    let resp = read_to_close(&mut s);
    assert!(
        resp.starts_with("HTTP/1.1 408"),
        "slow loris should time out with 408, got {resp:?}"
    );
    assert_eq!(server.stats().read_timeouts, 1);
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn abrupt_disconnect_mid_exchange_does_not_poison_the_worker() {
    let (server, addr) = start(ServerConfig {
        workers: 1, // the single worker must survive every abuse
        ..Default::default()
    });
    for _ in 0..5 {
        let mut s = raw(addr);
        // A valid-looking request, then vanish without reading the
        // response.
        s.write_all(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        drop(s);
    }
    for _ in 0..3 {
        // Connect-and-vanish probes.
        drop(raw(addr));
    }
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn pipelined_keep_alive_requests_are_all_answered_in_order() {
    let (server, addr) = start_default();
    let mut s = raw(addr);
    // Three pipelined requests in a single write.
    s.write_all(
        b"GET /healthz HTTP/1.1\r\n\r\n\
          GET /stats HTTP/1.1\r\n\r\n\
          GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let resp = read_to_close(&mut s);
    let answers = resp.matches("HTTP/1.1 200").count();
    assert_eq!(answers, 3, "all pipelined requests answered: {resp:?}");
    assert!(resp.contains("\"status\":\"ok\""));
    assert!(resp.contains("epoch"), "stats doc served in the middle");
    assert_eq!(server.stats().http_requests, 3);
    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

// ---------------------------------------------------------------------------
// Binary-mode torture.

fn raw_binary(addr: SocketAddr) -> TcpStream {
    let mut s = raw(addr);
    s.write_all(b"VKB1").unwrap();
    s
}

/// Reads one `[len][status][payload]` frame.
fn read_frame_raw(s: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).unwrap();
    let len = u32::from_be_bytes(len) as usize;
    assert!(len >= 1, "frames carry at least the status byte");
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    (body[0], body[1..].to_vec())
}

#[test]
fn binary_oversized_and_zero_frames_are_rejected() {
    let (server, addr) = start_default();

    let mut s = raw_binary(addr);
    s.write_all(&u32::MAX.to_be_bytes()).unwrap(); // absurd length
    let (status, payload) = read_frame_raw(&mut s);
    assert_ne!(status, 0, "oversized frame must be an error");
    assert!(
        String::from_utf8_lossy(&payload).contains("exceeds"),
        "{:?}",
        String::from_utf8_lossy(&payload)
    );

    let mut s = raw_binary(addr);
    s.write_all(&0u32.to_be_bytes()).unwrap(); // empty frame
    let (status, _) = read_frame_raw(&mut s);
    assert_ne!(status, 0, "zero-length frame must be an error");

    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn binary_truncated_frame_and_unknown_opcode() {
    let (server, addr) = start_default();

    // Truncated: claim 64 payload bytes, send 3, then EOF.
    let mut s = raw_binary(addr);
    s.write_all(&65u32.to_be_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let (status, payload) = read_frame_raw(&mut s);
    assert_ne!(status, 0);
    assert!(
        String::from_utf8_lossy(&payload).contains("truncated"),
        "{:?}",
        String::from_utf8_lossy(&payload)
    );

    // Unknown opcode: descriptive error, and the connection stays
    // usable for the next frame.
    let mut s = raw_binary(addr);
    s.write_all(&1u32.to_be_bytes()).unwrap();
    s.write_all(&[99]).unwrap(); // op 99, no payload
    let (status, payload) = read_frame_raw(&mut s);
    assert_ne!(status, 0);
    assert!(
        String::from_utf8_lossy(&payload).contains("unknown opcode"),
        "{:?}",
        String::from_utf8_lossy(&payload)
    );
    // PING (op 4) on the same connection still works.
    s.write_all(&1u32.to_be_bytes()).unwrap();
    s.write_all(&[4]).unwrap();
    let (status, _) = read_frame_raw(&mut s);
    assert_eq!(status, 0, "connection survives a decodable bad request");

    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn full_accept_queue_rejects_with_503_and_recovers() {
    let (server, addr) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(10),
        ..Default::default()
    });

    // Occupy the only worker with a connection that never finishes its
    // request.
    let mut loris = raw(addr);
    loris.write_all(b"GET /he").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the worker pop it

    // Fill the single queue slot.
    let queued = raw(addr);
    std::thread::sleep(Duration::from_millis(50));

    // The next connection finds worker busy + queue full: 503.
    let mut rejected = raw(addr);
    let resp = read_to_close(&mut rejected);
    assert!(
        resp.starts_with("HTTP/1.1 503"),
        "overflow connection should get 503, got {resp:?}"
    );
    assert!(resp.contains("busy"), "{resp:?}");
    assert_eq!(server.stats().connections_rejected_busy, 1);

    // Release the worker; the queued connection must then be served.
    drop(loris);
    let mut queued = queued;
    queued.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    queued.shutdown(Shutdown::Write).unwrap();
    let resp = read_to_close(&mut queued);
    assert!(
        resp.contains("HTTP/1.1 200"),
        "queued connection is served once the worker frees up: {resp:?}"
    );

    assert_alive(&server, addr);
    assert!(server.shutdown().clean);
}

#[test]
fn drain_serves_in_flight_work_and_closes_keep_alive() {
    let (server, addr) = start_default();
    let mut client = HttpClient::connect(addr).unwrap();
    let first = client.get("/healthz").unwrap();
    assert!(first.keep_alive, "normal responses keep the connection");

    server.request_shutdown();
    // A request during the drain is still answered, but told to close.
    let during = client.get("/healthz").unwrap();
    assert_eq!(during.code, 200);
    assert!(
        !during.keep_alive,
        "drain responses must carry Connection: close"
    );
    let report = server.shutdown();
    assert!(report.clean);
    assert_eq!(report.stats.handler_panics, 0);
}
