//! Cross-crate integration of the split-and-merge pipeline: quality
//! parity with the basic multi-vote solution, parallel determinism, and
//! clustering sanity on a realistic synthetic workload.

use kg_cluster::{solve_split_merge, SplitMergeOptions};
use kg_datasets::{generate_votes, synthesize, VoteGenConfig, TWITTER};
use kg_sim::SimilarityConfig;
use kg_votes::{solve_multi_votes, MultiVoteOptions, VoteSet};

/// A workload with the paper's structure: votes spread over a graph large
/// enough that clusters share few edges (Section VI's premise — AP
/// minimizes common edges between clusters; on a tiny graph where every
/// vote touches everything, merging extremal deltas degrades, which
/// `overlapping` tests separately below). The 0.08 base scale is the
/// smallest at which that premise actually holds across seeds: at 0.04
/// the attachment pool is so dense that clusters share most of their
/// edges (~11 merge conflicts, inter-cluster similarity within a factor
/// of two of intra) and the parity bound below becomes instance luck.
fn workload(n_votes: usize, seed: u64) -> (kg_graph::KnowledgeGraph, VoteSet) {
    let base = synthesize(&TWITTER, 0.08, seed);
    let world = generate_votes(
        &base,
        &VoteGenConfig {
            n_queries: n_votes * 2,
            n_answers: 200,
            subgraph_nodes: base.node_count(),
            link_degree: 4,
            top_k: 10,
            target_best_rank: 4,
            positive_fraction: 0.4,
            sim: SimilarityConfig::default(),
            seed,
        },
    );
    let mut votes = world.votes;
    votes.votes.truncate(n_votes);
    (world.graph, votes)
}

#[test]
fn split_merge_matches_basic_multi_vote_quality() {
    let (graph, votes) = workload(16, 1);
    assert!(votes.len() >= 8, "workload too sparse: {}", votes.len());

    let mut g_multi = graph.clone();
    let multi = solve_multi_votes(&mut g_multi, &votes, &MultiVoteOptions::default());

    let mut g_sm = graph.clone();
    let sm = solve_split_merge(&mut g_sm, &votes, &SplitMergeOptions::default());

    // The paper's finding: S-M quality is close to (or better than) basic.
    assert!(
        sm.report.omega_avg() >= multi.omega_avg() - 0.5,
        "S-M omega {} far below basic {}",
        sm.report.omega_avg(),
        multi.omega_avg()
    );
    assert!(!sm.clusters.is_empty());
}

#[test]
fn parallel_split_merge_is_deterministic() {
    let (graph, votes) = workload(12, 2);
    let weights = |workers: usize| {
        let mut g = graph.clone();
        let opts = SplitMergeOptions {
            workers,
            ..Default::default()
        };
        solve_split_merge(&mut g, &votes, &opts);
        g.weights().to_vec()
    };
    let w1 = weights(1);
    let w4a = weights(4);
    let w4b = weights(4);
    assert_eq!(w4a, w4b, "parallel run is nondeterministic");
    assert_eq!(w1, w4a, "worker count changes the result");
}

#[test]
fn clusters_partition_the_vote_set() {
    let (mut graph, votes) = workload(14, 3);
    let report = solve_split_merge(&mut graph, &votes, &SplitMergeOptions::default());
    let mut seen = vec![false; votes.len()];
    for cluster in &report.clusters {
        for &vi in cluster {
            assert!(!seen[vi], "vote {vi} in two clusters");
            seen[vi] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "votes missing from clustering");
}

#[test]
fn split_merge_handles_single_vote_batch() {
    let (mut graph, mut votes) = workload(6, 4);
    votes.votes.truncate(1);
    let report = solve_split_merge(&mut graph, &votes, &SplitMergeOptions::default());
    assert_eq!(report.clusters.len(), 1);
    assert_eq!(report.report.outcomes.len(), 1);
}
