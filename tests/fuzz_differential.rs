//! Differential-fuzzing acceptance tests: the harness must catch a
//! deliberately planted solver bug, shrink it to a tiny repro, stay
//! quiet on clean solvers, and replay committed repros deterministically.
//!
//! The tests in this file share one lock: campaigns and replays consult
//! the global `sgp::fault` plan, and the telemetry-count comparison in
//! the replay test must not race concurrent campaigns from this binary.

use kg_fuzz::ReproFault;
use kg_fuzz::{replay, run_campaign, CampaignOptions, ReproFile};
use sgp::{fault, FaultPlan};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sample_path() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/repros/sample.repro.json"
    ))
}

/// The planted bug: a test-only fault hook that skews every L-BFGS
/// solution by a third of each variable's box width, then honestly
/// recomputes the derived fields. The result looks plausible in
/// isolation — only cross-checking against the other solvers exposes it.
fn planted_fault() -> ReproFault {
    ReproFault {
        inner: "lbfgs".to_string(),
        skew: 0.35,
    }
}

#[test]
fn planted_solver_bug_is_caught_within_50_seeds_and_shrunk() {
    let _lock = serialized();
    // With telemetry on, the campaign embeds a flight-recorder trace of
    // the shrunk diverging solve in the repro (and the blessed sample
    // below gets one deterministically, whatever the test order).
    kg_telemetry::enable();
    let fault_rec = planted_fault();
    let _guard = fault::inject(fault_rec.plan().expect("lbfgs is a known inner"));
    let opts = CampaignOptions {
        fault: Some(fault_rec),
        stop_after: Some(1),
        ..CampaignOptions::default()
    };
    let summary = run_campaign(0..50, &opts);
    assert!(
        !summary.divergences.is_empty(),
        "planted lbfgs skew must be flagged within 50 seeds: {}",
        summary.line()
    );
    let d = &summary.divergences[0];
    assert!(
        d.verdict == "feasibility_split" || d.verdict == "objective_gap",
        "a skewed solution should disagree with honest solvers on feasibility \
         or objective, got {:?}",
        d.verdict
    );
    assert!(
        d.votes <= 3,
        "repro should shrink to <=3 votes, got {} (seed {}, {} shrink steps)",
        d.votes,
        d.seed,
        d.shrink_steps
    );
    // The shrunk repro must itself still reproduce the divergence — the
    // campaign verified every accepted shrink step, so replaying the
    // written record (which re-installs the fault) agrees. The guard must
    // drop first: replay() installs its own fault plan.
    drop(_guard);
    let report = replay(&d.repro).expect("repro replays");
    assert!(
        report.reproduced,
        "shrunk repro verdict {} != stored {}",
        report.verdict, report.stored_verdict
    );
    let trace = d
        .repro
        .trace
        .as_ref()
        .expect("telemetry was on: trace embedded");
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("embedded trace has traceEvents");
    assert!(!events.is_empty(), "diverging solve produced no events");

    // Refresh the committed sample repro on demand.
    if std::env::var("VOTEKG_BLESS").ok().as_deref() == Some("1") {
        d.repro.write(sample_path()).expect("bless sample repro");
    }
}

#[test]
fn clean_solvers_survive_200_seeds_with_zero_divergences() {
    let _lock = serialized();
    // Hold the fault gate with an empty plan so a concurrently running
    // fault test (other binaries share nothing; this is belt and braces
    // within the process) cannot skew the clean run.
    let _guard = fault::inject(FaultPlan::new());
    let summary = run_campaign(0..200, &CampaignOptions::default());
    assert_eq!(summary.cases, 200);
    assert!(
        summary.divergences.is_empty(),
        "clean solver matrix must agree within tolerances: {}",
        summary.line()
    );
    assert!(
        summary.agree > 150,
        "most cases should be non-trivial and agree: {}",
        summary.line()
    );
}

#[test]
fn committed_sample_repro_replays_deterministically() {
    let _lock = serialized();
    let repro = ReproFile::read(sample_path()).expect(
        "committed sample repro missing/invalid; regenerate with \
         VOTEKG_BLESS=1 cargo test --test fuzz_differential",
    );
    kg_telemetry::enable();
    let count_replays = || kg_telemetry::counter("votekg.fuzz.replays").get();
    let count_solves = || kg_telemetry::counter("votekg.fuzz.solves").get();

    let (r0, s0) = (count_replays(), count_solves());
    let first = replay(&repro).expect("replay 1");
    let (r1, s1) = (count_replays(), count_solves());
    let second = replay(&repro).expect("replay 2");
    let (r2, s2) = (count_replays(), count_solves());

    assert_eq!(
        first.verdict, second.verdict,
        "replay verdict must be stable"
    );
    assert_eq!(
        first.solves, second.solves,
        "replay solve count must be stable"
    );
    assert!(
        first.reproduced && second.reproduced,
        "sample repro no longer reproduces its stored verdict {:?} (got {:?}); \
         solver behavior changed — re-bless with VOTEKG_BLESS=1 if intended",
        first.stored_verdict,
        first.verdict
    );
    // Telemetry advances by identical amounts on both replays.
    assert_eq!(r1 - r0, 1);
    assert_eq!(r2 - r1, 1);
    assert_eq!(s1 - s0, first.solves as u64);
    assert_eq!(s2 - s1, second.solves as u64);
}
