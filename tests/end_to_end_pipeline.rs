//! Cross-crate integration: the full pipeline from a simulated user study
//! (kg-datasets) through vote optimization (kg-votes) to ranking metrics
//! (kg-metrics), plus the `votekg::Framework` facade.

use kg_datasets::{simulate_user_study, UserStudyConfig};
use kg_metrics::{hits_at_k, mean_rank, mrr};
use kg_votes::{solve_multi_votes, solve_single_votes, MultiVoteOptions, SingleVoteOptions};
use votekg::{Framework, FrameworkConfig, Strategy};

fn study_cfg() -> UserStudyConfig {
    UserStudyConfig {
        entities: 120,
        edges: 1_200,
        n_docs: 80,
        n_votes: 15,
        n_test: 15,
        top_k: 10,
        ..Default::default()
    }
}

#[test]
fn multi_vote_improves_held_out_ranking() {
    let study = simulate_user_study(&study_cfg());
    let sim = study_cfg().sim;
    let before = study.test_ranks(&study.deployed, &sim);

    let mut g = study.deployed.clone();
    let report = solve_multi_votes(&mut g, &study.votes, &MultiVoteOptions::default());
    let after = study.test_ranks(&g, &sim);

    // The votes themselves must be better satisfied…
    assert!(report.omega() > 0, "votes not improved: {report:?}");
    // …and the improvement must transfer to held-out similar questions.
    assert!(
        mean_rank(&after) < mean_rank(&before),
        "held-out mean rank {} -> {}",
        mean_rank(&before),
        mean_rank(&after)
    );
    assert!(mrr(&after) > mrr(&before));
}

#[test]
fn multi_vote_beats_single_vote_on_votes() {
    let study = simulate_user_study(&study_cfg());

    let mut g_multi = study.deployed.clone();
    let multi = solve_multi_votes(&mut g_multi, &study.votes, &MultiVoteOptions::default());

    let mut g_single = study.deployed.clone();
    let single = solve_single_votes(&mut g_single, &study.votes, &SingleVoteOptions::default());

    assert!(
        multi.omega() >= single.omega(),
        "multi {} vs single {}",
        multi.omega(),
        single.omega()
    );
}

#[test]
fn hits_at_k_improves_for_small_k() {
    let study = simulate_user_study(&study_cfg());
    let sim = study_cfg().sim;
    let before = study.test_ranks(&study.deployed, &sim);
    let mut g = study.deployed.clone();
    solve_multi_votes(&mut g, &study.votes, &MultiVoteOptions::default());
    let after = study.test_ranks(&g, &sim);
    assert!(
        hits_at_k(&after, 3) >= hits_at_k(&before, 3),
        "H@3 {} -> {}",
        hits_at_k(&before, 3),
        hits_at_k(&after, 3)
    );
}

#[test]
fn framework_facade_runs_the_same_pipeline() {
    let study = simulate_user_study(&study_cfg());
    let mut fw = Framework::new(study.deployed.clone(), FrameworkConfig::default());
    for vote in study.votes.votes.clone() {
        fw.record_vote(vote);
    }
    let report = fw.optimize(Strategy::MultiVote);
    assert_eq!(report.outcomes.len(), study.votes.len());

    // The facade's graph must match a direct solve with the same options.
    let mut direct = study.deployed.clone();
    solve_multi_votes(&mut direct, &study.votes, &MultiVoteOptions::default());
    for e in direct.edges() {
        assert!(
            (fw.graph().weight(e.edge) - e.weight).abs() < 1e-12,
            "facade and direct solve diverge on {:?}",
            e.edge
        );
    }

    // Revert restores the deployed weights exactly.
    assert!(fw.revert_last_optimization());
    for e in study.deployed.edges() {
        assert_eq!(fw.graph().weight(e.edge), e.weight);
    }
}

#[test]
fn optimization_is_deterministic() {
    let study = simulate_user_study(&study_cfg());
    let run = || {
        let mut g = study.deployed.clone();
        solve_multi_votes(&mut g, &study.votes, &MultiVoteOptions::default());
        g.weights().to_vec()
    };
    assert_eq!(run(), run());
}
