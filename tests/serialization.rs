//! Cross-crate serialization: graphs, votes, reports and configurations
//! all round-trip through serde, and graph I/O scales to a KONECT-clone
//! sized graph.

use kg_datasets::{synthesize, TAOBAO};
use kg_graph::NodeId;
use kg_votes::{MultiVoteOptions, OptimizationReport, SingleVoteOptions, Vote, VoteSet};

#[test]
fn konect_clone_roundtrips_both_formats() {
    let g = synthesize(&TAOBAO, 0.2, 9);
    let via_bin = kg_graph::io::from_bytes(kg_graph::io::to_bytes(&g)).unwrap();
    assert_eq!(via_bin.node_count(), g.node_count());
    assert_eq!(via_bin.edge_count(), g.edge_count());
    for e in g.edges() {
        assert_eq!(via_bin.weight(e.edge), e.weight);
    }
    let via_json = kg_graph::io::from_json(&kg_graph::io::to_json(&g)).unwrap();
    assert_eq!(via_json.edge_count(), g.edge_count());
}

#[test]
fn binary_format_is_much_smaller_than_json() {
    let g = synthesize(&TAOBAO, 0.2, 9);
    let bin = kg_graph::io::to_bytes(&g).len();
    let json = kg_graph::io::to_json(&g).len();
    // JSON prints full-precision floats (~18 chars vs 8 bytes) plus
    // structural overhead; binary should be comfortably smaller.
    assert!(
        (bin as f64) < 0.7 * json as f64,
        "binary {bin} bytes not smaller than json {json} bytes"
    );
}

#[test]
fn vote_sets_roundtrip() {
    let votes = VoteSet::from_votes(vec![
        Vote::new(NodeId(0), vec![NodeId(5), NodeId(6)], NodeId(6)),
        Vote::new(NodeId(1), vec![NodeId(5), NodeId(7)], NodeId(5)),
    ]);
    let j = serde_json::to_string(&votes).unwrap();
    let back: VoteSet = serde_json::from_str(&j).unwrap();
    assert_eq!(votes, back);
}

#[test]
fn pipeline_options_roundtrip() {
    let multi = MultiVoteOptions::default();
    let j = serde_json::to_string(&multi).unwrap();
    let back: MultiVoteOptions = serde_json::from_str(&j).unwrap();
    assert_eq!(back.params.lambda1, multi.params.lambda1);
    assert_eq!(back.encode.sim, multi.encode.sim);

    let single = SingleVoteOptions::default();
    let j = serde_json::to_string(&single).unwrap();
    let back: SingleVoteOptions = serde_json::from_str(&j).unwrap();
    assert_eq!(back.normalize, single.normalize);
}

#[test]
fn reports_serialize_for_experiment_logs() {
    let report = OptimizationReport::default();
    let j = serde_json::to_string(&report).unwrap();
    let back: OptimizationReport = serde_json::from_str(&j).unwrap();
    assert_eq!(back.outcomes.len(), 0);
}
