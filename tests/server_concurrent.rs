//! End-to-end concurrency soak over real sockets: the network mirror of
//! `tests/concurrent_serving.rs`. N binary-protocol clients hammer a
//! live [`kg_server::KgServer`] while the write path races incremental
//! optimization rounds through the same framework. The contract is the
//! same as in-process serving, now measured across the wire:
//!
//! * every served ranking is **bit-identical** (via `f64::to_bits`) to
//!   an uncached [`kg_sim::rank_answers`] evaluation of the snapshot
//!   published at the epoch the response declared;
//! * epochs never move backwards within one client connection;
//! * after the writer quiesces, the wire serves the final graph exactly.
//!
//! Budget knobs (all optional):
//!
//! * `VOTEKG_SOAK_MS` — wall-clock budget for the optimization loop
//!   (default 400).
//! * `VOTEKG_SOAK_CLIENTS` — client thread count (default 4).

use kg_server::{BinClient, KgServer, ServerConfig};
use kg_sim::rank_answers;
use kg_votes::Vote;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use votekg::{Framework, FrameworkConfig, GraphSnapshot, Strategy};

mod common {
    use kg_datasets::{simulate_user_study, UserStudy, UserStudyConfig};

    /// Same shape as the in-process stress study: enough queries for
    /// cache churn, enough edges for solves to overlap with serving.
    pub fn study() -> UserStudy {
        simulate_user_study(&UserStudyConfig {
            entities: 90,
            edges: 900,
            n_docs: 60,
            n_votes: 12,
            n_test: 6,
            top_k: 8,
            seed: 7,
            ..Default::default()
        })
    }

    pub fn env_num(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// One client's record of a served ranking: wire answers as
/// `(node, score_bits)` so comparison is exact.
type WireRanking = Vec<(u32, u64)>;

#[test]
fn socket_clients_racing_optimization_get_only_snapshot_consistent_bytes() {
    let study = common::study();
    let budget = Duration::from_millis(common::env_num("VOTEKG_SOAK_MS", 400));
    let clients = common::env_num("VOTEKG_SOAK_CLIENTS", 4).max(1) as usize;

    let config = FrameworkConfig::default();
    let sim = config.sim();
    let fw = Framework::new(study.deployed.clone(), config);
    let server = KgServer::start(
        fw,
        ServerConfig {
            workers: clients + 1,
            queue_depth: clients * 4,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let handle = server.handle();

    let questions: Vec<(u32, Vec<u32>)> = study
        .votes
        .votes
        .iter()
        .map(|v| (v.query.0, v.answers.iter().map(|a| a.0).collect()))
        .collect();

    let stop = AtomicBool::new(false);
    // Dedup per client on (epoch, question index): bounded memory, full
    // coverage of distinct observations.
    let mut per_client: Vec<HashMap<(u64, usize), WireRanking>> = Vec::new();
    let mut snapshots: HashMap<u64, GraphSnapshot> = HashMap::new();

    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..clients {
            let stop = &stop;
            let questions = &questions;
            joins.push(s.spawn(move || {
                // Debug-mode solve rounds hold the write mutex for a
                // while; votes queue behind it, so give the wire a
                // generous deadline before calling it a hang.
                let mut conn = BinClient::connect_with_timeout(addr, Duration::from_secs(120))
                    .expect("client connects");
                let mut seen: HashMap<(u64, usize), WireRanking> = HashMap::new();
                let mut last_epoch = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let qi = i % questions.len();
                    let (q, answers) = &questions[qi];
                    i += 1;
                    let resp = conn.rank(*q, answers, 0).expect("wire rank");
                    assert!(
                        resp.epoch >= last_epoch,
                        "epoch went backwards on one connection: {} -> {}",
                        last_epoch,
                        resp.epoch
                    );
                    last_epoch = resp.epoch;
                    assert_eq!(resp.ranking.len(), answers.len());
                    seen.entry((resp.epoch, qi)).or_insert_with(|| {
                        resp.ranking
                            .iter()
                            .map(|a| (a.node, a.score_bits))
                            .collect()
                    });
                    // Interleave wire votes so the durable write path is
                    // racing too, not just the optimizer.
                    if i % 64 == 0 {
                        conn.vote(*q, answers[i % answers.len()], answers)
                            .expect("wire vote");
                    }
                }
                seen
            }));
        }

        // Archivist: pin every epoch's snapshot the moment it appears so
        // the post-hoc verifier can re-evaluate observations against the
        // exact graph they were served from.
        let archivist = s.spawn({
            let handle = handle.clone();
            let stop = &stop;
            move || {
                let mut pinned: HashMap<u64, GraphSnapshot> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    pinned.entry(snap.epoch()).or_insert(snap);
                    std::hint::spin_loop();
                }
                let snap = handle.snapshot();
                pinned.entry(snap.epoch()).or_insert(snap);
                pinned
            }
        });

        // Writer: replay the study's votes through the server's own
        // framework and run incremental rounds until the budget runs
        // out — each round republishes, so clients see a stream of
        // epochs mid-flight. One small batch per mutex acquisition and
        // a yield in between keep wire votes from starving behind the
        // unfair lock.
        let started = Instant::now();
        let mut rounds = 0u64;
        let mut vi = 0usize;
        while started.elapsed() < budget {
            server.with_framework(|fw| {
                for _ in 0..3 {
                    let v = &study.votes.votes[vi % study.votes.votes.len()];
                    vi += 1;
                    fw.record_vote(Vote::new(v.query, v.answers.clone(), v.best));
                }
                fw.optimize_incremental(Strategy::MultiVote, 3);
            });
            rounds += 1;
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rounds > 0);
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            per_client.push(j.join().expect("client thread"));
        }
        snapshots = archivist.join().expect("archivist thread");
    });

    // Post-hoc verification: every observation whose epoch the archivist
    // pinned must match an uncached evaluation of that exact snapshot,
    // byte for byte.
    let mut verified = 0usize;
    let mut unpinned = 0usize;
    for seen in &per_client {
        for ((epoch, qi), wire) in seen {
            let Some(snap) = snapshots.get(epoch) else {
                unpinned += 1; // epoch flickered past the archivist
                continue;
            };
            let (q, answers) = &questions[*qi];
            let answers: Vec<kg_graph::NodeId> =
                answers.iter().map(|&a| kg_graph::NodeId(a)).collect();
            let expect: WireRanking =
                rank_answers(snap, kg_graph::NodeId(*q), &answers, &sim, answers.len())
                    .iter()
                    .map(|a| (a.node.0, a.score.to_bits()))
                    .collect();
            assert_eq!(
                wire, &expect,
                "wire bytes diverged from snapshot at epoch {epoch}"
            );
            verified += 1;
        }
    }
    assert!(verified > 0, "soak observed no verifiable rankings");
    assert!(
        verified >= unpinned,
        "archivist missed most epochs ({verified} verified, {unpinned} unpinned)"
    );

    // Post-quiescence: drain any remaining votes, republish, and the
    // wire must serve the final graph exactly.
    let final_snap = server.with_framework(|fw| {
        fw.optimize_incremental(Strategy::MultiVote, 8);
        fw.publish()
    });
    let mut conn = BinClient::connect(addr).expect("post-quiescence client");
    for (q, answers) in &questions {
        let resp = conn.rank(*q, answers, 0).expect("final rank");
        assert_eq!(resp.epoch, final_snap.epoch());
        let ids: Vec<kg_graph::NodeId> = answers.iter().map(|&a| kg_graph::NodeId(a)).collect();
        let expect: WireRanking =
            rank_answers(&final_snap, kg_graph::NodeId(*q), &ids, &sim, ids.len())
                .iter()
                .map(|a| (a.node.0, a.score.to_bits()))
                .collect();
        let wire: WireRanking = resp
            .ranking
            .iter()
            .map(|a| (a.node, a.score_bits))
            .collect();
        assert_eq!(wire, expect, "post-quiescence wire mismatch for query {q}");
    }

    let report = server.shutdown();
    assert!(report.clean, "soak must drain cleanly: {report:?}");
    assert_eq!(report.stats.handler_panics, 0);
    assert_eq!(report.stats.votes_rejected, 0, "all soak votes are valid");
}
