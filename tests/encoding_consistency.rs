//! Property-based cross-crate consistency: the symbolic SGP encoding of
//! votes must agree with the numeric similarity engines on randomly
//! generated workloads — the load-bearing equivalence behind the whole
//! optimization approach.

use kg_datasets::{erdos_renyi, generate_votes, GeneratorOptions, VoteGenConfig};
use kg_sim::{phi_vector, SimilarityConfig};
use kg_votes::encode::{encode_multi, encode_single, EncodeOptions, MultiParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every margin expression `S(q,a) − S(q,a*)` of the multi-vote
    /// encoding, evaluating at the initial point reproduces the numeric
    /// similarity difference exactly.
    #[test]
    fn multi_encoding_margins_match_numeric_similarity(seed in 0u64..500) {
        let base = erdos_renyi(60, 300, &GeneratorOptions { seed, normalize: true });
        let cfg = VoteGenConfig {
            n_queries: 6,
            n_answers: 25,
            subgraph_nodes: 60,
            link_degree: 3,
            top_k: 6,
            target_best_rank: 3,
            positive_fraction: 0.3,
            sim: SimilarityConfig::default(),
            seed,
        };
        let world = generate_votes(&base, &cfg);
        prop_assume!(!world.votes.is_empty());

        let opts = EncodeOptions::default();
        let prog = encode_multi(&world.graph, &world.votes.votes, &opts, &MultiParams::default());
        prop_assume!(!prog.truncated);
        let x0 = prog.problem.vars.initial_point();

        for (vi, margin) in &prog.vote_margins {
            let vote = &world.votes.votes[*vi];
            let phi = phi_vector(&world.graph, vote.query, &opts.sim);
            let symbolic = margin.eval(&x0);
            // The margin belongs to *some* competitor of this vote; check
            // it matches one of the numeric differences.
            let matches_any = vote.competitors().any(|a| {
                let numeric = phi[a.index()] - phi[vote.best.index()];
                (numeric - symbolic).abs() < 1e-10
            });
            prop_assert!(matches_any, "margin {symbolic} matches no competitor of vote {vi}");
        }
    }

    /// The number of violated margins at the initial point equals the
    /// number of (vote, competitor) pairs where the competitor currently
    /// outscores the voted best answer.
    #[test]
    fn violated_margin_count_matches_rankings(seed in 0u64..500) {
        let base = erdos_renyi(50, 250, &GeneratorOptions { seed, normalize: true });
        let cfg = VoteGenConfig {
            n_queries: 5,
            n_answers: 20,
            subgraph_nodes: 50,
            link_degree: 3,
            top_k: 5,
            target_best_rank: 3,
            positive_fraction: 0.5,
            sim: SimilarityConfig::default(),
            seed: seed + 1,
        };
        let world = generate_votes(&base, &cfg);
        prop_assume!(!world.votes.is_empty());
        let opts = EncodeOptions::default();
        let prog = encode_multi(&world.graph, &world.votes.votes, &opts, &MultiParams::default());
        prop_assume!(!prog.truncated);
        let x0 = prog.problem.vars.initial_point();

        let mut expected = 0usize;
        for vote in &world.votes.votes {
            let phi = phi_vector(&world.graph, vote.query, &opts.sim);
            for a in vote.competitors() {
                if phi[a.index()] - phi[vote.best.index()] > 0.0 {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(prog.violated_margins(&x0), expected);
    }

    /// Single-vote constraints are exactly the negative vote's margins
    /// plus the strictness epsilon.
    #[test]
    fn single_encoding_matches_multi_margins(seed in 0u64..500) {
        let base = erdos_renyi(40, 200, &GeneratorOptions { seed, normalize: true });
        let cfg = VoteGenConfig {
            n_queries: 8,
            n_answers: 15,
            subgraph_nodes: 40,
            link_degree: 3,
            top_k: 5,
            target_best_rank: 3,
            positive_fraction: 0.0,
            sim: SimilarityConfig::default(),
            seed: seed + 2,
        };
        let world = generate_votes(&base, &cfg);
        let negative = world.votes.votes.iter().find(|v| !v.is_positive());
        prop_assume!(negative.is_some());
        let vote = negative.unwrap().clone();

        let opts = EncodeOptions::default();
        let single = encode_single(&world.graph, &vote, &opts);
        let multi = encode_multi(
            &world.graph,
            std::slice::from_ref(&vote),
            &opts,
            &MultiParams::default(),
        );
        prop_assume!(!single.truncated && !multi.truncated);
        prop_assert_eq!(single.problem.n_constraints(), multi.vote_margins.len());

        let x0 = single.problem.vars.initial_point();
        let mut single_vals: Vec<f64> = single
            .problem
            .constraints
            .iter()
            .map(|c| c.expr.eval(&x0) - opts.margin)
            .collect();
        let x0m = multi.problem.vars.initial_point();
        let mut multi_vals: Vec<f64> =
            multi.vote_margins.iter().map(|(_, m)| m.eval(&x0m)).collect();
        single_vals.sort_by(f64::total_cmp);
        multi_vals.sort_by(f64::total_cmp);
        for (s, m) in single_vals.iter().zip(&multi_vals) {
            prop_assert!((s - m).abs() < 1e-10, "{s} vs {m}");
        }
    }
}
