//! Golden-ranking regression tests: the exact bytes of served rankings
//! for a fixed scenario are pinned under `tests/golden/`.
//!
//! Scores are serialized via `f64::to_bits`, so the comparison is
//! bit-exact — any change to the similarity kernels, the solver, or the
//! serving cache that shifts a ranking by one ULP fails here.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! VOTEKG_BLESS=1 cargo test --test golden_rankings
//! ```
//!
//! then review the diff of `tests/golden/*.json` like any other code.

use kg_sim::RankedAnswer;
use kg_votes::Vote;
use serde::Serialize;
use std::path::PathBuf;
use votekg::{Framework, FrameworkConfig, Strategy};

/// One query's pinned ranking: node ids in served order plus bit-exact
/// scores.
#[derive(Serialize)]
struct GoldenEntry {
    query: u32,
    answers: Vec<u32>,
    ranking: Vec<(u32, u64, usize)>,
}

#[derive(Serialize)]
struct GoldenDoc {
    scenario: String,
    epoch: u64,
    entries: Vec<GoldenEntry>,
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn encode(r: &[RankedAnswer]) -> Vec<(u32, u64, usize)> {
    r.iter()
        .map(|a| (a.node.0, a.score.to_bits(), a.rank))
        .collect()
}

/// Renders, blesses (when `VOTEKG_BLESS=1`), or compares a golden doc.
fn check_golden(name: &str, doc: &GoldenDoc) {
    let path = golden_path(name);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(doc).expect("golden doc serializes")
    );
    if std::env::var("VOTEKG_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with VOTEKG_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "golden rankings changed for {name:?}; if intentional, regenerate with \
         VOTEKG_BLESS=1 and review the diff"
    );
}

/// The fixed scenario: a seeded user study, votes applied with the
/// multi-vote solver, rankings served through the snapshot path.
fn scenario() -> (Framework, Vec<(u32, Vec<u32>)>) {
    let study = kg_datasets::simulate_user_study(&kg_datasets::UserStudyConfig {
        entities: 80,
        edges: 800,
        n_docs: 50,
        n_votes: 10,
        n_test: 5,
        top_k: 8,
        seed: 20260806,
        ..Default::default()
    });
    let fw = Framework::new(study.deployed.clone(), FrameworkConfig::default());
    let questions = study
        .votes
        .votes
        .iter()
        .map(|v| (v.query.0, v.answers.iter().map(|a| a.0).collect()))
        .collect();
    (fw, questions)
}

fn render(fw: &Framework, questions: &[(u32, Vec<u32>)], scenario_name: &str) -> GoldenDoc {
    let entries = questions
        .iter()
        .map(|(q, answers)| {
            let answer_ids: Vec<kg_graph::NodeId> =
                answers.iter().map(|&a| kg_graph::NodeId(a)).collect();
            GoldenEntry {
                query: *q,
                answers: answers.clone(),
                ranking: encode(&fw.rank(kg_graph::NodeId(*q), &answer_ids, 8)),
            }
        })
        .collect();
    GoldenDoc {
        scenario: scenario_name.to_string(),
        epoch: fw.publish().epoch(),
        entries,
    }
}

/// Rankings of the deployed (pre-optimization) graph.
#[test]
fn golden_pre_optimization_rankings() {
    let (fw, questions) = scenario();
    check_golden(
        "pre_optimization",
        &render(&fw, &questions, "user-study seed 20260806, deployed graph"),
    );
}

/// Rankings after one multi-vote optimization round over all votes.
#[test]
fn golden_post_optimization_rankings() {
    let (mut fw, questions) = scenario();
    for (q, answers) in &questions {
        let answer_ids: Vec<kg_graph::NodeId> =
            answers.iter().map(|&a| kg_graph::NodeId(a)).collect();
        // Best = the last-ranked answer, a deterministic negative vote.
        let ranking = fw.rank(kg_graph::NodeId(*q), &answer_ids, answer_ids.len());
        let best = ranking.last().expect("non-empty ranking").node;
        fw.record_vote(Vote::new(kg_graph::NodeId(*q), answer_ids, best));
    }
    fw.optimize(Strategy::MultiVote);
    check_golden(
        "post_optimization",
        &render(
            &fw,
            &questions,
            "user-study seed 20260806, after multi-vote optimization",
        ),
    );
}
