//! Concurrency stress suite: reader threads racing a live incremental
//! optimization must only ever observe internally-consistent rankings.
//!
//! The contract under test is snapshot isolation: every ranking a
//! [`votekg::ServeHandle`] returns is byte-identical to an *uncached*
//! [`kg_sim::rank_answers`] evaluation of the exact [`GraphSnapshot`] it
//! was served from, no matter how the optimizer interleaves. Epochs are
//! monotone per reader, and once the writer quiesces every handle serves
//! the final graph exactly.
//!
//! Budget knobs (all optional):
//!
//! * `VOTEKG_STRESS_MS` — wall-clock budget for the optimization loop
//!   (default 400).
//! * `VOTEKG_STRESS_READERS` — reader thread count (default 4).

use kg_sim::{rank_answers, BatchQuery};
use kg_votes::Vote;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use votekg::{Framework, FrameworkConfig, GraphSnapshot, Strategy};

mod common {
    use kg_datasets::{simulate_user_study, UserStudy, UserStudyConfig};

    /// A small-but-nontrivial study: enough queries for cache churn and
    /// enough edges for solves to take a visible amount of time.
    pub fn study() -> UserStudy {
        simulate_user_study(&UserStudyConfig {
            entities: 90,
            edges: 900,
            n_docs: 60,
            n_votes: 12,
            n_test: 6,
            top_k: 8,
            seed: 7,
            ..Default::default()
        })
    }

    pub fn env_num(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// N readers hammer cloned handles while the writer loops incremental
/// optimization rounds for the whole budget. Every observed ranking is
/// verified against an uncached evaluation of its own snapshot after the
/// fact; epochs must never move backwards within one reader.
#[test]
fn readers_racing_optimization_observe_only_snapshot_consistent_rankings() {
    let study = common::study();
    let budget = Duration::from_millis(common::env_num("VOTEKG_STRESS_MS", 400));
    let readers = common::env_num("VOTEKG_STRESS_READERS", 4).max(1) as usize;
    let k = 8usize;

    let config = FrameworkConfig::default();
    let sim = config.sim();
    let mut fw = Framework::new(study.deployed.clone(), config);
    let handle = fw.handle();
    let questions: Vec<(kg_graph::NodeId, Vec<kg_graph::NodeId>)> = study
        .votes
        .votes
        .iter()
        .map(|v| (v.query, v.answers.clone()))
        .collect();

    let stop = AtomicBool::new(false);
    // (epoch, query) -> (snapshot, answers index, ranking): dedup keeps
    // memory bounded while still covering every distinct observation.
    type Observed =
        HashMap<(u64, kg_graph::NodeId), (GraphSnapshot, usize, Vec<kg_sim::RankedAnswer>)>;
    let mut per_reader: Vec<Observed> = Vec::new();

    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..readers {
            let handle = handle.clone();
            let stop = &stop;
            let questions = &questions;
            joins.push(s.spawn(move || {
                let mut seen: Observed = HashMap::new();
                let mut last_epoch = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let qi = i % questions.len();
                    let (q, answers) = &questions[qi];
                    i += 1;
                    let (snap, ranking) = handle.rank_snapshot(*q, answers, k);
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards within one reader: {} -> {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    assert!(!ranking.is_empty());
                    seen.entry((snap.epoch(), *q))
                        .or_insert((snap, qi, ranking));
                }
                seen
            }));
        }

        // Writer: replay the study's votes in incremental batches over
        // and over until the budget runs out. Each round republishes, so
        // readers see a stream of epochs.
        let started = Instant::now();
        while started.elapsed() < budget {
            for v in &study.votes.votes {
                fw.record_vote(Vote::new(v.query, v.answers.clone(), v.best));
            }
            fw.optimize_incremental(Strategy::MultiVote, 3);
        }
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            per_reader.push(j.join().expect("reader thread"));
        }
    });

    // Post-hoc verification: every distinct (epoch, query) observation
    // must match an uncached evaluation of the snapshot it came from.
    let mut verified = 0usize;
    for seen in &per_reader {
        for ((epoch, q), (snap, qi, ranking)) in seen {
            assert_eq!(snap.epoch(), *epoch);
            let expect = rank_answers(snap, *q, &questions[*qi].1, &sim, k);
            assert_eq!(
                ranking, &expect,
                "served ranking diverged from its own snapshot at epoch {epoch}"
            );
            verified += 1;
        }
    }
    assert!(verified > 0, "stress run observed no rankings");

    // Post-quiescence: handles converge on the final graph exactly.
    let final_snap = fw.publish();
    assert_eq!(handle.epoch(), fw.graph().version());
    for (q, answers) in &questions {
        assert_eq!(
            handle.rank(*q, answers, k),
            rank_answers(&final_snap, *q, answers, &sim, k),
            "post-quiescence ranking mismatch"
        );
    }
}

/// Ranking is a pure function of (graph, query, answers, k): worker
/// count and cache temperature must never change a single byte of
/// output. Scores are compared via `f64::to_bits` for exactness.
#[test]
fn rankings_are_independent_of_worker_count_and_cache_state() {
    let study = common::study();
    let config = FrameworkConfig::default();
    let sim = config.sim();
    let questions: Vec<(kg_graph::NodeId, Vec<kg_graph::NodeId>)> = study
        .votes
        .votes
        .iter()
        .map(|v| (v.query, v.answers.clone()))
        .collect();
    let requests: Vec<BatchQuery<'_>> = questions
        .iter()
        .map(|(q, answers)| BatchQuery {
            query: *q,
            answers,
            k: 8,
        })
        .collect();

    let bits = |rankings: &[Vec<kg_sim::RankedAnswer>]| -> Vec<Vec<(u32, u64, usize)>> {
        rankings
            .iter()
            .map(|r| {
                r.iter()
                    .map(|a| (a.node.0, a.score.to_bits(), a.rank))
                    .collect()
            })
            .collect()
    };

    // Direct evaluation: rank_many across worker counts.
    let reference = bits(&kg_sim::rank_many(&study.deployed, &requests, &sim, 1));
    for workers in [2usize, 8] {
        assert_eq!(
            bits(&kg_sim::rank_many(
                &study.deployed,
                &requests,
                &sim,
                workers
            )),
            reference,
            "rank_many diverged at {workers} workers"
        );
    }

    // Served evaluation: cold cache, then warm cache, across worker
    // counts and shard counts — all byte-identical to the reference.
    for (workers, shards) in [(1usize, 1usize), (2, 4), (8, 16)] {
        let fw = Framework::new(study.deployed.clone(), FrameworkConfig::default())
            .with_serve_workers(workers)
            .with_serve_shards(shards);
        let cold = bits(&fw.rank_batch(&requests));
        let warm = bits(&fw.rank_batch(&requests));
        assert_eq!(
            cold, reference,
            "cold serve diverged ({workers}w/{shards}s)"
        );
        assert_eq!(
            warm, reference,
            "warm serve diverged ({workers}w/{shards}s)"
        );
        let stats = fw.serve_stats();
        assert!(stats.hits > 0, "second batch should hit the cache");
    }
}

/// An optimization between two identical batches must leave the *new*
/// rankings equal to direct evaluation of the *new* graph — the cache
/// can never serve pre-optimization bytes for an affected query.
#[test]
fn cache_never_serves_stale_bytes_across_an_optimization() {
    let study = common::study();
    let config = FrameworkConfig::default();
    let sim = config.sim();
    let mut fw = Framework::new(study.deployed.clone(), config);
    let questions: Vec<(kg_graph::NodeId, Vec<kg_graph::NodeId>)> = study
        .votes
        .votes
        .iter()
        .map(|v| (v.query, v.answers.clone()))
        .collect();

    // Warm the cache.
    for (q, answers) in &questions {
        fw.rank(*q, answers, 8);
    }
    for v in &study.votes.votes {
        fw.record_vote(Vote::new(v.query, v.answers.clone(), v.best));
    }
    fw.optimize(Strategy::MultiVote);

    for (q, answers) in &questions {
        assert_eq!(
            fw.rank(*q, answers, 8),
            rank_answers(fw.graph(), *q, answers, &sim, 8),
            "stale ranking served after optimization"
        );
    }
}
