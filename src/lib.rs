//! `votekg-suite`: the workspace's integration-test and example host
//! package. All functionality lives in the member crates (see `votekg`
//! for the public facade); this library only re-exports the facade so the
//! suite's tests and examples have one import root.

pub use votekg;
