//! Online learning loop: feedback arrives continuously and the graph is
//! re-optimized in small batches (`Framework::optimize_incremental`),
//! converging toward the ground truth over rounds — the deployment mode
//! the paper's interactive framework (Fig. 1) implies.
//!
//! Each round: simulated users ask a fresh slice of questions, vote by
//! the hidden ground truth, and the framework optimizes that batch before
//! the next wave arrives. Held-out quality is tracked per round.
//!
//! Run: `cargo run --release --example online_learning`

use kg_datasets::{simulate_user_study, UserStudyConfig};
use kg_metrics::{mean_rank, mrr, ndcg_at_k};
use kg_sim::SimilarityConfig;
use votekg::{Framework, FrameworkConfig, Strategy};

fn main() {
    let cfg = UserStudyConfig {
        entities: 400,
        edges: 4_000,
        n_docs: 250,
        n_votes: 60, // arrives over 6 rounds of 10
        n_test: 40,
        top_k: 10,
        link_degree: 4,
        noise: 0.6,
        corrupt_fraction: 0.2,
        test_overlap: 0.9,
        sim: SimilarityConfig::default(),
        seed: 21,
    };
    let study = simulate_user_study(&cfg);
    println!(
        "deployment: {} entities, {} docs, {} votes arriving in rounds of 10, {} held-out questions\n",
        cfg.entities,
        study.answers.len(),
        study.votes.len(),
        study.test_queries.len()
    );

    let mut fw = Framework::new(study.deployed.clone(), FrameworkConfig::default());
    let report_quality = |fw: &Framework, label: &str| {
        let ranks = study.test_ranks(fw.graph(), &cfg.sim);
        println!(
            "{label:>8}: held-out Ravg {:.2}  MRR {:.3}  NDCG@10 {:.3}",
            mean_rank(&ranks),
            mrr(&ranks),
            ndcg_at_k(&ranks, 10)
        );
    };
    report_quality(&fw, "start");

    for (round, batch) in study.votes.votes.chunks(10).enumerate() {
        for vote in batch {
            fw.record_vote(vote.clone());
        }
        let reports = fw.optimize_incremental(Strategy::MultiVote, 10);
        let satisfied: usize = reports.iter().map(|r| r.satisfied_votes()).sum();
        print!(
            "round {:>2}: {} votes ({} satisfied) | ",
            round + 1,
            batch.len(),
            satisfied
        );
        report_quality(&fw, "now");
    }

    // Upper bound: what a perfect graph would score.
    let truth_ranks = study.test_ranks(&study.truth, &cfg.sim);
    println!(
        "\nceiling (ground-truth graph): Ravg {:.2}  MRR {:.3}",
        mean_rank(&truth_ranks),
        mrr(&truth_ranks)
    );
}
