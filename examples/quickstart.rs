//! Quickstart: the paper's Fig. 1 scenario in a dozen lines.
//!
//! Build a small augmented knowledge graph, ask a question, cast a
//! negative vote for the answer the user actually wanted, optimize, and
//! watch the ranking flip.
//!
//! Run: `cargo run --release --example quickstart`

use votekg::graph::{GraphBuilder, NodeKind};
use votekg::votes::Vote;
use votekg::{Framework, FrameworkConfig, Strategy};

fn main() {
    // The Fig. 1 helpdesk micro-graph: a question about an email stuck in
    // the outbox, three candidate HELP documents.
    let mut b = GraphBuilder::new();
    let q = b.add_node("query: email stuck in outbox", NodeKind::Query);
    let stuck = b.add_node("stuck", NodeKind::Entity);
    let outbox = b.add_node("outbox", NodeKind::Entity);
    let email = b.add_node("email", NodeKind::Entity);
    let send = b.add_node("send-message", NodeKind::Entity);
    let outlook = b.add_node("outlook", NodeKind::Entity);
    let a1 = b.add_node("doc: deleting stuck messages", NodeKind::Answer);
    let a2 = b.add_node("doc: why sending fails", NodeKind::Answer);
    let a3 = b.add_node("doc: outlook setup", NodeKind::Answer);

    for (from, to, w) in [
        (q, stuck, 0.33),
        (q, outbox, 0.33),
        (q, email, 0.33),
        (stuck, outbox, 0.6),
        (outbox, email, 0.3),
        (outbox, send, 0.5),
        (email, outbox, 0.4),
        (email, send, 0.6),
        (send, outlook, 0.3),
        (stuck, a1, 0.7),
        (send, a2, 0.4),
        (outlook, a3, 1.0),
    ] {
        b.add_edge(from, to, w).unwrap();
    }

    let answers = [a1, a2, a3];
    let mut fw = Framework::new(b.build(), FrameworkConfig::default());

    println!("-- ranking before any feedback --");
    let ranked = fw.rank(q, &answers, 3);
    for r in &ranked {
        println!(
            "  #{} {} (score {:.5})",
            r.rank,
            fw.graph().label(r.node),
            r.score
        );
    }

    // The user says the *second* answer was actually the helpful one.
    let user_pick = ranked[1].node;
    let pick_label = fw.graph().label(user_pick).to_string();
    let kind = fw.record_vote(Vote::new(
        q,
        ranked.iter().map(|r| r.node).collect(),
        user_pick,
    ));
    println!("\nuser votes for: {pick_label} -> {kind:?} vote");

    let report = fw.optimize(Strategy::MultiVote);
    println!(
        "optimized: omega = {} ({} edges changed, {:?} in the solver)",
        report.omega(),
        report.edges_changed,
        report.solver_elapsed
    );

    println!("\n-- ranking after optimization --");
    for r in fw.rank(q, &answers, 3) {
        println!(
            "  #{} {} (score {:.5})",
            r.rank,
            fw.graph().label(r.node),
            r.score
        );
    }
}
