//! Scaling a large vote batch with split-and-merge (Section VI).
//!
//! Runs the same batch through the basic multi-vote solution, sequential
//! split-and-merge, and thread-parallel ("distributed") split-and-merge,
//! comparing wall-clock time and optimization quality.
//!
//! Run: `cargo run --release --example split_merge_at_scale`

use kg_cluster::{solve_split_merge, SplitMergeOptions};
use kg_datasets::{generate_votes, synthesize, VoteGenConfig, GNUTELLA};
use kg_sim::SimilarityConfig;
use kg_votes::{solve_multi_votes, MultiVoteOptions};
use std::time::Instant;

fn main() {
    let base = synthesize(&GNUTELLA, 0.02, 3);
    let world = generate_votes(
        &base,
        &VoteGenConfig {
            n_queries: 160,
            n_answers: 400,
            subgraph_nodes: base.node_count(),
            link_degree: 4,
            top_k: 20,
            target_best_rank: 10,
            positive_fraction: 0.5,
            sim: SimilarityConfig::default(),
            seed: 3,
        },
    );
    println!(
        "workload: {} nodes, {} edges, {} votes\n",
        world.graph.node_count(),
        world.graph.edge_count(),
        world.votes.len()
    );

    // Basic multi-vote: one big SGP program.
    let mut g = world.graph.clone();
    let started = Instant::now();
    let multi = solve_multi_votes(&mut g, &world.votes, &MultiVoteOptions::default());
    println!(
        "basic multi-vote:     {:>8.2?}  omega_avg {:.2}",
        started.elapsed(),
        multi.omega_avg()
    );

    // Split-and-merge, sequential.
    let mut g = world.graph.clone();
    let started = Instant::now();
    let sm = solve_split_merge(&mut g, &world.votes, &SplitMergeOptions::default());
    println!(
        "split-and-merge:      {:>8.2?}  omega_avg {:.2}  ({} clusters, avg size {:.1}, {} merge conflicts)",
        started.elapsed(),
        sm.report.omega_avg(),
        sm.clusters.len(),
        sm.avg_cluster_size(),
        sm.merge_conflicts
    );

    // Split-and-merge, 4 worker threads (the paper's "distributed" run).
    let mut g = world.graph.clone();
    let started = Instant::now();
    let dist = solve_split_merge(
        &mut g,
        &world.votes,
        &SplitMergeOptions {
            workers: 4,
            ..Default::default()
        },
    );
    println!(
        "distributed (4 thr):  {:>8.2?}  omega_avg {:.2}",
        started.elapsed(),
        dist.report.omega_avg()
    );
}
