//! Example 1 from the paper's introduction: an e-commerce site recommends
//! related products from a co-purchase knowledge graph; when customers
//! keep buying products that were *not* ranked first, those purchases are
//! implicit negative votes and the graph is optimized with them.
//!
//! Run: `cargo run --release --example ecommerce_recommendation`

use kg_datasets::{barabasi_albert, GeneratorOptions};
use kg_graph::{AugmentSpec, Augmented, NodeId};
use kg_sim::topk::rank_answers;
use kg_sim::SimilarityConfig;
use kg_votes::{solve_multi_votes, MultiVoteOptions, Vote, VoteSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let sim = SimilarityConfig::default();

    // Co-purchase graph: products with preferential attachment (popular
    // products co-occur in many baskets).
    let catalog = barabasi_albert(400, 3, &GeneratorOptions::default());
    let products: Vec<NodeId> = catalog.nodes().collect();

    // "Product pages" are queries; recommendation candidates are answers
    // linked from related products.
    let mut spec = AugmentSpec::new();
    for s in 0..30 {
        let links: Vec<_> = products
            .choose_multiple(&mut rng, 4)
            .map(|&p| (p, 1.0))
            .collect();
        spec.add_query(format!("session-{s}"), links);
    }
    for c in 0..80 {
        let links: Vec<_> = products
            .choose_multiple(&mut rng, 4)
            .map(|&p| (p, 1.0))
            .collect();
        spec.add_answer(format!("candidate-{c}"), links);
    }
    let aug = Augmented::build(&catalog, &spec).unwrap();
    let mut graph = aug.graph;

    // Implicit votes: for every session, the customer bought the 3rd-ranked
    // recommendation (when one exists) — a negative vote.
    let mut votes = VoteSet::new();
    for &session in &aug.query_nodes {
        let ranked = rank_answers(&graph, session, &aug.answer_nodes, &sim, 10);
        let list: Vec<_> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node)
            .collect();
        if list.len() >= 3 {
            votes.push(Vote::new(session, list.clone(), list[2]));
        }
    }
    println!(
        "co-purchase graph: {} products, {} edges; {} implicit purchase votes",
        catalog.node_count(),
        catalog.edge_count(),
        votes.len()
    );

    let report = solve_multi_votes(&mut graph, &votes, &MultiVoteOptions::default());
    println!(
        "after optimization: {}/{} purchased products now ranked first (omega_avg {:.2}, {} edges adjusted)",
        report.satisfied_votes(),
        report.outcomes.len(),
        report.omega_avg(),
        report.edges_changed,
    );

    // Show one session's recommendations before/after semantics.
    if let Some(outcome) = report.outcomes.first() {
        println!(
            "example session: purchased item moved rank {} -> {}",
            outcome.rank_before, outcome.rank_after
        );
    }
}
