//! End-to-end Q&A helpdesk: text corpus → knowledge graph → questions →
//! votes → optimization — the paper's Taobao scenario over the `kg-qa`
//! text pipeline.
//!
//! A synthetic e-commerce HELP corpus is generated from topic models and
//! compiled into a co-occurrence knowledge graph. A hidden user
//! preference exists that the graph cannot know up front: some documents
//! are *authoritative* (well-written, up to date) and users always vote
//! for the best authoritative document of the right topic. The example
//! measures how often an authoritative on-topic document ranks first on
//! held-out questions, before and after multi-vote optimization — the
//! "adapt to new knowledge" capability the paper motivates.
//!
//! Run: `cargo run --release --example qa_helpdesk`

use kg_datasets::corpus_gen::{generate_corpus, generate_questions, CorpusGenConfig};
use kg_qa::{QaSystem, QaSystemOptions, VocabularyOptions};
use kg_sim::SimilarityConfig;
use kg_votes::{solve_multi_votes, MultiVoteOptions, Vote, VoteSet};

fn main() {
    // 1. Corpus and Q&A system.
    let (corpus, doc_topics) = generate_corpus(&CorpusGenConfig {
        n_docs: 100,
        terms_per_doc: 16,
        topic_coherence: 0.65,
        seed: 7,
    });
    // A co-occurrence KG over a topical corpus is *dense* (average degree
    // ~70 here), so the path bound L is tuned down to 2 — Section VII-E's
    // pruning analysis is graph-dependent, and on dense graphs two hops
    // already carry almost all similarity mass while keeping the vote
    // encoding exact (no truncated path enumeration).
    let sim = SimilarityConfig::new(0.15, 2);
    let mut qa = QaSystem::build(
        &corpus,
        &QaSystemOptions {
            vocab: VocabularyOptions {
                min_doc_count: 2,
                max_doc_fraction: 0.8,
                min_token_len: 3,
            },
            sim,
        },
    );
    println!(
        "built KG from {} docs: {} entities, {} edges",
        corpus.len(),
        qa.vocab.len(),
        qa.graph.edge_count()
    );

    // Hidden ground truth the graph cannot know: every fourth block of documents is
    // authoritative (topics cycle mod 5, so this cuts across topics).
    let authoritative = |doc: usize| (doc / 5).is_multiple_of(4);

    // 2. Questions: half for voting, half held out.
    let (questions, q_topics) = generate_questions(60, 3, 99);
    let query_nodes = qa.register_queries(&questions);
    let (train, test) = query_nodes.split_at(30);
    let (train_topics, test_topics) = q_topics.split_at(30);

    // 3. Votes: the user picks the best-ranked *authoritative, on-topic*
    // document in the returned list.
    let mut votes = VoteSet::new();
    for (&q, &topic) in train.iter().zip(train_topics) {
        let ranked = qa.rank(q, 10);
        let list: Vec<_> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node)
            .collect();
        if list.len() < 2 {
            continue;
        }
        let best = list.iter().copied().find(|&a| {
            let d = qa.document_of(a).unwrap();
            authoritative(d) && doc_topics[d] == topic
        });
        if let Some(best) = best {
            votes.push(Vote::new(q, list, best));
        }
    }
    let (neg, pos) = votes.counts();
    println!(
        "collected {} votes ({neg} negative, {pos} positive)",
        votes.len()
    );

    // 4. Metric: held-out questions whose top answer is an authoritative
    // document of the right topic.
    let auth_at_1 = |qa: &QaSystem| -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for (&q, &topic) in test.iter().zip(test_topics) {
            if let Some(top) = qa.rank(q, 1).first() {
                if top.score > 0.0 {
                    total += 1;
                    let d = qa.document_of(top.node).unwrap();
                    if authoritative(d) && doc_topics[d] == topic {
                        hit += 1;
                    }
                }
            }
        }
        hit as f64 / total.max(1) as f64
    };

    let before = auth_at_1(&qa);
    let mut opts = MultiVoteOptions::default();
    opts.encode.sim = sim; // match the dense-graph path bound
    let report = solve_multi_votes(&mut qa.graph, &votes, &opts);
    let after = auth_at_1(&qa);

    println!(
        "votes satisfied: {}/{} (omega_avg {:.2}, {} edges adjusted)",
        report.satisfied_votes(),
        report.outcomes.len(),
        report.omega_avg(),
        report.edges_changed,
    );
    println!("held-out authoritative-doc@1: {before:.2} -> {after:.2}");
}
