//! Example 2 from the paper's introduction: a search engine ranks pages
//! via a knowledge graph; click events are implicit votes (clicking a
//! lower-ranked result = negative vote, clicking the top result =
//! positive vote). The framework consumes a click log and improves the
//! underlying graph.
//!
//! Run: `cargo run --release --example search_click_feedback`

use kg_datasets::{generate_votes, synthesize, VoteGenConfig, DIGG};
use kg_metrics::{omega_avg, RankPair};
use kg_sim::SimilarityConfig;
use votekg::{Framework, FrameworkConfig, Strategy};

fn main() {
    // A web-shaped graph (Digg clone, scaled down) with queries and
    // result pages attached; the vote generator plays the role of a click
    // log: ~half the users click the top result (positive), the rest
    // click something further down (negative).
    let base = synthesize(&DIGG, 0.03, 5);
    let world = generate_votes(
        &base,
        &VoteGenConfig {
            n_queries: 40,
            n_answers: 300,
            subgraph_nodes: base.node_count(),
            link_degree: 4,
            top_k: 10,
            target_best_rank: 4,
            positive_fraction: 0.5,
            sim: SimilarityConfig::default(),
            seed: 5,
        },
    );
    let (neg, pos) = world.votes.counts();
    println!(
        "click log: {} clicks over {} queries ({} skipped as unret rankable) — {neg} off-top clicks, {pos} top clicks",
        world.votes.len(),
        world.queries.len(),
        world.queries.len() - world.votes.len(),
    );

    let mut fw = Framework::new(world.graph, FrameworkConfig::default());
    for vote in world.votes.votes.clone() {
        fw.record_vote(vote);
    }
    let report = fw.optimize(Strategy::MultiVote);

    let pairs: Vec<RankPair> = report
        .outcomes
        .iter()
        .map(|o| RankPair {
            before: o.rank_before,
            after: o.rank_after,
        })
        .collect();
    println!(
        "optimized with multi-vote: omega_avg {:.2}; clicked results now at rank 1 for {}/{} queries",
        omega_avg(&pairs),
        report.satisfied_votes(),
        report.outcomes.len()
    );

    // The same clicks processed greedily (single-vote) for contrast.
    let mut fw2 = Framework::new(
        {
            // Rebuild the same world for a fair comparison.
            let base = synthesize(&DIGG, 0.03, 5);
            generate_votes(
                &base,
                &VoteGenConfig {
                    n_queries: 40,
                    n_answers: 300,
                    subgraph_nodes: base.node_count(),
                    link_degree: 4,
                    top_k: 10,
                    target_best_rank: 4,
                    positive_fraction: 0.5,
                    sim: SimilarityConfig::default(),
                    seed: 5,
                },
            )
            .graph
        },
        FrameworkConfig::default(),
    );
    for vote in world.votes.votes.clone() {
        fw2.record_vote(vote);
    }
    let single = fw2.optimize(Strategy::SingleVote);
    println!(
        "greedy single-vote for contrast: omega_avg {:.2} ({} of the clicks ignored as positive votes)",
        single.omega_avg(),
        pos,
    );
}
