#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the tier-1 build + test
# pass (see ROADMAP.md). Run before pushing; CI runs the same steps.
#
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt instead of only checking

set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
for arg in "$@"; do
    case "$arg" in
        --fix) FIX=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

if [ "$FIX" = 1 ]; then
    step "cargo fmt"
    cargo fmt --all
else
    step "cargo fmt --check"
    cargo fmt --all --check
fi

step "cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "tier-1: cargo build --release"
cargo build --release

step "bench binaries: cargo build --release -p kg-bench"
cargo build --release -p kg-bench --bins

step "tier-1: cargo test -q"
cargo test -q

step "fault-injection suites"
cargo test -q -p sgp --test fault_injection
cargo test -q -p kg-votes --test fault_injection
cargo test -q -p kg-cluster --test fault_isolation
cargo test -q -p votekg --test framework_faults

# Differential-fuzzing smoke: a short clean campaign over the solver
# matrix (release binary — debug would dominate the gate's runtime).
# Any divergence exits nonzero and leaves a replayable repro in the
# temp dir it names. Skip with VOTEKG_SKIP_FUZZ_SMOKE=1 when iterating
# on unrelated code; CI always runs it.
if [ "${VOTEKG_SKIP_FUZZ_SMOKE:-0}" = 1 ]; then
    step "fuzz-smoke (skipped: VOTEKG_SKIP_FUZZ_SMOKE=1)"
else
    step "fuzz-smoke: votekg fuzz --seed-range 0..25"
    FUZZ_OUT=$(mktemp -d)
    if target/release/votekg fuzz --seed-range 0..25 \
        --timeout-ms "${VOTEKG_FUZZ_TIMEOUT_MS:-5000}" --out "$FUZZ_OUT"; then
        rm -rf "$FUZZ_OUT"
    else
        echo "FAIL: solver divergence; repros kept in $FUZZ_OUT" >&2
        echo "Replay with: target/release/votekg fuzz --replay $FUZZ_OUT/seed-<n>.repro.json" >&2
        exit 1
    fi
fi

# The concurrency stress suite runs in release (debug is too slow to
# exercise real interleavings) with a bounded wall-clock budget per run.
step "concurrency stress suite (release, bounded budget)"
VOTEKG_STRESS_MS="${VOTEKG_STRESS_MS:-400}" \
VOTEKG_STRESS_READERS="${VOTEKG_STRESS_READERS:-4}" \
    cargo test -q --release --test concurrent_serving

# Lock-freedom gate: the snapshot-serving read path must stay free of
# blocking primitives. ArcCell (kg-graph/src/shared.rs) is the one
# vetted exception and keeps its slot ring out of this directory.
step "lock-freedom gate: no Mutex/RwLock in the kg-serve read path"
if grep -n -E 'Mutex|RwLock' \
    crates/kg-serve/src/concurrent.rs crates/kg-serve/src/server.rs; then
    echo "FAIL: blocking primitive in the kg-serve read path (see matches above)." >&2
    echo "Readers must stay lock-free; use ArcCell/atomics or move the state elsewhere." >&2
    exit 1
fi
echo "ok: kg-serve read path is free of Mutex/RwLock"

# Regression gate on swallowed failures: new bare `.expect(` / `.unwrap(`
# calls in non-test code of the fault-hardened crates must not creep back
# in. The baseline counts the vetted survivors (serialization helpers and
# internal invariants); raise it only with a review of the new call site.
step "expect/unwrap regression gate"
UNWRAP_BASELINE=12
count=0
for f in $(find crates/kg-votes/src crates/kg-cluster/src crates/core/src -name '*.rs'); do
    # Strip everything from the first `#[cfg(test)]` on: test modules sit
    # at the bottom of each file and may unwrap freely.
    n=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -c -E '\.(expect|unwrap)\(' || true)
    count=$((count + n))
done
if [ "$count" -gt "$UNWRAP_BASELINE" ]; then
    echo "FAIL: $count bare expect()/unwrap() calls in non-test pipeline code (baseline $UNWRAP_BASELINE)" >&2
    echo "Handle the failure (SolveOutcome / DiscardedVote / rollback) or update the baseline with a reviewed justification." >&2
    exit 1
fi
echo "ok: $count bare expect()/unwrap() calls (baseline $UNWRAP_BASELINE)"

printf '\nAll checks passed.\n'
