#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the tier-1 build + test
# pass (see ROADMAP.md). Run before pushing; CI runs the same steps.
#
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt instead of only checking

set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
for arg in "$@"; do
    case "$arg" in
        --fix) FIX=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

if [ "$FIX" = 1 ]; then
    step "cargo fmt"
    cargo fmt --all
else
    step "cargo fmt --check"
    cargo fmt --all --check
fi

step "cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "tier-1: cargo build --release"
cargo build --release

step "bench binaries: cargo build --release -p kg-bench"
cargo build --release -p kg-bench --bins

step "tier-1: cargo test -q"
cargo test -q

printf '\nAll checks passed.\n'
