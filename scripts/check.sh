#!/usr/bin/env bash
# Repository health gate: formatting, lints, and the tier-1 build + test
# pass (see ROADMAP.md). Run before pushing; CI runs the same steps.
#
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt instead of only checking

set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
for arg in "$@"; do
    case "$arg" in
        --fix) FIX=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

if [ "$FIX" = 1 ]; then
    step "cargo fmt"
    cargo fmt --all
else
    step "cargo fmt --check"
    cargo fmt --all --check
fi

step "cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "tier-1: cargo build --release"
cargo build --release

step "bench binaries: cargo build --release -p kg-bench"
cargo build --release -p kg-bench --bins

# The root package does not depend on the CLI crate, so the tier-1 build
# above never links target/release/votekg — build it explicitly before
# the smoke gates below shell out to it.
step "cli binary: cargo build --release -p votekg-cli"
cargo build --release -p votekg-cli

step "tier-1: cargo test -q"
cargo test -q

step "fault-injection suites"
cargo test -q -p sgp --test fault_injection
cargo test -q -p kg-votes --test fault_injection
cargo test -q -p kg-cluster --test fault_isolation
cargo test -q -p votekg --test framework_faults

# Differential-fuzzing smoke: a short clean campaign over the solver
# matrix (release binary — debug would dominate the gate's runtime).
# Any divergence exits nonzero and leaves a replayable repro in the
# temp dir it names. Skip with VOTEKG_SKIP_FUZZ_SMOKE=1 when iterating
# on unrelated code; CI always runs it.
if [ "${VOTEKG_SKIP_FUZZ_SMOKE:-0}" = 1 ]; then
    step "fuzz-smoke (skipped: VOTEKG_SKIP_FUZZ_SMOKE=1)"
else
    step "fuzz-smoke: votekg fuzz --seed-range 0..25"
    FUZZ_OUT=$(mktemp -d)
    if target/release/votekg fuzz --seed-range 0..25 \
        --timeout-ms "${VOTEKG_FUZZ_TIMEOUT_MS:-5000}" --out "$FUZZ_OUT"; then
        rm -rf "$FUZZ_OUT"
    else
        echo "FAIL: solver divergence; repros kept in $FUZZ_OUT" >&2
        echo "Replay with: target/release/votekg fuzz --replay $FUZZ_OUT/seed-<n>.repro.json" >&2
        exit 1
    fi
fi

# The concurrency stress suite runs in release (debug is too slow to
# exercise real interleavings) with a bounded wall-clock budget per run.
step "concurrency stress suite (release, bounded budget)"
VOTEKG_STRESS_MS="${VOTEKG_STRESS_MS:-400}" \
VOTEKG_STRESS_READERS="${VOTEKG_STRESS_READERS:-4}" \
    cargo test -q --release --test concurrent_serving

# Network front-end suites, also in release: the protocol torture tests
# (malformed/truncated/slow/abrupt input must never panic or hang a
# worker), the socket soak (wire bytes verified against the snapshot of
# their served epoch while optimization races), and the end-to-end WAL
# durability workflow over a real `votekg serve` child process.
step "server suites: protocol torture + socket soak + serve durability (release)"
cargo test -q --release --test server_protocol
VOTEKG_SOAK_MS="${VOTEKG_SOAK_MS:-400}" \
VOTEKG_SOAK_CLIENTS="${VOTEKG_SOAK_CLIENTS:-4}" \
    cargo test -q --release --test server_concurrent
cargo test -q --release -p votekg-cli --test serve_workflow

# Server load smoke gate: a short burst through the wire-protocol
# front-end with live optimization rounds. --enforce exits nonzero on
# any wire error, epoch regression, unfired optimization trigger, or
# unclean drain. Writes to a temp file so the committed
# BENCH_server.json (a full-size run) is not clobbered.
step "server smoke: short load burst, zero protocol errors, clean drain"
target/release/server_load --clients 4 --requests 16 --opt-rounds 1 \
    --enforce --out "$(mktemp)"

# Lock-freedom gate: the snapshot-serving read path and the flight
# recorder's event rings must stay free of blocking primitives. ArcCell
# (kg-graph/src/shared.rs) is the one vetted exception and keeps its
# slot ring out of these files; the recorder is seqlock-over-atomics by
# design (hot-path writers must never block or wait on readers).
step "lock-freedom gate: no Mutex/RwLock in kg-serve read path or recorder"
if grep -n -E 'Mutex|RwLock' \
    crates/kg-serve/src/concurrent.rs crates/kg-serve/src/server.rs \
    crates/kg-telemetry/src/recorder.rs; then
    echo "FAIL: blocking primitive in a lock-free path (see matches above)." >&2
    echo "Readers/recorders must stay lock-free; use atomics/seqlocks or move the state elsewhere." >&2
    exit 1
fi
echo "ok: kg-serve read path and kg-telemetry recorder are free of Mutex/RwLock"

# Flight-recorder smoke: record a real optimize run through the binary,
# round-trip the Chrome trace through export, and gate the timeline
# report at the documented >=95% phase coverage. Exercises the same
# record -> export -> report pipeline a user drives (README
# "Observability").
step "trace smoke: record -> export -> report (>=95% coverage)"
TRACE_OUT=$(mktemp -d)
target/release/votekg gen-corpus --docs 80 --seed 7 --out "$TRACE_OUT/corpus.json"
target/release/votekg build --corpus "$TRACE_OUT/corpus.json" --out "$TRACE_OUT/system.json"
# Seeded corpus => deterministic ranking: doc-30 sits at #3, so voting
# it best yields a real negative vote for the optimizer to chew on.
target/release/votekg vote --system "$TRACE_OUT/system.json" \
    --log "$TRACE_OUT/votes.jsonl" --question "refund order rules" --best doc-30
target/release/votekg trace record --system "$TRACE_OUT/system.json" \
    --log "$TRACE_OUT/votes.jsonl" --out "$TRACE_OUT/run.trace.json"
target/release/votekg trace export --in "$TRACE_OUT/run.trace.json" \
    --out "$TRACE_OUT/normalized.trace.json"
target/release/votekg trace report --in "$TRACE_OUT/normalized.trace.json" \
    --min-coverage 0.95
rm -rf "$TRACE_OUT"
echo "ok: trace record/export/report round-trips with >=95% phase coverage"

# Crash-recovery smoke gate: run a durable optimize with the WAL crash
# hook armed so the process aborts mid-run (after the 2nd committed
# round of 3), then recover twice from the WAL. The run must actually
# die, recovery must report a verified state, and both recoveries must
# land on the same version + weights checksum (README "Durability").
step "crash-recovery smoke: optimize --wal + injected abort + recover x2"
WAL_OUT=$(mktemp -d)
target/release/votekg gen-corpus --docs 80 --seed 7 --out "$WAL_OUT/corpus.json"
target/release/votekg build --corpus "$WAL_OUT/corpus.json" --out "$WAL_OUT/system.json"
for _ in 1 2 3; do
    target/release/votekg vote --system "$WAL_OUT/system.json" \
        --log "$WAL_OUT/votes.jsonl" --question "refund order rules" --best doc-30
done
cp "$WAL_OUT/system.json" "$WAL_OUT/system-crashed.json"
if VOTEKG_WAL_CRASH_AFTER_COMMITS=2 target/release/votekg optimize \
    --system "$WAL_OUT/system-crashed.json" --log "$WAL_OUT/votes.jsonl" \
    --batch 1 --wal "$WAL_OUT/wal" >/dev/null 2>&1; then
    echo "FAIL: optimize survived the injected crash (VOTEKG_WAL_CRASH_AFTER_COMMITS=2)" >&2
    exit 1
fi
rec1=$(target/release/votekg recover --system "$WAL_OUT/system-crashed.json" \
    --wal "$WAL_OUT/wal" --out "$WAL_OUT/recovered.json")
rec2=$(target/release/votekg recover --system "$WAL_OUT/system-crashed.json" \
    --wal "$WAL_OUT/wal" --out "$WAL_OUT/recovered.json")
if ! grep -q '^verified:' <<<"$rec1"; then
    echo "FAIL: recovery did not verify the replayed rounds:" >&2
    echo "$rec1" >&2
    exit 1
fi
if [ "$(head -n1 <<<"$rec1")" != "$(head -n1 <<<"$rec2")" ]; then
    echo "FAIL: recovery is not idempotent; two runs disagreed:" >&2
    echo "  first:  $(head -n1 <<<"$rec1")" >&2
    echo "  second: $(head -n1 <<<"$rec2")" >&2
    exit 1
fi
# The crash landed between commits, so the WAL must carry the committed
# rounds plus the not-yet-optimized vote as pending work.
if ! grep -q '1 pending vote' <<<"$rec1"; then
    echo "FAIL: expected 1 pending vote after aborting 2 of 3 commits:" >&2
    echo "$rec1" >&2
    exit 1
fi
rm -rf "$WAL_OUT"
echo "ok: injected crash killed the run; recovery is verified and idempotent"

# Telemetry overhead gate: the flight recorder must cost <=10% on the
# cached re-rank hot path (BENCH_telemetry_overhead.json documents the
# measured arms; --enforce exits nonzero past the budget).
step "telemetry overhead gate: recorder <=10% on cached re-rank path"
target/release/telemetry_overhead --enforce \
    --out "${VOTEKG_OVERHEAD_OUT:-BENCH_telemetry_overhead.json}"

# Delta-propagation smoke gate: a release-mode churn sweep. The serve
# binary asserts exact-mode byte equality on every round (cached vs
# uncached in the main loop; repair vs evict vs uncached inside the
# sweep — any f64::to_bits divergence panics), and --enforce-delta
# additionally requires that incremental repair at the 1% churn point
# beats both the seed's full-recompute cached path (>= 3x) and the
# same-run full recompute. Writes to a temp file so the committed
# BENCH_serve.json (a full-size run) is not clobbered by this smoke.
step "delta-repair gate: churn-sweep exactness + repair beats recompute at 1% churn"
target/release/serve --rounds 8 --churn-rounds 6 --enforce-delta \
    --out "$(mktemp)"

# Regression gate on swallowed failures: new bare `.expect(` / `.unwrap(`
# calls in non-test code of the fault-hardened crates must not creep back
# in. The baseline counts the vetted survivors (serialization helpers and
# internal invariants); raise it only with a review of the new call site.
step "expect/unwrap regression gate"
UNWRAP_BASELINE=12
count=0
for f in $(find crates/kg-votes/src crates/kg-cluster/src crates/core/src -name '*.rs'); do
    # Strip everything from the first `#[cfg(test)]` on: test modules sit
    # at the bottom of each file and may unwrap freely.
    n=$(awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -c -E '\.(expect|unwrap)\(' || true)
    count=$((count + n))
done
if [ "$count" -gt "$UNWRAP_BASELINE" ]; then
    echo "FAIL: $count bare expect()/unwrap() calls in non-test pipeline code (baseline $UNWRAP_BASELINE)" >&2
    echo "Handle the failure (SolveOutcome / DiscardedVote / rollback) or update the baseline with a reviewed justification." >&2
    exit 1
fi
echo "ok: $count bare expect()/unwrap() calls (baseline $UNWRAP_BASELINE)"

printf '\nAll checks passed.\n'
