#!/usr/bin/env bash
# Runs the serving benchmark (cached vs uncached multi-round re-ranking,
# see crates/bench/src/bin/serve.rs) and writes BENCH_serve.json at the
# repo root. Extra flags are forwarded to the binary, e.g.:
#
#   scripts/bench_serve.sh --votes 256 --rounds 64 --workers 4

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p kg-bench --bin serve
./target/release/serve --out BENCH_serve.json "$@"
