#!/usr/bin/env bash
# Runs the serving benchmarks and writes their JSON reports at the repo
# root:
#
#   cache   cached vs uncached multi-round re-ranking
#           (crates/bench/src/bin/serve.rs -> BENCH_serve.json)
#   load    wire-protocol server under closed- and open-loop load with
#           live optimization rounds
#           (crates/bench/src/bin/server_load.rs -> BENCH_server.json)
#   all     both of the above (default)
#
# Usage: scripts/bench_serve.sh [cache|load|all] [flags...]
# Extra flags are forwarded to the selected binary (pick a single
# target when passing flags), e.g.:
#
#   scripts/bench_serve.sh cache --votes 256 --rounds 64 --workers 4
#   scripts/bench_serve.sh load --clients 16 --requests 80 --opt-rounds 3

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=all
case "${1:-}" in
    cache|load|all) TARGET="$1"; shift ;;
esac
if [ "$TARGET" = all ] && [ "$#" -gt 0 ]; then
    echo "pass a single target (cache|load) when forwarding flags" >&2
    exit 2
fi

if [ "$TARGET" = cache ] || [ "$TARGET" = all ]; then
    cargo build --release -p kg-bench --bin serve
    ./target/release/serve --out BENCH_serve.json "$@"
fi

if [ "$TARGET" = load ] || [ "$TARGET" = all ]; then
    cargo build --release -p kg-bench --bin server_load
    ./target/release/server_load --out BENCH_server.json "$@"
fi
