//! Offline stub for `serde_json`: JSON text over the serde stub's
//! [`serde::Value`] model. `to_string` / `to_string_pretty` / `from_str`
//! with standard escaping, exact u64/i64 integers, and shortest-round-trip
//! float formatting (Rust's `{:?}`, same family as ryu).

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------- writer

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {f}")));
            }
            // {:?} prints the shortest string that round-trips, always
            // with a decimal point or exponent — valid JSON for finite f64.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require \uXXXX low surrogate.
                    if !self.eat_keyword("\\u") {
                        return Err(Error::new("unpaired surrogate in \\u escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate in \\u escape"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new("invalid \\u escape code point"))?,
                );
            }
            other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(mag) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                let _ = mag;
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 1;
        let j = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&j).unwrap(), big);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 2.5e40, -0.0] {
            let j = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&j).unwrap(), f, "via {j}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\n\t\u{08}\u{0c}\u{1f}é漢";
        let j = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
        // Unicode escapes, including a surrogate pair.
        let escaped = "\"\\u00e9\\ud83d\\ude00\"";
        assert_eq!(from_str::<String>(escaped).unwrap(), "é😀");
    }

    #[test]
    fn vec_and_option() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let j = to_string(&v).unwrap();
        assert_eq!(j, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&j).unwrap(), v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("5 x")
            .unwrap_err()
            .to_string()
            .contains("trailing"));
        assert!(from_str::<bool>("truth").is_err());
    }
}
