//! Offline stub for `bytes`: a reference-counted byte buffer (`Bytes`),
//! a growable builder (`BytesMut`), and the big-endian `Buf`/`BufMut`
//! accessor subset used by the graph binary codec.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// Reads `len` bytes at the cursor, advancing past them.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64;
}

/// Write sink for bytes (big-endian writers).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply cloneable view into shared byte storage.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps an owned vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view relative to this view's current window.
    ///
    /// # Panics
    /// Panics when the range exceeds the view.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

/// A growable byte builder; freeze it into [`Bytes`] when done.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xdead_beef);
        b.put_u8(7);
        b.put_f64(1.5);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(&*r.copy_to_bytes(2), b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from_vec(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(&*s.slice(1..3), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_vec(vec![1]);
        b.get_u32();
    }
}
