//! Offline stub for `proptest`: deterministic random-input testing with
//! the same call shape (`proptest! { #[test] fn f(x in strat) {...} }`,
//! `Strategy`, `prop_map`/`prop_flat_map`, `prop_oneof!`,
//! `collection::{vec, btree_set, hash_map}`).
//!
//! Differences from the real crate: no shrinking (a failure reports the
//! case number; re-runs are deterministic per test name), and `&str`
//! strategies support only the `.{lo,hi}` regex shape the workspace uses
//! (anything else falls back to short alphanumeric strings).

pub mod test_runner {
    //! Deterministic RNG, per-test configuration, and case outcomes.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — skip, not a failure.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    /// Deterministic splitmix64 generator, seeded from the test name so
    /// every run of a test replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, spread-out seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            std::ops::Range {
                start: self.start as f64,
                end: self.end as f64,
            }
            .generate(rng) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    /// Regex-shaped string strategy. Only the `.{lo,hi}` form is modeled
    /// (uniform length, chars from a mixed printable pool); any other
    /// pattern yields short alphanumeric strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            // Mixed pool: forces normalization paths (case, punctuation,
            // whitespace, a couple of multi-byte characters).
            const POOL: &[char] = &[
                'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p',
                'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'Z',
                '0', '1', '2', '7', '9', ' ', ' ', '\t', '.', ',', '!', '?', '-', '_', '/', '(',
                ')', '\'', '"', 'é', 'ß', 'Ω', '漢',
            ];
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    //! Strategies for collections of generated values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashMap};

    /// Accepted size arguments: an exact `usize`, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for ordered sets; duplicates shrink the realized size,
    /// as in the real crate.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..(target * 4 + 4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Ordered set of `element` values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for hash maps keyed by `key` values.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: std::hash::Hash + Eq,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashMap::new();
            for _ in 0..(target * 4 + 4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// Map from `key` values to `value` values.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V> {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases * 16 + 256 {
                            panic!("too many prop_assume! rejections in {}", stringify!($name));
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
}

/// Skips the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u64..100, n)).prop_map(|(n, v)| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_length_matches((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn assume_rejects_cleanly(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_str(word in prop_oneof![Just("alpha"), Just("beta")], s in ".{0,80}") {
            prop_assert!(word == "alpha" || word == "beta");
            prop_assert!(s.chars().count() <= 80);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
