//! Offline stub for `rand`: the `RngCore`/`Rng`/`SeedableRng` traits plus
//! the `seq::SliceRandom` helpers, covering exactly the surface this
//! workspace uses. Backing generators live in `rand_chacha`.

/// Low-level uniform bit source. Every generator implements this; the
/// ergonomic methods live on [`Rng`], blanket-implemented for all cores.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Ergonomic sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (e.g. `rng.gen::<f64>()` in [0,1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 and builds the
    /// generator. Deterministic across runs and platforms.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Random sampling from slices.

    use super::RngCore;

    /// Iterator over a without-replacement sample of slice elements.
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements chosen uniformly without
        /// replacement (all of them when `amount >= len`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table: the first
            // `amount` entries are a uniform without-replacement sample.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: idx.into_iter(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StepRng(42);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3..10usize);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&b));
            let c = rng.gen_range(0.05..1.0);
            assert!((0.05..1.0).contains(&c));
        }
    }

    #[test]
    fn choose_multiple_is_distinct_sample() {
        let mut rng = StepRng(9);
        let pool: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "sample must be without replacement");
        // Oversized requests clamp to the slice length.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 20);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StepRng(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
