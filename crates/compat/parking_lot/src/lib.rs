//! Offline stub for `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's non-poisoning API (lock methods return guards directly).

use std::sync;

/// A mutex that never poisons: a panicked holder just releases the lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
