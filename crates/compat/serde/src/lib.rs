//! Offline stub for `serde`: `Serialize`/`Deserialize` defined directly
//! over an internal JSON-shaped [`Value`] model instead of the real
//! crate's visitor architecture. The public surface the workspace touches
//! — the two traits, the derive macros, and the representation conventions
//! (structs as objects, unit variants as strings, data variants as
//! single-key objects, newtype structs transparent, `Duration` as
//! `{secs, nanos}`, missing `Option` fields as `None`) — matches real
//! serde, so swapping the real crates back in is a manifest-only change.
//!
//! Integer fidelity: [`Value`] keeps `u64` (`UInt`) and `i64` (`Int`)
//! distinct from `f64` (`Float`) so 64-bit hashes round-trip exactly.

use std::collections::HashMap;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The data model serialization passes through (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Negative integers (and any integer parsed with a `-` sign).
    Int(i64),
    /// Non-negative integers, kept exact up to `u64::MAX`.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects as ordered key/value pairs (field order = declaration
    /// order, map keys sorted for deterministic output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value a derived struct uses when the field is absent.
    /// `None` means the field is required; overridden by `Option<T>`.
    #[doc(hidden)]
    fn __missing() -> Option<Self> {
        None
    }
}

/// Looks up `name` in a derived struct's object entries. Used by
/// generated code; not part of the public API.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("{context}.{name}: {e}")))
        }
        None => T::__missing()
            .ok_or_else(|| Error::custom(format!("missing field `{name}` in {context}"))),
    }
}

// ----------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::custom(format!(
                        "expected unsigned integer, found {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u).map_err(|_| {
                        Error::custom(format!("integer {u} out of i64 range"))
                    })?,
                    _ => return Err(Error::custom(format!(
                        "expected integer, found {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            _ => Err(Error::custom(format!(
                "expected number, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!(
                "expected string, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Needed for derived structs holding `&'static str` (dataset specs).
/// The string is leaked; such structs are deserialized rarely, in tests.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom(format!(
                "expected string, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn __missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom(format!(
                    "expected array for tuple, found {}", v.kind())))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected {want}-element array, found {}", arr.len())));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0) (A:0, B:1) (A:0, B:1, C:2) (A:0, B:1, C:2, D:3)
}

/// `Duration` as `{"secs": u64, "nanos": u32}`, matching real serde.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object for Duration"))?;
        let secs: u64 = __field(obj, "secs", "Duration")?;
        let nanos: u32 = __field(obj, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

// ------------------------------------------------------------------ maps

fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        other => panic!(
            "map key must serialize to a string or integer, got {}",
            other.kind()
        ),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot deserialize map key `{s}`")))
}

/// Maps serialize as objects with stringified keys, sorted by key for
/// deterministic output (real serde_json preserves iteration order,
/// which for `HashMap` is nondeterministic — sorting is strictly safer).
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object for map, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object for map, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_semantics() {
        assert!(matches!(<Option<bool>>::__missing(), Some(None)));
        assert!(<bool as Deserialize>::__missing().is_none());
    }

    #[test]
    fn u64_roundtrips_exactly() {
        let big: u64 = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn map_keys_sorted_and_recovered() {
        let mut m = HashMap::new();
        m.insert(10u32, 1.5f64);
        m.insert(2u32, -0.5f64);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "10");
        assert_eq!(obj[1].0, "2");
        let back: HashMap<u32, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn duration_shape() {
        let d = Duration::new(3, 500);
        let v = d.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("secs".into(), Value::UInt(3)),
                ("nanos".into(), Value::UInt(500)),
            ])
        );
        assert_eq!(Duration::from_value(&v).unwrap(), d);
    }
}
