//! Offline stub for `rand_chacha`: a genuine ChaCha8 keystream generator
//! (the real quarter-round schedule, 8 rounds, 64-bit block counter)
//! implementing the `rand` stub's `RngCore` + `SeedableRng`. Deterministic
//! and platform-independent; stream values differ from the upstream crate.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce, as the 16-word ChaCha state.
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buf`; `WORDS_PER_BLOCK` forces a refill.
    pos: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(work.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.pos >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; WORDS_PER_BLOCK],
            pos: WORDS_PER_BLOCK,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn keystream_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Crude uniformity check: mean of [0,1) draws near 0.5.
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
