//! Offline stub for `criterion`: a minimal micro-benchmark harness with
//! the same call shape (`benchmark_group`, `bench_with_input`,
//! `iter`/`iter_batched`, `criterion_group!`/`criterion_main!`).
//!
//! It runs each benchmark for a bounded number of iterations inside the
//! configured measurement window and prints mean wall-time per iteration.
//! Good enough to compare orders of magnitude — not a statistics engine.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// iteration regardless; the variants exist for call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// One large input per batch.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{function}/{parameter}"`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly; stores the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 && start.elapsed() >= self.measurement_time {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
            if iters >= self.sample_size as u64 && start.elapsed() >= self.measurement_time {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = busy.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    #[allow(dead_code)]
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Minimum number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget (accepted for compatibility; the stub skips warm-up).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {} ({} iterations)",
            self.name,
            id,
            format_ns(b.mean_ns),
            b.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        self.run(id.id, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        let id: BenchmarkId = id.into();
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing; results stream as they finish).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI arguments for compatibility (`--bench` etc. ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group with default timing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark with default configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name)
            .bench_function(BenchmarkId::from("run"), f);
        self
    }

    /// Final report hook (results already streamed).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(1));
        group.bench_function("id", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
