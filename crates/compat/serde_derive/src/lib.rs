//! Offline stub for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! generating impls of the serde stub's value-model traits
//! (`to_value`/`from_value`), without syn/quote.
//!
//! Supported shapes — exactly what this workspace derives on:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, newtype, tuple, or struct-like. `#[serde(...)]` attributes are
//! not supported and are rejected loudly rather than ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes (rejecting `#[serde(...)]`) and any
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        panic!("serde stub derive does not support #[serde(...)] attributes");
                    }
                    *i += 2;
                } else {
                    panic!("stray `#` in item");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` from a brace group, tracking angle-bracket
/// depth so commas inside `HashMap<K, V>` don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` or end of tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stub derive does not support explicit enum discriminants");
        }
        variants.push(Variant { name, kind });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __obj: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: serde::__field(__obj, \"{f}\", \"{name}\")?,\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| serde::Error::custom(\
                             format!(\"expected object for struct {name}, found {{}}\", __v.kind())))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let __arr = __v.as_array().ok_or_else(|| serde::Error::custom(\
                             \"expected array for tuple struct {name}\"))?;\n\
                         if __arr.len() != {arity} {{\n\
                             return Err(serde::Error::custom(format!(\
                                 \"expected {arity} elements for {name}, found {{}}\", __arr.len())));\n\
                         }}\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__val)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __arr = __val.as_array().ok_or_else(|| serde::Error::custom(\
                                         \"expected array for variant {name}::{vn}\"))?;\n\
                                     if __arr.len() != {n} {{\n\
                                         return Err(serde::Error::custom(\
                                             \"wrong arity for variant {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}\n",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: serde::__field(__obj, \"{f}\", \"{name}::{vn}\")?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __obj = __val.as_object().ok_or_else(|| serde::Error::custom(\
                                         \"expected object for variant {name}::{vn}\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(serde::Error::custom(format!(\
                                     \"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
                             }},\n\
                             serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                                 let (__k, __val) = &__o[0];\n\
                                 let _ = __val;\n\
                                 match __k.as_str() {{\n\
                                     {data_arms}\
                                     __other => Err(serde::Error::custom(format!(\
                                         \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::Error::custom(format!(\
                                 \"expected string or single-key object for enum {name}, found {{}}\",\
                                 __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
