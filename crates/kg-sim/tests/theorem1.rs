//! Numeric verification of Theorem 1: the extended inverse P-distance
//! equals the PPR vector scores on weighted graphs, and the three engines
//! (forward DP, backward per-answer, symbolic path sum) agree with each
//! other on random graphs.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use kg_sim::{
    enumerate_paths, phi_from_paths, phi_vector, ppr_vector, random_walk_similarity, PprOptions,
    SimilarityConfig,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random row-substochastic weighted digraph.
fn arb_graph() -> impl Strategy<Value = KnowledgeGraph> {
    (3usize..25)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
            (Just(n), proptest::collection::vec(edge, 1..80))
        })
        .prop_map(|(n, mut edges)| {
            let mut seen = HashSet::new();
            edges.retain(|&(f, t, _)| seen.insert((f, t)));
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_node(format!("v{i}"), NodeKind::Entity);
            }
            for (f, t, w) in edges {
                b.add_edge(NodeId(f), NodeId(t), w).unwrap();
            }
            let mut g = b.build();
            // Normalize so rows are stochastic: the PPR series then has a
            // clean geometric tail bound used in theorem1_truncation below.
            g.normalize_out_edges();
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: Φ with a large L matches full PPR power iteration.
    /// With row-stochastic weights the truncation error after L terms is
    /// at most (1-c)^{L+1}.
    #[test]
    fn theorem1_phi_equals_ppr(g in arb_graph(), qi in 0u32..3) {
        let q = NodeId(qi % g.node_count() as u32);
        let l = 60usize;
        let cfg = SimilarityConfig::new(0.15, l);
        let phi = phi_vector(&g, q, &cfg);
        let pi = ppr_vector(&g, q, &PprOptions { restart: 0.15, max_iters: 500, tol: 1e-15 });
        let tail = 0.85f64.powi(l as i32 + 1);
        for v in 0..g.node_count() {
            prop_assert!(
                (phi[v] - pi[v]).abs() <= tail + 1e-10,
                "node {v}: phi {} vs ppr {}", phi[v], pi[v]
            );
        }
    }

    /// The forward DP and the per-answer backward baseline compute the
    /// same Φ values exactly.
    #[test]
    fn forward_and_backward_agree(g in arb_graph(), qi in 0u32..3) {
        let q = NodeId(qi % g.node_count() as u32);
        let cfg = SimilarityConfig::new(0.15, 5);
        let all: Vec<NodeId> = g.nodes().collect();
        let fwd = phi_vector(&g, q, &cfg);
        let bwd = random_walk_similarity(&g, q, &all, &cfg);
        for (i, &v) in all.iter().enumerate() {
            prop_assert!(
                (fwd[v.index()] - bwd[i]).abs() < 1e-10,
                "node {v}: {} vs {}", fwd[v.index()], bwd[i]
            );
        }
    }

    /// Symbolic path enumeration reproduces the DP value whenever the
    /// enumeration completes without truncation.
    #[test]
    fn symbolic_paths_match_dp(g in arb_graph(), qi in 0u32..3, ti in 0u32..7) {
        let q = NodeId(qi % g.node_count() as u32);
        let t = NodeId(ti % g.node_count() as u32);
        let cfg = SimilarityConfig::new(0.15, 4);
        let ps = enumerate_paths(&g, q, &[t], &cfg, 2_000_000);
        prop_assume!(!ps.truncated);
        let dp = phi_vector(&g, q, &cfg);
        let mut expect = dp[t.index()];
        if t == q {
            expect -= cfg.restart; // enumeration skips the length-0 walk
        }
        let sym = phi_from_paths(ps.paths_to(t), &g, cfg.restart);
        prop_assert!((sym - expect).abs() < 1e-10, "{sym} vs {expect}");
    }

    /// Φ is monotone in edge weights: raising any single edge weight never
    /// lowers any Φ(q, ·) score (all walk terms have positive
    /// coefficients). This is the property that makes vote-driven weight
    /// *increases* raise answer rankings.
    #[test]
    fn phi_is_monotone_in_weights(g in arb_graph(), qi in 0u32..3, ei in 0u32..10) {
        prop_assume!(g.edge_count() > 0);
        let q = NodeId(qi % g.node_count() as u32);
        let e = kg_graph::EdgeId(ei % g.edge_count() as u32);
        let cfg = SimilarityConfig::new(0.15, 5);
        let before = phi_vector(&g, q, &cfg);
        let mut g2 = g.clone();
        let w = g2.weight(e);
        g2.set_weight(e, (w * 1.5).min(1.0)).unwrap();
        let after = phi_vector(&g2, q, &cfg);
        for v in 0..g.node_count() {
            prop_assert!(after[v] >= before[v] - 1e-12);
        }
    }
}
