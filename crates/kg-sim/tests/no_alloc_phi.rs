//! Asserts the warm ranking hot path is allocation-free: once a
//! [`kg_sim::PhiWorkspace`] has evaluated a query on a graph (buffers
//! grown to the node count, frontier lists and ranking scratch at their
//! high-water marks), further `compute`/`rank_into` calls must not touch
//! the heap. This is the property the serving layer's throughput rests
//! on — without it every cache miss would pay three `O(n)` allocations.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator does not interfere with other tests (same pattern as
//! kg-telemetry's `tests/no_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use kg_sim::{delta_phi, DeltaConfig, PhiRecord, PhiWorkspace, RepairScratch, SimilarityConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Budget for allocations made by *other* threads of the test process
/// (libtest's harness) during a measurement window. Far below the ~800
/// measured kernel calls per phase, so a genuinely allocating hot path
/// still fails loudly.
const NOISE_ALLOWANCE: u64 = 64;

/// A deterministic layered graph big enough that the walk fans out over
/// many nodes and several frontier levels.
fn build_graph() -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let queries: Vec<NodeId> = (0..8)
        .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
        .collect();
    let hubs: Vec<NodeId> = (0..40)
        .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
        .collect();
    let answers: Vec<NodeId> = (0..16)
        .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
        .collect();
    for (qi, &q) in queries.iter().enumerate() {
        for (hi, &h) in hubs.iter().enumerate() {
            if (qi + hi) % 3 != 0 {
                b.add_edge(q, h, 0.1 + ((qi * 7 + hi) % 10) as f64 / 10.0)
                    .unwrap();
            }
        }
    }
    for (hi, &h) in hubs.iter().enumerate() {
        for (hj, &h2) in hubs.iter().enumerate() {
            if hi != hj && (hi * 5 + hj) % 7 == 0 {
                b.add_edge(h, h2, 0.2).unwrap();
            }
        }
        for (ai, &a) in answers.iter().enumerate() {
            if (hi + ai) % 2 == 0 {
                b.add_edge(h, a, 0.3 + (ai % 5) as f64 / 10.0).unwrap();
            }
        }
    }
    let mut g = b.build();
    g.normalize_out_edges();
    (g, queries, answers)
}

/// Both properties are measured from ONE `#[test]` function: the
/// allocation counter is process-global, and libtest runs separate tests
/// on separate threads whose harness bookkeeping (thread spawns, stdout
/// capture) would bleed into each other's measurement windows — observed
/// as a rare flake before the two tests were merged.
#[test]
fn warm_paths_do_not_allocate() {
    warm_ranking_path_does_not_allocate();
    warm_compute_with_pruning_does_not_allocate();
    warm_delta_repair_does_not_allocate();
}

fn warm_ranking_path_does_not_allocate() {
    kg_telemetry::disable();
    let (graph, queries, answers) = build_graph();
    let cfg = SimilarityConfig::default();
    let mut ws = PhiWorkspace::new();
    let mut out = Vec::new();

    // Warm-up: grow every buffer to its high-water mark across all the
    // queries we are about to measure.
    for &q in &queries {
        ws.rank_into(&graph, q, &answers, &cfg, answers.len(), &mut out);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..100 {
        for &q in &queries {
            let k = 1 + (round % answers.len());
            ws.rank_into(&graph, q, &answers, &cfg, k, &mut out);
            assert!(!out.is_empty());
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    // The counter is process-global and the libtest harness thread makes
    // a handful of allocations of its own at unpredictable times, so
    // allow a small constant of noise: the property under test is
    // per-call, and a single allocation per rank_into would show up as
    // >= 800 here.
    assert!(
        after - before < NOISE_ALLOWANCE,
        "warm PhiWorkspace ranking must not allocate (saw {})",
        after - before
    );
}

/// The serving layer's repair loop — `delta_phi` against a captured
/// [`PhiRecord`] followed by a re-rank from the repaired record — must be
/// heap-free once the [`RepairScratch`] and record buffers are at their
/// high-water marks. Graph mutation happens *outside* the measured
/// windows (the weight log may grow); only the repair + re-rank calls are
/// counted, matching what a warm `ScoreServer::sync` pays per entry.
fn warm_delta_repair_does_not_allocate() {
    kg_telemetry::disable();
    let (mut graph, queries, answers) = build_graph();
    let cfg = SimilarityConfig::default();
    let delta_cfg = DeltaConfig::default();
    let mut ws = PhiWorkspace::new();
    let mut scratch = RepairScratch::new();
    let mut records: Vec<PhiRecord> = Vec::new();
    let mut out = Vec::new();
    let mut scored = Vec::new();
    for &q in &queries {
        let mut rec = PhiRecord::new();
        ws.rank_into_recorded(&graph, q, &answers, &cfg, answers.len(), &mut out, &mut rec);
        records.push(rec);
    }
    // Edges whose repairs we exercise: one per frontier depth (query→hub
    // and hub→answer) so the cascade spans levels.
    let changed = [EdgeId(0), EdgeId(graph.edge_count() as u32 - 1)];

    // Warm-up rounds grow the scratch frontier/overlay buffers and each
    // record's ranking scratch to their high-water marks.
    for round in 0..2 {
        for &e in &changed {
            graph.set_weight(e, 0.4 + 0.1 * round as f64).unwrap();
        }
        for rec in &mut records {
            delta_phi(&graph, rec, &changed, &cfg, &delta_cfg, &mut scratch)
                .expect("repair must succeed on this workload");
            rec.rank_into(&answers, answers.len(), &mut scored, &mut out);
        }
    }

    let mut measured = 0u64;
    for round in 0..100 {
        for &e in &changed {
            graph
                .set_weight(e, 0.3 + ((round % 7) as f64) / 10.0)
                .unwrap();
        }
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for rec in &mut records {
            delta_phi(&graph, rec, &changed, &cfg, &delta_cfg, &mut scratch)
                .expect("repair must succeed on this workload");
            rec.rank_into(&answers, answers.len(), &mut scored, &mut out);
            assert!(!out.is_empty());
        }
        measured += ALLOCATIONS.load(Ordering::SeqCst) - before;
    }
    assert!(
        measured < NOISE_ALLOWANCE,
        "warm delta_phi repair + re-rank must not allocate (saw {measured})"
    );
}

fn warm_compute_with_pruning_does_not_allocate() {
    kg_telemetry::disable();
    let (graph, queries, _) = build_graph();
    let cfg = SimilarityConfig::default().with_prune_eps(1e-4);
    let mut ws = PhiWorkspace::new();
    for &q in &queries {
        ws.compute(&graph, q, &cfg);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        for &q in &queries {
            ws.compute(&graph, q, &cfg);
            assert!(ws.phi(q) > 0.0);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after - before < NOISE_ALLOWANCE,
        "warm compute must not allocate (saw {})",
        after - before
    );
}
