//! Random-walk baselines.
//!
//! * [`random_walk_similarity`] — the per-answer evaluation in the style
//!   of Yang et al. (AAAI'17), which the paper compares against in
//!   Table VI. For each answer it solves (by backward propagation over
//!   in-edges) for the probability that the restarting walk from the query
//!   hits that answer, so total cost grows **linearly with the number of
//!   answers** — the scaling the extended inverse P-distance removes.
//! * [`monte_carlo_similarity`] — a sampling estimator of the same
//!   quantity, used to cross-validate the deterministic engines
//!   statistically.

use crate::config::SimilarityConfig;
use kg_graph::{KnowledgeGraph, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-answer backward evaluation of `Φ(query, answer)`.
///
/// For one answer `a`, let `r_l(u)` be the total probability of length-`l`
/// walks from `u` to `a`; then `Φ(q, a) = Σ_l c(1-c)^l r_l(q)`. The
/// recursion `r_l(u) = Σ_{u→v} w(u,v)·r_{l-1}(v)` runs backward from `a`
/// over in-edges, costing `O(L·|E|)` **per answer** — mathematically equal
/// to [`crate::pdist::phi_single`], but with the baseline's cost profile.
pub fn random_walk_similarity(
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    cfg: &SimilarityConfig,
) -> Vec<f64> {
    let n = graph.node_count();
    let c = cfg.restart;
    let mut out = Vec::with_capacity(answers.len());
    // Scratch reused across answers.
    let mut mass = vec![0.0f64; n];
    let mut next_mass = vec![0.0f64; n];
    let mut active: Vec<NodeId> = Vec::new();
    let mut next_active: Vec<NodeId> = Vec::new();

    for &a in answers {
        assert!(a.index() < n, "answer node {a} out of range");
        // Reset scratch sparsely from the previous answer.
        for &u in &active {
            mass[u.index()] = 0.0;
        }
        active.clear();
        active.push(a);
        mass[a.index()] = 1.0;

        let mut phi = if a == query { c } else { 0.0 };
        let mut decay = 1.0;
        for _level in 1..=cfg.max_path_len {
            decay *= 1.0 - c;
            next_active.clear();
            for &v in &active {
                let m = mass[v.index()];
                if m == 0.0 {
                    continue;
                }
                for e in graph.in_edges(v) {
                    let idx = e.from.index();
                    if next_mass[idx] == 0.0 {
                        next_active.push(e.from);
                    }
                    next_mass[idx] += m * e.weight;
                }
            }
            phi += c * decay * next_mass[query.index()];
            for &u in &active {
                mass[u.index()] = 0.0;
            }
            std::mem::swap(&mut mass, &mut next_mass);
            std::mem::swap(&mut active, &mut next_active);
            if active.is_empty() {
                break;
            }
        }
        // Leave scratch clean for the next answer.
        out.push(phi);
    }
    out
}

/// Monte-Carlo estimation controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOptions {
    /// Number of simulated walks.
    pub walks: usize,
    /// Hard cap on walk length (safety against cycles; the geometric
    /// restart terminates most walks long before).
    pub max_steps: usize,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            walks: 100_000,
            max_steps: 64,
            seed: 0x5eed,
        }
    }
}

/// Estimates the PPR vector entries for `answers` by simulating restarting
/// random walks from `query`.
///
/// Each walk terminates at every step with probability `c` (geometric
/// stopping — the termination node is distributed as the walk-sum
/// similarity). Rows are not required to be stochastic: when a node's
/// out-weights sum below one the slack kills the walk, and when they sum
/// *above* one (possible on corrupted graphs) the walk samples edges
/// proportionally and carries a likelihood weight `Π max(1, rowsum)` so
/// the estimator stays unbiased either way.
pub fn monte_carlo_similarity(
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    restart: f64,
    opts: &MonteCarloOptions,
) -> Vec<f64> {
    let mut hits = vec![0.0f64; answers.len()];
    let index_of: std::collections::HashMap<NodeId, usize> =
        answers.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    // Precompute out-weight sums once.
    let row_sum: Vec<f64> = graph.nodes().map(|v| graph.out_weight_sum(v)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);

    for _ in 0..opts.walks {
        let mut at = query;
        let mut weight = 1.0f64;
        for _step in 0..opts.max_steps {
            if rng.gen::<f64>() < restart {
                // Walk terminates here.
                if let Some(&i) = index_of.get(&at) {
                    hits[i] += weight;
                }
                break;
            }
            // Sample an out-edge proportionally to weight over
            // max(1, rowsum); the leftover mass (sub-stochastic rows)
            // kills the walk, super-stochastic rows scale the likelihood
            // weight instead.
            let scale = row_sum[at.index()].max(1.0);
            let mut pick = rng.gen::<f64>() * scale;
            let mut moved = false;
            for e in graph.out_edges(at) {
                if pick < e.weight {
                    at = e.to;
                    moved = true;
                    break;
                }
                pick -= e.weight;
            }
            if !moved {
                break; // dead walk
            }
            weight *= scale;
        }
    }
    hits.iter().map(|&h| h / opts.walks as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdist::phi_vector;
    use kg_graph::{GraphBuilder, NodeKind};

    fn sample() -> (KnowledgeGraph, NodeId, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, x, 0.7).unwrap();
        b.add_edge(q, y, 0.3).unwrap();
        b.add_edge(x, y, 0.4).unwrap();
        b.add_edge(x, a1, 0.6).unwrap();
        b.add_edge(y, a2, 0.8).unwrap();
        b.add_edge(y, a1, 0.2).unwrap();
        (b.build(), q, vec![a1, a2])
    }

    #[test]
    fn backward_matches_forward_dp() {
        let (g, q, answers) = sample();
        let cfg = SimilarityConfig::new(0.15, 5);
        let fwd = phi_vector(&g, q, &cfg);
        let bwd = random_walk_similarity(&g, q, &answers, &cfg);
        for (i, &a) in answers.iter().enumerate() {
            assert!(
                (bwd[i] - fwd[a.index()]).abs() < 1e-12,
                "answer {a}: {} vs {}",
                bwd[i],
                fwd[a.index()]
            );
        }
    }

    #[test]
    fn backward_handles_query_as_answer() {
        let (g, q, _) = sample();
        let cfg = SimilarityConfig::default();
        let sims = random_walk_similarity(&g, q, &[q], &cfg);
        assert!((sims[0] - cfg.restart).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_approximates_ppr() {
        let (g, q, answers) = sample();
        // Use a long L so the truncated phi is close to full PPR.
        let cfg = SimilarityConfig::new(0.15, 30);
        let exact = random_walk_similarity(&g, q, &answers, &cfg);
        let opts = MonteCarloOptions {
            walks: 200_000,
            ..Default::default()
        };
        let est = monte_carlo_similarity(&g, q, &answers, 0.15, &opts);
        for i in 0..answers.len() {
            assert!(
                (est[i] - exact[i]).abs() < 0.01,
                "answer {i}: mc {} vs exact {}",
                est[i],
                exact[i]
            );
        }
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let (g, q, answers) = sample();
        let opts = MonteCarloOptions {
            walks: 10_000,
            ..Default::default()
        };
        let a = monte_carlo_similarity(&g, q, &answers, 0.15, &opts);
        let b = monte_carlo_similarity(&g, q, &answers, 0.15, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reset_between_answers() {
        // Evaluating the same answer twice must give identical results —
        // catches scratch-buffer contamination.
        let (g, q, answers) = sample();
        let cfg = SimilarityConfig::default();
        let twice = random_walk_similarity(&g, q, &[answers[0], answers[0]], &cfg);
        assert_eq!(twice[0], twice[1]);
    }
}

#[cfg(test)]
mod super_stochastic_tests {
    use super::*;
    use crate::config::SimilarityConfig;
    use kg_graph::{GraphBuilder, NodeKind};

    /// A row summing above one: the likelihood-weighted sampler must stay
    /// unbiased (late adjacency entries used to be unreachable).
    #[test]
    fn monte_carlo_is_unbiased_on_super_stochastic_rows() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        // Row sum 1.6; a2 sits beyond cumulative 1.0.
        b.add_edge(q, a1, 0.9).unwrap();
        b.add_edge(q, a2, 0.7).unwrap();
        let g = b.build();
        let cfg = SimilarityConfig::new(0.15, 10);
        let exact = random_walk_similarity(&g, q, &[a1, a2], &cfg);
        let opts = MonteCarloOptions {
            walks: 300_000,
            ..Default::default()
        };
        let est = monte_carlo_similarity(&g, q, &[a1, a2], 0.15, &opts);
        for i in 0..2 {
            assert!(
                (est[i] - exact[i]).abs() < 0.01,
                "answer {i}: mc {} vs exact {}",
                est[i],
                exact[i]
            );
        }
        assert!(est[1] > 0.0, "edge beyond cumulative 1.0 must be reachable");
    }
}
