//! Shared similarity parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the similarity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Restart probability `c` of the PPR walk. The paper uses `c ≈ 0.15`
    /// and notes small changes barely affect results.
    pub restart: f64,
    /// Path-length pruning threshold `L`: walks longer than this are
    /// dropped. Section VII-E selects `L = 5` (longer paths change scores
    /// by < 0.3% while cost grows exponentially).
    pub max_path_len: usize,
    /// Opt-in frontier pruning for the numeric phi kernel: a frontier
    /// entry whose accumulated walk mass falls below this threshold is
    /// dropped instead of propagated. `0.0` (the default) is exact. On a
    /// row-stochastic graph the induced error of any single score is
    /// bounded by the kernel's reported
    /// [`crate::PhiWorkspace::pruned_bound`] — see the bound test in
    /// `workspace.rs`.
    pub prune_eps: f64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            restart: 0.15,
            max_path_len: 5,
            prune_eps: 0.0,
        }
    }
}

impl SimilarityConfig {
    /// Creates an exact config, validating `0 < restart < 1` and `L >= 1`.
    pub fn new(restart: f64, max_path_len: usize) -> Self {
        assert!(
            restart > 0.0 && restart < 1.0,
            "restart probability must be in (0,1), got {restart}"
        );
        assert!(max_path_len >= 1, "path length bound must be at least 1");
        SimilarityConfig {
            restart,
            max_path_len,
            prune_eps: 0.0,
        }
    }

    /// Returns the config with frontier pruning set to `eps` (see
    /// [`Self::prune_eps`]). `eps` must be finite and non-negative.
    pub fn with_prune_eps(mut self, eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps >= 0.0,
            "prune_eps must be finite and non-negative, got {eps}"
        );
        self.prune_eps = eps;
        self
    }

    /// The damping factor `1 - c`.
    #[inline]
    pub fn damping(&self) -> f64 {
        1.0 - self.restart
    }
}

/// Tuning for the delta-propagation repair path ([`crate::delta_phi`]).
/// Deliberately *not* part of [`SimilarityConfig`]: repair is a serving
/// strategy, not part of the similarity model, and must never change what
/// scores mean — only how fast they are refreshed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaConfig {
    /// Master switch; `false` restores evict-and-recompute everywhere.
    pub enabled: bool,
    /// Per-entry fallback threshold: give up on one record's repair once
    /// its work exceeds this fraction of the recorded pass's edge
    /// expansions. The default comes from the serve bench's churn sweep
    /// (`BENCH_serve.json` `churn_sweep`): at 8× the recorded work every
    /// repair that the sweep's 0.1%–1% churn levels produce completes
    /// without tripping, while a genuinely explosive cascade still stops
    /// at bounded cost.
    pub max_churn: f64,
    /// Sync-wide crossover guard: when one sync's weight delta touches
    /// more than this fraction of the graph's edges, repair is skipped
    /// wholesale and affected entries are evicted. Data-derived from the
    /// churn sweep: repair beats eviction below ~0.1% edge churn, breaks
    /// even around 1%, and loses ~3× at 10% — so past a few percent,
    /// planning repairs is pure overhead.
    pub bulk_churn_ceiling: f64,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            enabled: true,
            max_churn: 8.0,
            bulk_churn_ceiling: 0.02,
        }
    }
}

impl DeltaConfig {
    /// A config with the repair path switched off.
    pub fn disabled() -> Self {
        DeltaConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Returns the config with the churn budget set to `max_churn`
    /// (fraction of the recorded pass's work; must be finite and
    /// non-negative).
    pub fn with_max_churn(mut self, max_churn: f64) -> Self {
        assert!(
            max_churn.is_finite() && max_churn >= 0.0,
            "max_churn must be finite and non-negative, got {max_churn}"
        );
        self.max_churn = max_churn;
        self
    }

    /// Returns the config with the sync-wide bulk-churn ceiling set
    /// (fraction of the graph's edges; must be finite and non-negative).
    pub fn with_bulk_churn_ceiling(mut self, ceiling: f64) -> Self {
        assert!(
            ceiling.is_finite() && ceiling >= 0.0,
            "bulk_churn_ceiling must be finite and non-negative, got {ceiling}"
        );
        self.bulk_churn_ceiling = ceiling;
        self
    }

    /// Whether a sync whose delta covers `changed_edges` of a
    /// `total_edges`-edge graph should attempt per-entry repairs at all
    /// (see [`Self::bulk_churn_ceiling`]). The ceiling guards against
    /// *bulk* rewrites; a handful of edited edges is never bulk, so small
    /// deltas always qualify even on tiny graphs where one edge exceeds
    /// the fraction.
    pub fn worth_repairing(&self, changed_edges: usize, total_edges: usize) -> bool {
        const SMALL_DELTA_FLOOR: usize = 32;
        self.enabled
            && (changed_edges <= SMALL_DELTA_FLOOR
                || changed_edges as f64 <= self.bulk_churn_ceiling * total_edges.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_default_is_enabled() {
        let d = DeltaConfig::default();
        assert!(d.enabled);
        assert!(d.max_churn > 0.0);
        assert!(!DeltaConfig::disabled().enabled);
        assert_eq!(DeltaConfig::default().with_max_churn(0.25).max_churn, 0.25);
    }

    #[test]
    #[should_panic(expected = "max_churn")]
    fn negative_max_churn_panics() {
        DeltaConfig::default().with_max_churn(-0.1);
    }

    #[test]
    fn default_matches_paper() {
        let c = SimilarityConfig::default();
        assert_eq!(c.restart, 0.15);
        assert_eq!(c.max_path_len, 5);
        assert_eq!(c.prune_eps, 0.0);
        assert!((c.damping() - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_restart_panics() {
        SimilarityConfig::new(1.5, 5);
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn zero_length_panics() {
        SimilarityConfig::new(0.15, 0);
    }

    #[test]
    fn prune_eps_builder_sets_threshold() {
        let c = SimilarityConfig::new(0.15, 5).with_prune_eps(1e-9);
        assert_eq!(c.prune_eps, 1e-9);
    }

    #[test]
    #[should_panic(expected = "prune_eps")]
    fn negative_prune_eps_panics() {
        SimilarityConfig::default().with_prune_eps(-1.0);
    }
}
