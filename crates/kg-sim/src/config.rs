//! Shared similarity parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the similarity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Restart probability `c` of the PPR walk. The paper uses `c ≈ 0.15`
    /// and notes small changes barely affect results.
    pub restart: f64,
    /// Path-length pruning threshold `L`: walks longer than this are
    /// dropped. Section VII-E selects `L = 5` (longer paths change scores
    /// by < 0.3% while cost grows exponentially).
    pub max_path_len: usize,
    /// Opt-in frontier pruning for the numeric phi kernel: a frontier
    /// entry whose accumulated walk mass falls below this threshold is
    /// dropped instead of propagated. `0.0` (the default) is exact. On a
    /// row-stochastic graph the induced error of any single score is
    /// bounded by the kernel's reported
    /// [`crate::PhiWorkspace::pruned_bound`] — see the bound test in
    /// `workspace.rs`.
    pub prune_eps: f64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            restart: 0.15,
            max_path_len: 5,
            prune_eps: 0.0,
        }
    }
}

impl SimilarityConfig {
    /// Creates an exact config, validating `0 < restart < 1` and `L >= 1`.
    pub fn new(restart: f64, max_path_len: usize) -> Self {
        assert!(
            restart > 0.0 && restart < 1.0,
            "restart probability must be in (0,1), got {restart}"
        );
        assert!(max_path_len >= 1, "path length bound must be at least 1");
        SimilarityConfig {
            restart,
            max_path_len,
            prune_eps: 0.0,
        }
    }

    /// Returns the config with frontier pruning set to `eps` (see
    /// [`Self::prune_eps`]). `eps` must be finite and non-negative.
    pub fn with_prune_eps(mut self, eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps >= 0.0,
            "prune_eps must be finite and non-negative, got {eps}"
        );
        self.prune_eps = eps;
        self
    }

    /// The damping factor `1 - c`.
    #[inline]
    pub fn damping(&self) -> f64 {
        1.0 - self.restart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimilarityConfig::default();
        assert_eq!(c.restart, 0.15);
        assert_eq!(c.max_path_len, 5);
        assert_eq!(c.prune_eps, 0.0);
        assert!((c.damping() - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_restart_panics() {
        SimilarityConfig::new(1.5, 5);
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn zero_length_panics() {
        SimilarityConfig::new(0.15, 0);
    }

    #[test]
    fn prune_eps_builder_sets_threshold() {
        let c = SimilarityConfig::new(0.15, 5).with_prune_eps(1e-9);
        assert_eq!(c.prune_eps, 1e-9);
    }

    #[test]
    #[should_panic(expected = "prune_eps")]
    fn negative_prune_eps_panics() {
        SimilarityConfig::default().with_prune_eps(-1.0);
    }
}
