//! Shared similarity parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the similarity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Restart probability `c` of the PPR walk. The paper uses `c ≈ 0.15`
    /// and notes small changes barely affect results.
    pub restart: f64,
    /// Path-length pruning threshold `L`: walks longer than this are
    /// dropped. Section VII-E selects `L = 5` (longer paths change scores
    /// by < 0.3% while cost grows exponentially).
    pub max_path_len: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            restart: 0.15,
            max_path_len: 5,
        }
    }
}

impl SimilarityConfig {
    /// Creates a config, validating `0 < restart < 1` and `L >= 1`.
    pub fn new(restart: f64, max_path_len: usize) -> Self {
        assert!(
            restart > 0.0 && restart < 1.0,
            "restart probability must be in (0,1), got {restart}"
        );
        assert!(max_path_len >= 1, "path length bound must be at least 1");
        SimilarityConfig {
            restart,
            max_path_len,
        }
    }

    /// The damping factor `1 - c`.
    #[inline]
    pub fn damping(&self) -> f64 {
        1.0 - self.restart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimilarityConfig::default();
        assert_eq!(c.restart, 0.15);
        assert_eq!(c.max_path_len, 5);
        assert!((c.damping() - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_restart_panics() {
        SimilarityConfig::new(1.5, 5);
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn zero_length_panics() {
        SimilarityConfig::new(0.15, 0);
    }
}
