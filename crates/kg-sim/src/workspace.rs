//! Reusable, allocation-free scratch state for the phi kernel.
//!
//! [`crate::phi_vector`] is correct but serves each query with three fresh
//! `n`-sized allocations plus an `O(n)` zero-fill — fine for one-off
//! experiments, fatal for a serving loop that re-ranks thousands of
//! queries between vote rounds. [`PhiWorkspace`] keeps the dense scratch
//! buffers alive across queries and replaces the zero-fills with *epoch
//! marking*: every buffer slot carries the token of the pass that last
//! wrote it, so "clearing" a buffer is a single counter increment. Once
//! the workspace has warmed up on a graph (buffers grown to `n`, frontier
//! and ranking scratch at their high-water marks), a query evaluates with
//! **zero heap allocations** — verified by the counting-allocator test in
//! `tests/no_alloc_phi.rs`.
//!
//! The propagation itself is the same sparse frontier DP as
//! [`crate::phi_vector`] (which is now a thin wrapper over this type) and
//! produces bitwise-identical scores for `prune_eps = 0`.

use crate::config::SimilarityConfig;
use crate::delta::PhiRecord;
use crate::topk::{by_score_then_id, RankedAnswer};
use kg_graph::{KnowledgeGraph, NodeId};

/// Dense scratch buffers for repeated phi evaluations.
///
/// ```
/// use kg_graph::{GraphBuilder, NodeKind};
/// use kg_sim::{PhiWorkspace, SimilarityConfig};
///
/// let mut b = GraphBuilder::new();
/// let q = b.add_node("q", NodeKind::Query);
/// let e = b.add_node("e", NodeKind::Entity);
/// let a = b.add_node("a", NodeKind::Answer);
/// b.add_edge(q, e, 1.0).unwrap();
/// b.add_edge(e, a, 0.5).unwrap();
/// let g = b.build();
///
/// let cfg = SimilarityConfig::default();
/// let mut ws = PhiWorkspace::new();
/// ws.compute(&g, q, &cfg);
/// assert!((ws.phi(a) - 0.5 * 0.15 * 0.85f64.powi(2)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhiWorkspace {
    // phi accumulator; valid where `phi_stamp == phi_token`.
    phi: Vec<f64>,
    phi_stamp: Vec<u64>,
    // Nodes with a valid phi entry this pass, in first-touch order.
    touched: Vec<NodeId>,
    // Current / next level walk mass. Reads go through the active lists,
    // so only `next` needs stamping (one fresh token per level).
    mass: Vec<f64>,
    next_mass: Vec<f64>,
    mass_stamp: Vec<u64>,
    next_stamp: Vec<u64>,
    active: Vec<NodeId>,
    next_active: Vec<NodeId>,
    // Ranking scratch for `rank_into`.
    scored: Vec<(NodeId, f64)>,
    // Monotonic token source; bumped once per pass and once per level.
    token: u64,
    // Token of the most recent `compute` pass (guards phi reads).
    phi_token: u64,
    // Node count the buffers are sized for.
    n: usize,
    // Upper bound on the phi error introduced by `prune_eps` this pass.
    pruned_bound: f64,
    // Edges expanded by the most recent pass (the pass's work measure;
    // delta repair budgets itself against this).
    edge_ops: u64,
}

impl PhiWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for a graph with `n` nodes.
    pub fn with_node_capacity(n: usize) -> Self {
        let mut ws = Self::default();
        ws.ensure_capacity(n);
        ws
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.n >= n {
            return;
        }
        self.phi.resize(n, 0.0);
        self.phi_stamp.resize(n, 0);
        self.mass.resize(n, 0.0);
        self.next_mass.resize(n, 0.0);
        self.mass_stamp.resize(n, 0);
        self.next_stamp.resize(n, 0);
        self.n = n;
    }

    /// Computes `Φ(query, ·)` by sparse frontier propagation, leaving the
    /// result readable through [`Self::phi`] until the next pass. Frontier
    /// entries with mass below `cfg.prune_eps` are dropped (and accounted
    /// in [`Self::pruned_bound`]); with the default `prune_eps = 0` the
    /// scores are bitwise-identical to [`crate::phi_vector`].
    pub fn compute(&mut self, graph: &KnowledgeGraph, query: NodeId, cfg: &SimilarityConfig) {
        self.compute_impl(graph, query, cfg, None);
    }

    /// Like [`Self::compute`], but additionally captures the pass's
    /// per-level frontier state into `record`, enabling later incremental
    /// repair through [`crate::delta_phi`] when a few edge weights change.
    /// The recorded scores are the *same floats* the workspace holds — the
    /// recording hook never touches the arithmetic, so recorded and plain
    /// passes are bitwise identical.
    pub fn compute_recorded(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        cfg: &SimilarityConfig,
        record: &mut PhiRecord,
    ) {
        self.compute_impl(graph, query, cfg, Some(record));
    }

    fn compute_impl(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        cfg: &SimilarityConfig,
        mut record: Option<&mut PhiRecord>,
    ) {
        assert!(
            query.index() < graph.node_count(),
            "query node {query} out of range"
        );
        self.ensure_capacity(graph.node_count());
        let c = cfg.restart;
        let eps = cfg.prune_eps;
        self.pruned_bound = 0.0;
        self.edge_ops = 0;

        self.token += 1;
        self.phi_token = self.token;
        self.touched.clear();
        self.active.clear();
        if let Some(rec) = record.as_deref_mut() {
            rec.begin(query, cfg, graph.node_count());
        }

        // The length-0 walk.
        self.phi[query.index()] = c;
        self.phi_stamp[query.index()] = self.phi_token;
        self.touched.push(query);

        self.mass[query.index()] = 1.0;
        self.active.push(query);

        let mut decay = 1.0;
        for _level in 1..=cfg.max_path_len {
            decay *= 1.0 - c;
            self.token += 1;
            let level_token = self.token;
            self.next_active.clear();
            for ai in 0..self.active.len() {
                let u = self.active[ai];
                let m = self.mass[u.index()];
                if m == 0.0 {
                    continue;
                }
                if m < eps {
                    // Everything this mass could still contribute — levels
                    // `_level..=L`, never amplified on a row-stochastic
                    // graph — is at most `m · (1-c)^_level = m · decay`.
                    self.pruned_bound += m * decay;
                    continue;
                }
                // One contiguous CSR row per source: targets and weights
                // sit side by side in slot order, so the hot loop runs two
                // parallel streams instead of chasing `weights[edge_id]`.
                let (targets, weights) = graph.out_row(u);
                self.edge_ops += targets.len() as u64;
                for (&t, &w) in targets.iter().zip(weights) {
                    let idx = t.index();
                    if self.next_stamp[idx] != level_token {
                        self.next_stamp[idx] = level_token;
                        self.next_mass[idx] = 0.0;
                        self.next_active.push(t);
                    }
                    self.next_mass[idx] += m * w;
                }
            }
            for ni in 0..self.next_active.len() {
                let v = self.next_active[ni];
                let i = v.index();
                if self.phi_stamp[i] != self.phi_token {
                    self.phi_stamp[i] = self.phi_token;
                    self.phi[i] = 0.0;
                    self.touched.push(v);
                }
                self.phi[i] += c * decay * self.next_mass[i];
            }
            if let Some(rec) = record.as_deref_mut() {
                rec.push_level(&self.next_active, &self.next_mass);
            }
            std::mem::swap(&mut self.mass, &mut self.next_mass);
            std::mem::swap(&mut self.mass_stamp, &mut self.next_stamp);
            std::mem::swap(&mut self.active, &mut self.next_active);
            if self.active.is_empty() {
                break;
            }
        }
        if let Some(rec) = record {
            rec.finish(&self.touched, &self.phi, self.edge_ops);
        }
    }

    /// The score `Φ(query, node)` of the most recent [`Self::compute`]
    /// pass (`0.0` for nodes the walk never reached).
    #[inline]
    pub fn phi(&self, node: NodeId) -> f64 {
        let i = node.index();
        if i < self.n && self.phi_stamp[i] == self.phi_token {
            self.phi[i]
        } else {
            0.0
        }
    }

    /// Nodes with non-trivial phi mass this pass, in first-touch order.
    pub fn reached(&self) -> &[NodeId] {
        &self.touched
    }

    /// Upper bound on `|Φ_exact − Φ_pruned|` for any single node, valid on
    /// row-stochastic graphs: the total future contribution of every
    /// frontier entry dropped by `prune_eps` in the most recent pass.
    /// `0.0` when `prune_eps = 0`.
    pub fn pruned_bound(&self) -> f64 {
        self.pruned_bound
    }

    /// Number of edges expanded by the most recent pass — the work the
    /// delta-repair path budgets itself against.
    pub fn edge_ops(&self) -> u64 {
        self.edge_ops
    }

    /// Writes the dense `Φ(query, ·)` vector of the most recent pass into
    /// `out` (resized to the graph's node count).
    pub fn write_phi_dense(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n, 0.0);
        for &v in &self.touched {
            out[v.index()] = self.phi[v.index()];
        }
    }

    /// Evaluates the query and writes the top-`k` ranked `answers` into
    /// `out` (cleared first), with the same ordering and tie-breaking as
    /// [`crate::rank_answers`]. Allocation-free once warm: reuses the
    /// workspace's internal ranking scratch and `out`'s capacity.
    pub fn rank_into(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        answers: &[NodeId],
        cfg: &SimilarityConfig,
        k: usize,
        out: &mut Vec<RankedAnswer>,
    ) {
        self.compute(graph, query, cfg);
        self.rank_current_into(answers, k, out);
    }

    /// Like [`Self::rank_into`], but also captures a [`PhiRecord`] for the
    /// pass (see [`Self::compute_recorded`]).
    #[allow(clippy::too_many_arguments)]
    pub fn rank_into_recorded(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        answers: &[NodeId],
        cfg: &SimilarityConfig,
        k: usize,
        out: &mut Vec<RankedAnswer>,
        record: &mut PhiRecord,
    ) {
        self.compute_recorded(graph, query, cfg, record);
        self.rank_current_into(answers, k, out);
    }

    /// Ranks `answers` against the scores of the most recent compute pass
    /// without re-evaluating the query.
    pub fn rank_current_into(&mut self, answers: &[NodeId], k: usize, out: &mut Vec<RankedAnswer>) {
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        scored.extend(answers.iter().map(|&a| (a, self.phi(a))));
        scored.sort_unstable_by(by_score_then_id);
        scored.truncate(k);
        out.clear();
        out.extend(
            scored
                .iter()
                .enumerate()
                .map(|(i, &(node, score))| RankedAnswer {
                    node,
                    score,
                    rank: i + 1,
                }),
        );
        self.scored = scored;
    }
}

thread_local! {
    /// One warm workspace per thread, for callers that serve queries
    /// from `&self` contexts (the concurrent score server) and cannot
    /// hold a mutable workspace of their own.
    static LOCAL_WORKSPACE: std::cell::RefCell<PhiWorkspace> =
        std::cell::RefCell::new(PhiWorkspace::new());
}

/// Runs `f` with this thread's private [`PhiWorkspace`]. The workspace
/// stays warm across calls on the same thread, so repeated evaluations
/// are allocation-free just like a long-lived owned workspace.
///
/// Do not call [`with_local_workspace`] again from inside `f` — the
/// workspace is exclusively borrowed for the duration of the call.
pub fn with_local_workspace<R>(f: impl FnOnce(&mut PhiWorkspace) -> R) -> R {
    LOCAL_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::rank_answers;
    use kg_graph::{GraphBuilder, NodeKind};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The pre-workspace `phi_vector` implementation, kept verbatim as an
    /// independent reference: `crate::phi_vector` is now a wrapper over
    /// [`PhiWorkspace`], so comparing against it would be circular.
    fn reference_phi(graph: &KnowledgeGraph, query: NodeId, cfg: &SimilarityConfig) -> Vec<f64> {
        let n = graph.node_count();
        let c = cfg.restart;
        let mut phi = vec![0.0f64; n];
        let mut mass = vec![0.0f64; n];
        let mut active: Vec<NodeId> = vec![query];
        mass[query.index()] = 1.0;
        phi[query.index()] = c;
        let mut next_mass = vec![0.0f64; n];
        let mut next_active: Vec<NodeId> = Vec::new();
        let mut decay = 1.0;
        for _level in 1..=cfg.max_path_len {
            decay *= 1.0 - c;
            next_active.clear();
            for &u in &active {
                let m = mass[u.index()];
                if m == 0.0 {
                    continue;
                }
                for e in graph.out_edges(u) {
                    let idx = e.to.index();
                    if next_mass[idx] == 0.0 {
                        next_active.push(e.to);
                    }
                    next_mass[idx] += m * e.weight;
                }
            }
            for &v in &next_active {
                phi[v.index()] += c * decay * next_mass[v.index()];
            }
            for &u in &active {
                mass[u.index()] = 0.0;
            }
            std::mem::swap(&mut mass, &mut next_mass);
            std::mem::swap(&mut active, &mut next_active);
            if active.is_empty() {
                break;
            }
        }
        phi
    }

    /// A two-layer random graph: queries -> hubs -> answers plus random
    /// hub-hub links, out-normalized so the pruning bound applies.
    fn random_graph(seed: u64) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let queries: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
            .collect();
        let hubs: Vec<NodeId> = (0..12)
            .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
            .collect();
        let answers: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
            .collect();
        for &q in &queries {
            for &h in &hubs {
                if rng.gen::<f64>() < 0.5 {
                    b.add_edge(q, h, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        for &h in &hubs {
            for &h2 in &hubs {
                if h != h2 && rng.gen::<f64>() < 0.2 {
                    b.add_edge(h, h2, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
            for &a in &answers {
                if rng.gen::<f64>() < 0.4 {
                    b.add_edge(h, a, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        let mut g = b.build();
        g.normalize_out_edges();
        (g, queries, answers)
    }

    #[test]
    fn matches_phi_vector_bitwise() {
        for seed in 0..5 {
            let (g, queries, _) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let mut ws = PhiWorkspace::new();
            let mut dense = Vec::new();
            for &q in &queries {
                let reference = reference_phi(&g, q, &cfg);
                ws.compute(&g, q, &cfg);
                ws.write_phi_dense(&mut dense);
                assert_eq!(reference, dense, "seed {seed}, query {q}");
            }
        }
    }

    #[test]
    fn workspace_reuse_across_graphs_of_different_sizes() {
        let (big, queries, _) = random_graph(1);
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, a, 1.0).unwrap();
        let small = b.build();

        let mut ws = PhiWorkspace::new();
        ws.compute(&big, queries[0], &SimilarityConfig::default());
        // Shrinking to a smaller graph must not leak stale mass.
        ws.compute(&small, q, &SimilarityConfig::default());
        let reference = reference_phi(&small, q, &SimilarityConfig::default());
        let mut dense = Vec::new();
        ws.write_phi_dense(&mut dense);
        assert_eq!(&dense[..reference.len()], reference.as_slice());
        assert_eq!(dense[a.index()], reference[a.index()]);
    }

    #[test]
    fn rank_into_matches_rank_answers() {
        for seed in 0..5 {
            let (g, queries, answers) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let mut ws = PhiWorkspace::new();
            let mut out = Vec::new();
            for &q in &queries {
                for k in [1, 3, answers.len()] {
                    let reference = rank_answers(&g, q, &answers, &cfg, k);
                    ws.rank_into(&g, q, &answers, &cfg, k, &mut out);
                    assert_eq!(reference, out, "seed {seed}, query {q}, k {k}");
                }
            }
        }
    }

    #[test]
    fn prune_eps_zero_is_exact_and_bound_is_zero() {
        let (g, queries, _) = random_graph(2);
        let cfg = SimilarityConfig::default();
        let mut ws = PhiWorkspace::new();
        ws.compute(&g, queries[0], &cfg);
        assert_eq!(ws.pruned_bound(), 0.0);
    }

    /// The satellite's error-bound contract: with pruning on, every score
    /// differs from the exact one by at most the reported bound.
    #[test]
    fn prune_eps_error_is_within_reported_bound() {
        for seed in 0..8 {
            let (g, queries, _) = random_graph(seed);
            for eps in [1e-6, 1e-4, 1e-2] {
                let exact = SimilarityConfig::default();
                let pruned = exact.with_prune_eps(eps);
                let mut ws = PhiWorkspace::new();
                for &q in &queries {
                    let reference = reference_phi(&g, q, &exact);
                    ws.compute(&g, q, &pruned);
                    let bound = ws.pruned_bound();
                    let mut dense = Vec::new();
                    ws.write_phi_dense(&mut dense);
                    for (i, (&got, &want)) in dense.iter().zip(&reference).enumerate() {
                        assert!(
                            (got - want).abs() <= bound + 1e-15,
                            "seed {seed}, eps {eps}, query {q}, node {i}: \
                             |{got} - {want}| > bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_actually_drops_work_at_coarse_eps() {
        let (g, queries, _) = random_graph(3);
        let coarse = SimilarityConfig::default().with_prune_eps(0.05);
        let mut ws = PhiWorkspace::new();
        let mut any_pruned = false;
        for &q in &queries {
            ws.compute(&g, q, &coarse);
            any_pruned |= ws.pruned_bound() > 0.0;
        }
        assert!(any_pruned, "eps = 0.05 should prune something");
    }

    #[test]
    fn evaluating_a_snapshot_matches_the_graph_it_froze() {
        let (mut g, queries, answers) = random_graph(4);
        let cfg = SimilarityConfig::default();
        let snap = g.publish();
        let mut ws = PhiWorkspace::new();
        let mut frozen = Vec::new();
        let mut live = Vec::new();
        for &q in &queries {
            ws.rank_into(&snap, q, &answers, &cfg, answers.len(), &mut frozen);
            ws.rank_into(&g, q, &answers, &cfg, answers.len(), &mut live);
            assert_eq!(frozen, live, "query {q}");
        }
        // Mutate the live graph: the snapshot's evaluation is unchanged.
        let e = kg_graph::EdgeId(0);
        g.set_weight(e, g.weight(e) * 0.5 + 0.01).unwrap();
        for &q in &queries {
            ws.rank_into(&snap, q, &answers, &cfg, answers.len(), &mut frozen);
            ws.rank_into(&g, q, &answers, &cfg, answers.len(), &mut live);
            let reference = rank_answers(&snap, q, &answers, &cfg, answers.len());
            assert_eq!(frozen, reference, "snapshot drifted for query {q}");
        }
    }

    #[test]
    fn local_workspace_is_reused_and_correct() {
        let (g, queries, answers) = random_graph(5);
        let cfg = SimilarityConfig::default();
        for &q in &queries {
            let got = with_local_workspace(|ws| {
                let mut out = Vec::new();
                ws.rank_into(&g, q, &answers, &cfg, answers.len(), &mut out);
                out
            });
            assert_eq!(got, rank_answers(&g, q, &answers, &cfg, answers.len()));
        }
    }

    #[test]
    fn phi_of_unreached_node_is_zero() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        let island = b.add_node("island", NodeKind::Entity);
        b.add_edge(q, a, 1.0).unwrap();
        let g = b.build();
        let mut ws = PhiWorkspace::new();
        ws.compute(&g, q, &SimilarityConfig::default());
        assert_eq!(ws.phi(island), 0.0);
        assert!(ws.phi(a) > 0.0);
        assert_eq!(ws.reached().first(), Some(&q));
    }
}
