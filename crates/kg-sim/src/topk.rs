//! Top-k answer ranking by extended inverse P-distance.

use crate::config::SimilarityConfig;
use crate::pdist::phi_vector;
use kg_graph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};

/// One entry of a ranked answer list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedAnswer {
    /// The answer node.
    pub node: NodeId,
    /// Its similarity score `S(v_q, v_a) = Φ(v_q, v_a)`.
    pub score: f64,
    /// 1-based rank in the returned list.
    pub rank: usize,
}

/// The one ranking order of the workspace: decreasing score, node id as
/// a deterministic tie-break. Every ranking path — [`rank_answers`], the
/// [`crate::SimilarityEngine`] default, [`crate::PhiWorkspace::rank_into`]
/// and hence `rank_many` and the serving cache — sorts with this exact
/// comparator, so tie-breaking cannot drift between them.
#[inline]
pub fn by_score_then_id(a: &(NodeId, f64), b: &(NodeId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Turns `(node, score)` pairs into the top-`k` ranked list: sorts with
/// [`by_score_then_id`], truncates to `k`, and assigns 1-based ranks.
pub fn rank_scored(mut scored: Vec<(NodeId, f64)>, k: usize) -> Vec<RankedAnswer> {
    scored.sort_unstable_by(by_score_then_id);
    scored.truncate(k);
    scored
        .into_iter()
        .enumerate()
        .map(|(i, (node, score))| RankedAnswer {
            node,
            score,
            rank: i + 1,
        })
        .collect()
}

/// Ranks `answers` for `query` and returns the top `k` (or all, when
/// fewer), ordered by decreasing score with node id as a deterministic
/// tie-break.
pub fn rank_answers(
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    cfg: &SimilarityConfig,
    k: usize,
) -> Vec<RankedAnswer> {
    let phi = phi_vector(graph, query, cfg);
    let scored: Vec<(NodeId, f64)> = answers.iter().map(|&a| (a, phi[a.index()])).collect();
    rank_scored(scored, k)
}

/// Finds the 1-based rank of `target` among `answers` for `query`,
/// considering the *full* answer list (no truncation). Returns `None`
/// when `target` is not in `answers`.
pub fn rank_of(
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    cfg: &SimilarityConfig,
    target: NodeId,
) -> Option<usize> {
    rank_answers(graph, query, answers, cfg, answers.len())
        .into_iter()
        .find(|r| r.node == target)
        .map(|r| r.rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    /// q reaches a1 with higher mass than a2 than a3.
    fn graded() -> (KnowledgeGraph, NodeId, [NodeId; 3]) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let e = b.add_node("e", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        let a3 = b.add_node("a3", NodeKind::Answer);
        b.add_edge(q, e, 1.0).unwrap();
        b.add_edge(e, a1, 0.6).unwrap();
        b.add_edge(e, a2, 0.3).unwrap();
        b.add_edge(e, a3, 0.1).unwrap();
        (b.build(), q, [a1, a2, a3])
    }

    #[test]
    fn ranks_by_descending_score() {
        let (g, q, answers) = graded();
        let cfg = SimilarityConfig::default();
        let ranked = rank_answers(&g, q, &answers, &cfg, 3);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].node, answers[0]);
        assert_eq!(ranked[1].node, answers[1]);
        assert_eq!(ranked[2].node, answers[2]);
        assert!(ranked[0].score > ranked[1].score);
        assert_eq!(ranked[0].rank, 1);
        assert_eq!(ranked[2].rank, 3);
    }

    #[test]
    fn truncates_to_k() {
        let (g, q, answers) = graded();
        let ranked = rank_answers(&g, q, &answers, &SimilarityConfig::default(), 2);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn k_larger_than_answers_returns_all() {
        let (g, q, answers) = graded();
        let ranked = rank_answers(&g, q, &answers, &SimilarityConfig::default(), 10);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn ties_break_by_node_id() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let e = b.add_node("e", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, e, 1.0).unwrap();
        b.add_edge(e, a1, 0.5).unwrap();
        b.add_edge(e, a2, 0.5).unwrap();
        let g = b.build();
        let ranked = rank_answers(&g, q, &[a2, a1], &SimilarityConfig::default(), 2);
        assert_eq!(ranked[0].node, a1); // lower id wins the tie
    }

    #[test]
    fn rank_scored_sorts_ties_and_assigns_ranks() {
        let ranked = rank_scored(
            vec![(NodeId(4), 0.5), (NodeId(1), 0.5), (NodeId(2), 0.9)],
            3,
        );
        assert_eq!(ranked[0].node, NodeId(2));
        assert_eq!(ranked[1].node, NodeId(1)); // tie: lower id first
        assert_eq!(ranked[2].node, NodeId(4));
        assert_eq!(
            ranked.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn rank_of_finds_target() {
        let (g, q, answers) = graded();
        let cfg = SimilarityConfig::default();
        assert_eq!(rank_of(&g, q, &answers, &cfg, answers[1]), Some(2));
        assert_eq!(rank_of(&g, q, &answers, &cfg, NodeId(0)), None);
    }
}
