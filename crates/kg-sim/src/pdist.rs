//! The extended inverse P-distance `Φ(v_q, v_a)` (Eq. 7–9).
//!
//! ```text
//! Φ(v_q, v_a) = Σ_{z: v_q ⇝ v_a, |z| ≤ L}  P[z] · c · (1-c)^{|z|}
//! P[z]        = Π_{edges (u,v) ∈ z} w(u, v)
//! ```
//!
//! Walks may revisit nodes; the length `|z|` is the number of edges. The
//! degenerate walk of length 0 (only when `v_a = v_q`) contributes `c`,
//! aligning `Φ` with the PPR Neumann series term-by-term (Theorem 1).
//!
//! Two computations are provided:
//!
//! * [`phi_vector`] — numeric frontier propagation, `O(L·|E|)` per query,
//!   yielding `Φ(v_q, ·)` for *all* nodes at once. This is why Table VI
//!   shows flat cost as the answer set grows.
//! * [`enumerate_paths`] — explicit walk enumeration, used to *encode*
//!   votes: each walk becomes a monomial over edge-weight variables in the
//!   SGP program (Section IV-B).

use crate::config::SimilarityConfig;
use kg_graph::{EdgeId, KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One walk from the query to a target: the edge ids traversed, in order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Edges of the walk, in traversal order (length = `|z|`).
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Number of edges `|z|`.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the degenerate zero-length walk.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The walk probability `P[z]` under the graph's current weights.
    pub fn probability(&self, graph: &KnowledgeGraph) -> f64 {
        self.edges.iter().map(|&e| graph.weight(e)).product()
    }

    /// This walk's contribution `P[z]·c·(1-c)^{|z|}` to `Φ`.
    pub fn contribution(&self, graph: &KnowledgeGraph, restart: f64) -> f64 {
        self.probability(graph) * restart * (1.0 - restart).powi(self.len() as i32)
    }
}

/// All enumerated walks from one query node to a set of targets.
#[derive(Debug, Clone, Default)]
pub struct PathSet {
    /// Walks grouped by target node.
    pub by_target: HashMap<NodeId, Vec<Path>>,
    /// True when enumeration hit the expansion cap and may be incomplete.
    pub truncated: bool,
    /// Total number of walk extensions explored (cost indicator).
    pub expansions: usize,
}

impl PathSet {
    /// Walks ending at `target` (empty slice when none).
    pub fn paths_to(&self, target: NodeId) -> &[Path] {
        self.by_target.get(&target).map_or(&[], |v| v.as_slice())
    }

    /// Total number of stored walks.
    pub fn total_paths(&self) -> usize {
        self.by_target.values().map(Vec::len).sum()
    }

    /// The distinct edges appearing in any stored walk — the variable set
    /// the SGP encoding will optimize, and the vote's edge footprint used
    /// by the split strategy (Eq. 20).
    pub fn edge_footprint(&self) -> Vec<EdgeId> {
        let mut edges: Vec<EdgeId> = self
            .by_target
            .values()
            .flatten()
            .flat_map(|p| p.edges.iter().copied())
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// Computes `Φ(query, ·)` for every node by sparse frontier propagation.
///
/// Level `l` holds the total probability of every length-`l` walk from the
/// query reaching each node; each level contributes `c·(1-c)^l` times that
/// mass. Cost is `O(L·|E|)` worst case, usually far less because only the
/// reachable frontier is touched.
///
/// ```
/// use kg_graph::{GraphBuilder, NodeKind};
/// use kg_sim::{phi_vector, SimilarityConfig};
///
/// let mut b = GraphBuilder::new();
/// let q = b.add_node("q", NodeKind::Query);
/// let e = b.add_node("e", NodeKind::Entity);
/// let a = b.add_node("a", NodeKind::Answer);
/// b.add_edge(q, e, 1.0).unwrap();
/// b.add_edge(e, a, 0.5).unwrap();
/// let g = b.build();
///
/// let cfg = SimilarityConfig::default(); // c = 0.15, L = 5
/// let phi = phi_vector(&g, q, &cfg);
/// // One 2-edge walk q -> e -> a: contribution 1.0 * 0.5 * c * (1-c)^2.
/// assert!((phi[a.index()] - 0.5 * 0.15 * 0.85f64.powi(2)).abs() < 1e-12);
/// ```
pub fn phi_vector(graph: &KnowledgeGraph, query: NodeId, cfg: &SimilarityConfig) -> Vec<f64> {
    // Thin compatibility wrapper: the DP lives in [`PhiWorkspace`], which
    // amortizes the scratch allocations this signature cannot avoid. Hot
    // paths (`rank_many`, `kg-serve`) hold a workspace and skip this.
    let mut ws = crate::workspace::PhiWorkspace::with_node_capacity(graph.node_count());
    ws.compute(graph, query, cfg);
    let mut out = Vec::new();
    ws.write_phi_dense(&mut out);
    out
}

/// Computes `Φ(query, target)` only. Costs the same as [`phi_vector`]
/// (the DP visits the whole reachable frontier anyway); provided for
/// call-site clarity.
pub fn phi_single(
    graph: &KnowledgeGraph,
    query: NodeId,
    target: NodeId,
    cfg: &SimilarityConfig,
) -> f64 {
    phi_vector(graph, query, cfg)[target.index()]
}

/// Enumerates every walk of length `1..=L` from `query` ending at one of
/// `targets`, via bounded DFS. Walks may revisit nodes (they are walks,
/// not simple paths), so the count grows as `O(d^L)`; `max_expansions`
/// caps the total work and sets [`PathSet::truncated`] when hit.
pub fn enumerate_paths(
    graph: &KnowledgeGraph,
    query: NodeId,
    targets: &[NodeId],
    cfg: &SimilarityConfig,
    max_expansions: usize,
) -> PathSet {
    assert!(
        query.index() < graph.node_count(),
        "query node {query} out of range"
    );
    let target_set: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
    let mut out = PathSet::default();
    let mut stack: Vec<EdgeId> = Vec::with_capacity(cfg.max_path_len);

    // Iterative DFS with an explicit iterator stack to bound memory.
    struct Frame<I> {
        iter: I,
    }
    let mut frames: Vec<Frame<_>> = vec![Frame {
        iter: graph.out_edges(query),
    }];

    while let Some(frame) = frames.last_mut() {
        match frame.iter.next() {
            Some(e) => {
                out.expansions += 1;
                if out.expansions >= max_expansions {
                    out.truncated = true;
                    break;
                }
                stack.push(e.edge);
                if target_set.contains(&e.to) {
                    out.by_target.entry(e.to).or_default().push(Path {
                        edges: stack.clone(),
                    });
                }
                if stack.len() < cfg.max_path_len {
                    frames.push(Frame {
                        iter: graph.out_edges(e.to),
                    });
                } else {
                    stack.pop();
                }
            }
            None => {
                frames.pop();
                stack.pop();
            }
        }
    }
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sim.pdist_enumerations").incr();
        kg_telemetry::counter("votekg.sim.pdist_expansions").add(out.expansions as u64);
        kg_telemetry::histogram("votekg.sim.pdist_paths_per_enumeration")
            .record(out.total_paths() as u64);
        kg_telemetry::histogram("votekg.sim.pdist_expansions_per_enumeration")
            .record(out.expansions as u64);
        if out.truncated {
            kg_telemetry::counter("votekg.sim.pdist_truncations").incr();
        }
    }
    out
}

/// Evaluates `Φ` from an explicit walk list — the symbolic counterpart of
/// [`phi_vector`], used to check that the SGP encoding and the numeric DP
/// agree.
pub fn phi_from_paths(paths: &[Path], graph: &KnowledgeGraph, restart: f64) -> f64 {
    paths.iter().map(|p| p.contribution(graph, restart)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    /// The running example of Section IV-A (Fig. 1a), reduced: a small
    /// graph with multiple distinct walks from q to the answer.
    fn fig1_like() -> (KnowledgeGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let outbox = b.add_node("outbox", NodeKind::Entity);
        let email = b.add_node("email", NodeKind::Entity);
        let send = b.add_node("send", NodeKind::Entity);
        let outlook = b.add_node("outlook", NodeKind::Entity);
        let a3 = b.add_node("a3", NodeKind::Answer);
        b.add_edge(q, outbox, 0.33).unwrap();
        b.add_edge(q, email, 0.33).unwrap();
        b.add_edge(outbox, email, 0.3).unwrap();
        b.add_edge(outbox, send, 0.5).unwrap();
        b.add_edge(email, outbox, 0.4).unwrap();
        b.add_edge(email, send, 0.6).unwrap();
        b.add_edge(send, outlook, 0.3).unwrap();
        b.add_edge(outlook, a3, 1.0).unwrap();
        (b.build(), q, a3)
    }

    #[test]
    fn paper_example_hand_computation() {
        // With L = 5 the walks from q to a3 are exactly the four the paper
        // lists (plus none shorter).
        let (g, q, a3) = fig1_like();
        let cfg = SimilarityConfig::new(0.15, 5);
        let c = 0.15f64;
        let want = (0.33 * 0.3 * 0.6 * 0.3 * 1.0) * c * (1.0 - c).powi(5)
            + (0.33 * 0.5 * 0.3 * 1.0) * c * (1.0 - c).powi(4)
            + (0.33 * 0.4 * 0.5 * 0.3 * 1.0) * c * (1.0 - c).powi(5)
            + (0.33 * 0.6 * 0.3 * 1.0) * c * (1.0 - c).powi(4);
        let got = phi_single(&g, q, a3, &cfg);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn enumeration_matches_dp() {
        let (g, q, a3) = fig1_like();
        let cfg = SimilarityConfig::new(0.15, 5);
        let ps = enumerate_paths(&g, q, &[a3], &cfg, 1_000_000);
        assert!(!ps.truncated);
        assert_eq!(ps.paths_to(a3).len(), 4);
        let via_paths = phi_from_paths(ps.paths_to(a3), &g, cfg.restart);
        let via_dp = phi_single(&g, q, a3, &cfg);
        assert!((via_paths - via_dp).abs() < 1e-12);
    }

    #[test]
    fn longer_l_never_decreases_phi() {
        let (g, q, a3) = fig1_like();
        let mut prev = 0.0;
        for l in 1..=7 {
            let cfg = SimilarityConfig::new(0.15, l);
            let phi = phi_single(&g, q, a3, &cfg);
            assert!(phi >= prev - 1e-15, "L={l}: {phi} < {prev}");
            prev = phi;
        }
    }

    #[test]
    fn unreachable_target_is_zero() {
        let (g, q, _) = fig1_like();
        // No edge into q from anywhere: phi(a3 -> q)... check reverse.
        let cfg = SimilarityConfig::default();
        let phi = phi_vector(&g, NodeId(5), &cfg); // a3 is a sink
        assert_eq!(phi[q.index()], 0.0);
        // Only the self term survives.
        assert!((phi[5] - cfg.restart).abs() < 1e-12);
    }

    #[test]
    fn self_term_is_restart_probability() {
        let (g, q, _) = fig1_like();
        let cfg = SimilarityConfig::default();
        let phi = phi_vector(&g, q, &cfg);
        // q has no incoming edges, so only the trivial walk reaches it.
        assert!((phi[q.index()] - cfg.restart).abs() < 1e-12);
    }

    #[test]
    fn truncation_flag_fires_on_tiny_budget() {
        let (g, q, a3) = fig1_like();
        let cfg = SimilarityConfig::new(0.15, 5);
        let ps = enumerate_paths(&g, q, &[a3], &cfg, 3);
        assert!(ps.truncated);
    }

    #[test]
    fn edge_footprint_is_sorted_and_deduped() {
        let (g, q, a3) = fig1_like();
        let cfg = SimilarityConfig::new(0.15, 5);
        let ps = enumerate_paths(&g, q, &[a3], &cfg, 1_000_000);
        let fp = ps.edge_footprint();
        assert!(fp.windows(2).all(|w| w[0] < w[1]));
        // Footprint covers the edges of all four walks: q->outbox,
        // q->email, outbox->email, outbox->send, email->outbox,
        // email->send, send->outlook, outlook->a3 = 8 edges.
        assert_eq!(fp.len(), 8);
    }

    #[test]
    fn walks_may_revisit_nodes() {
        // Cycle graph q -> a -> b -> a ... target reachable via repeats.
        let mut bld = GraphBuilder::new();
        let q = bld.add_node("q", NodeKind::Query);
        let a = bld.add_node("a", NodeKind::Entity);
        let b = bld.add_node("b", NodeKind::Entity);
        let t = bld.add_node("t", NodeKind::Answer);
        bld.add_edge(q, a, 1.0).unwrap();
        bld.add_edge(a, b, 0.5).unwrap();
        bld.add_edge(b, a, 1.0).unwrap();
        bld.add_edge(a, t, 0.5).unwrap();
        let g = bld.build();
        let cfg = SimilarityConfig::new(0.15, 4);
        let ps = enumerate_paths(&g, q, &[t], &cfg, 1_000_000);
        // q-a-t (len 2) and q-a-b-a-t (len 4).
        assert_eq!(ps.paths_to(t).len(), 2);
        let lens: Vec<usize> = ps.paths_to(t).iter().map(Path::len).collect();
        assert!(lens.contains(&2) && lens.contains(&4));
    }

    #[test]
    fn multiple_targets_in_one_pass() {
        let (g, q, a3) = fig1_like();
        let send = NodeId(3);
        let cfg = SimilarityConfig::new(0.15, 5);
        let ps = enumerate_paths(&g, q, &[a3, send], &cfg, 1_000_000);
        assert!(!ps.paths_to(send).is_empty());
        assert!(!ps.paths_to(a3).is_empty());
        let dp = phi_vector(&g, q, &cfg);
        for t in [a3, send] {
            let sym = phi_from_paths(ps.paths_to(t), &g, cfg.restart);
            assert!((sym - dp[t.index()]).abs() < 1e-12);
        }
    }
}
