//! Batched multi-query ranking.
//!
//! Re-ranking after an optimization round is embarrassingly parallel:
//! each query's phi evaluation is independent and reads the graph
//! immutably. [`rank_many`] fans a batch out over the shared worker loop
//! ([`crate::par::run_worker_loop`]); each worker owns one
//! [`PhiWorkspace`], so per-query work is allocation-free once the
//! workspaces are warm no matter how large the batch grows.

use crate::config::SimilarityConfig;
use crate::delta::PhiRecord;
use crate::par::run_worker_loop;
use crate::topk::RankedAnswer;
use crate::workspace::PhiWorkspace;
use kg_graph::{KnowledgeGraph, NodeId};
use std::sync::Mutex;

/// One ranking request of a batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The query node to evaluate.
    pub query: NodeId,
    /// Candidate answers to rank.
    pub answers: &'a [NodeId],
    /// Number of top entries to return (clamped to `answers.len()`).
    pub k: usize,
}

/// Picks a claim-chunk size that keeps the shared counter cold without
/// starving workers: at least 1, at most 16, aiming for ~4 claims per
/// worker.
fn chunk_for(n_tasks: usize, workers: usize) -> usize {
    (n_tasks / (workers.max(1) * 4)).clamp(1, 16)
}

/// Ranks every request of `batch` against `graph`, returning results in
/// request order. `workers <= 1` runs inline on the caller's thread;
/// otherwise up to `workers` scoped threads claim chunks of the batch,
/// each reusing a private [`PhiWorkspace`].
///
/// Per-request output is identical to [`crate::rank_answers`] — same
/// scores, same deterministic tie-breaking — regardless of worker count
/// or claim order.
pub fn rank_many(
    graph: &KnowledgeGraph,
    batch: &[BatchQuery<'_>],
    cfg: &SimilarityConfig,
    workers: usize,
) -> Vec<Vec<RankedAnswer>> {
    let _span = kg_telemetry::span!("votekg.sim.rank_many");
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sim.rank_many_batches").incr();
        kg_telemetry::counter("votekg.sim.rank_many_queries").add(batch.len() as u64);
        kg_telemetry::histogram("votekg.sim.rank_many_batch_size").record(batch.len() as u64);
    }
    let mut results: Vec<Option<Vec<RankedAnswer>>> = vec![None; batch.len()];
    let slots = Mutex::new(&mut results);
    run_worker_loop(
        workers,
        batch.len(),
        chunk_for(batch.len(), workers),
        || (PhiWorkspace::new(), Vec::new()),
        |(ws, out), i| {
            let req = &batch[i];
            ws.rank_into(graph, req.query, req.answers, cfg, req.k, out);
            // The lock guards only the result hand-off, never the phi
            // evaluation, so contention stays negligible.
            slots.lock().unwrap()[i] = Some(std::mem::take(out));
        },
    );
    results
        .into_iter()
        .map(|r| r.expect("worker loop covers every index"))
        .collect()
}

/// Like [`rank_many`], but each result carries the [`PhiRecord`] of its
/// evaluation, so a serving cache can later *repair* the entry through
/// [`crate::delta_phi`] instead of evicting it. Rankings are identical to
/// [`rank_many`] — recording never touches the arithmetic.
pub fn rank_many_recorded(
    graph: &KnowledgeGraph,
    batch: &[BatchQuery<'_>],
    cfg: &SimilarityConfig,
    workers: usize,
) -> Vec<(Vec<RankedAnswer>, PhiRecord)> {
    let _span = kg_telemetry::span!("votekg.sim.rank_many");
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sim.rank_many_batches").incr();
        kg_telemetry::counter("votekg.sim.rank_many_queries").add(batch.len() as u64);
        kg_telemetry::histogram("votekg.sim.rank_many_batch_size").record(batch.len() as u64);
    }
    let mut results: Vec<Option<(Vec<RankedAnswer>, PhiRecord)>> = Vec::new();
    results.resize_with(batch.len(), || None);
    let slots = Mutex::new(&mut results);
    run_worker_loop(
        workers,
        batch.len(),
        chunk_for(batch.len(), workers),
        || (PhiWorkspace::new(), Vec::new(), PhiRecord::new()),
        |(ws, out, rec), i| {
            let req = &batch[i];
            ws.rank_into_recorded(graph, req.query, req.answers, cfg, req.k, out, rec);
            // Capture into the worker's reused buffers (no growth once
            // warm), then clone — the clone allocates exactly the sizes
            // the slot's record needs, which costs less than growing a
            // fresh record during the pass.
            slots.lock().unwrap()[i] = Some((std::mem::take(out), rec.clone()));
        },
    );
    results
        .into_iter()
        .map(|r| r.expect("worker loop covers every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::rank_answers;
    use kg_graph::{GraphBuilder, NodeKind};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_graph(seed: u64) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let queries: Vec<NodeId> = (0..10)
            .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
            .collect();
        let hubs: Vec<NodeId> = (0..20)
            .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
            .collect();
        let answers: Vec<NodeId> = (0..8)
            .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
            .collect();
        for &q in &queries {
            for &h in &hubs {
                if rng.gen::<f64>() < 0.4 {
                    b.add_edge(q, h, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        for &h in &hubs {
            for &a in &answers {
                if rng.gen::<f64>() < 0.3 {
                    b.add_edge(h, a, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        (b.build(), queries, answers)
    }

    #[test]
    fn matches_sequential_rank_answers_for_any_worker_count() {
        let (g, queries, answers) = random_graph(7);
        let cfg = SimilarityConfig::default();
        let batch: Vec<BatchQuery> = queries
            .iter()
            .map(|&q| BatchQuery {
                query: q,
                answers: &answers,
                k: 5,
            })
            .collect();
        let reference: Vec<_> = queries
            .iter()
            .map(|&q| rank_answers(&g, q, &answers, &cfg, 5))
            .collect();
        for workers in [1, 2, 4, 9] {
            let got = rank_many(&g, &batch, &cfg, workers);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    /// Snapshot serving: `rank_many` over a published [`GraphSnapshot`]
    /// (deref to the frozen graph) is identical to evaluating the graph
    /// it froze, for any worker count, even while the live graph moves on.
    #[test]
    fn rank_many_over_a_snapshot_is_stable_under_live_mutation() {
        let (mut g, queries, answers) = random_graph(11);
        let cfg = SimilarityConfig::default();
        let batch: Vec<BatchQuery> = queries
            .iter()
            .map(|&q| BatchQuery {
                query: q,
                answers: &answers,
                k: 5,
            })
            .collect();
        let snap = g.publish();
        let reference = rank_many(&snap, &batch, &cfg, 1);
        for e in 0..g.edge_count() as u32 {
            let id = kg_graph::EdgeId(e);
            g.set_weight(id, g.weight(id) * 0.3 + 0.02).unwrap();
        }
        for workers in [1, 2, 8] {
            assert_eq!(
                rank_many(&snap, &batch, &cfg, workers),
                reference,
                "workers = {workers}"
            );
        }
        assert_ne!(rank_many(&g, &batch, &cfg, 1), reference);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let (g, _, _) = random_graph(1);
        assert!(rank_many(&g, &[], &SimilarityConfig::default(), 4).is_empty());
    }

    #[test]
    fn heterogeneous_requests_keep_their_order() {
        let (g, queries, answers) = random_graph(3);
        let cfg = SimilarityConfig::default();
        let batch = vec![
            BatchQuery {
                query: queries[0],
                answers: &answers,
                k: 1,
            },
            BatchQuery {
                query: queries[1],
                answers: &answers[..3],
                k: 10,
            },
            BatchQuery {
                query: queries[0],
                answers: &answers,
                k: answers.len(),
            },
        ];
        let got = rank_many(&g, &batch, &cfg, 3);
        assert_eq!(got[0].len(), 1);
        assert_eq!(got[1].len(), 3);
        assert_eq!(got[2].len(), answers.len());
        assert_eq!(got[0], rank_answers(&g, queries[0], &answers, &cfg, 1));
        assert_eq!(
            got[1],
            rank_answers(&g, queries[1], &answers[..3], &cfg, 10)
        );
    }

    #[test]
    fn chunk_sizing_is_sane() {
        assert_eq!(chunk_for(0, 4), 1);
        assert_eq!(chunk_for(10, 4), 1);
        assert_eq!(chunk_for(1000, 4), 16);
        assert_eq!(chunk_for(100, 0), 16);
    }
}
