//! A minimal scoped worker pool with chunked work claiming.
//!
//! Both the batched ranking path ([`crate::rank_many`]) and the cluster
//! pipeline (`kg-cluster`) need the same shape of parallelism: `T` tasks,
//! `W` workers, each worker holding private mutable state (a
//! [`crate::PhiWorkspace`], a solver context) and claiming *chunks* of the
//! task index space from a shared atomic counter so stragglers don't
//! serialize the run. This module factors that loop out so the two call
//! sites can't drift.
//!
//! The pool is `std::thread::scope`-based: no channels, no queues, no
//! dependencies — work is identified by index, results are written through
//! whatever interior-mutable or pre-partitioned storage the caller closes
//! over.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `n_tasks` tasks across `workers` OS threads, claiming `chunk`
/// task indices at a time from a shared counter.
///
/// Each worker first builds its private state with `init()` and then
/// calls `work(&mut state, task_index)` for every index it claims.
/// Indices are processed exactly once, in chunks of ascending order
/// (claim order across workers is nondeterministic; anything
/// order-sensitive must key results by index).
///
/// With `workers <= 1` or `n_tasks <= 1` the loop runs inline on the
/// caller's thread — no threads are spawned, which keeps the
/// single-worker path allocation-free and trivially debuggable.
///
/// # Panics
/// Panics if `chunk == 0`, and propagates any worker panic.
pub fn run_worker_loop<W, I, F>(workers: usize, n_tasks: usize, chunk: usize, init: I, work: F)
where
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if n_tasks == 0 {
        return;
    }
    if workers <= 1 || n_tasks <= 1 {
        let mut state = init();
        for i in 0..n_tasks {
            work(&mut state, i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let n_workers = workers.min(n_tasks);
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n_tasks {
                        break;
                    }
                    for i in start..(start + chunk).min(n_tasks) {
                        work(&mut state, i);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        for workers in [1, 2, 4, 7] {
            for chunk in [1, 3, 16] {
                let n = 101;
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                run_worker_loop(
                    workers,
                    n,
                    chunk,
                    || (),
                    |(), i| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    },
                );
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "index {i} (workers {workers}, chunk {chunk})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        run_worker_loop(4, 0, 8, || panic!("init must not run"), |_: &mut (), _| {});
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let mut seen = Vec::new();
        let cell = std::sync::Mutex::new(&mut seen);
        run_worker_loop(1, 5, 2, || (), |(), i| cell.lock().unwrap().push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn per_worker_state_is_private() {
        // Each worker counts its own tasks; the totals must sum to n.
        let total = AtomicU64::new(0);
        struct Tally<'a> {
            local: u64,
            total: &'a AtomicU64,
        }
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.local, Ordering::Relaxed);
            }
        }
        run_worker_loop(
            3,
            50,
            4,
            || Tally {
                local: 0,
                total: &total,
            },
            |t, _| t.local += 1,
        );
        assert_eq!(total.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        run_worker_loop(2, 10, 0, || (), |(), _| {});
    }
}
