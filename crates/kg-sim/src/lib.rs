//! Similarity evaluation over knowledge graphs (Sections III–IV of the
//! paper).
//!
//! Three engines, all measuring the same quantity — the Personalized
//! PageRank (PPR) mass an answer node receives from a query node — with
//! different cost profiles:
//!
//! * [`ppr`] — classic PPR power iteration on the whole graph (Eq. 1).
//! * [`pdist`] — the paper's **extended inverse P-distance** `Φ(v_q, v_a)`
//!   (Eq. 7–9): a sum over all walks of length ≤ `L` from the query,
//!   computed numerically by frontier propagation in `O(L·|E|)` *per
//!   query* (independent of the number of answers), or symbolically by
//!   path enumeration for the SGP vote encoding.
//! * [`random_walk`] — the per-answer baseline of Yang et al. (AAAI'17),
//!   whose cost grows linearly with the number of answers (Table VI), plus
//!   a Monte-Carlo sampler used for statistical cross-validation.
//!
//! Theorem 1 of the paper states `Φ ≡ PPR` on weighted graphs; the
//! integration tests in `tests/theorem1.rs` verify it numerically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod batch;
pub mod config;
pub mod delta;
pub mod engine;
pub mod explain;
pub mod par;
pub mod pdist;
pub mod ppr;
pub mod random_walk;
pub mod topk;
pub mod workspace;

pub use approx::F32Workspace;
pub use batch::{rank_many, rank_many_recorded, BatchQuery};
pub use config::{DeltaConfig, SimilarityConfig};
pub use delta::{
    affected_queries, delta_phi, delta_phi_apply, delta_phi_plan, PhiRecord, RepairFallback,
    RepairScratch, RepairStats,
};
pub use engine::{BackwardWalkEngine, MonteCarloEngine, PdistEngine, PprEngine, SimilarityEngine};
pub use explain::{explain_ranking, Explanation};
pub use par::run_worker_loop;
pub use pdist::{enumerate_paths, phi_from_paths, phi_single, phi_vector, Path, PathSet};
pub use ppr::{ppr_vector, PprOptions};
pub use random_walk::{monte_carlo_similarity, random_walk_similarity, MonteCarloOptions};
pub use topk::{by_score_then_id, rank_answers, rank_scored, RankedAnswer};
pub use workspace::{with_local_workspace, PhiWorkspace};
