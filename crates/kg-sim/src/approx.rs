//! Opt-in `f32` phi kernel with a tracked `f64` error bound.
//!
//! The exact kernel ([`crate::PhiWorkspace`]) spends most of its time
//! streaming `f64` masses and weights through the out-CSR. Halving the
//! element width halves the memory traffic of that stream, which is the
//! kernel's bottleneck on graphs that spill out of cache. The catch is
//! rounding: `f32` scores are *not* the scores the rest of the system is
//! contracted to (the serving layer promises bitwise-stable rankings).
//!
//! [`F32Workspace`] squares that circle the same way `prune_eps` does —
//! by reporting a rigorous error bound alongside the approximate result:
//!
//! * [`F32Workspace::compute`] runs the whole DP in `f32` while tracking,
//!   in `f64`, an upper bound on `|Φ_exact − Φ_f32|` valid for every node
//!   at once (on row-stochastic graphs, like
//!   [`crate::PhiWorkspace::pruned_bound`]).
//! * [`F32Workspace::rank_into_verified`] sorts the `f32` scores and
//!   checks every adjacent gap against `2 × bound`. If all gaps clear the
//!   bound, the `f32` *order* is provably the exact order and is returned
//!   as-is (scores approximate). Any ambiguous gap triggers one full
//!   `f64` evaluation — so the returned **order is always exact**, and
//!   the fast path is taken exactly when it is safe.
//!
//! Because the scores themselves are approximate unless refinement ran,
//! this mode is *not* used by the serving caches (whose coherence tests
//! demand bitwise equality); it is for bulk scoring pipelines that only
//! consume the order.

use crate::config::SimilarityConfig;
use crate::topk::RankedAnswer;
use crate::workspace::PhiWorkspace;
use kg_graph::{KnowledgeGraph, NodeId};

const EPS32: f64 = f32::EPSILON as f64;

/// Dense `f32` scratch buffers for repeated approximate phi evaluations,
/// mirroring [`crate::PhiWorkspace`]'s epoch-stamped layout.
#[derive(Debug, Clone, Default)]
pub struct F32Workspace {
    phi: Vec<f32>,
    phi_stamp: Vec<u64>,
    touched: Vec<NodeId>,
    mass: Vec<f32>,
    next_mass: Vec<f32>,
    mass_stamp: Vec<u64>,
    next_stamp: Vec<u64>,
    active: Vec<NodeId>,
    next_active: Vec<NodeId>,
    scored: Vec<(NodeId, f32)>,
    token: u64,
    phi_token: u64,
    n: usize,
    // Tracked upper bound on |phi_exact - phi_f32| for any single node.
    bound: f64,
    // Pruning loss, accounted separately exactly like the f64 kernel.
    pruned_bound: f64,
}

impl F32Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.n >= n {
            return;
        }
        self.phi.resize(n, 0.0);
        self.phi_stamp.resize(n, 0);
        self.mass.resize(n, 0.0);
        self.next_mass.resize(n, 0.0);
        self.mass_stamp.resize(n, 0);
        self.next_stamp.resize(n, 0);
        self.n = n;
    }

    /// Computes `Φ(query, ·)` in `f32` by the same sparse frontier DP as
    /// [`crate::PhiWorkspace::compute`], tracking [`Self::error_bound`]
    /// as it goes. The bound is valid on row-stochastic graphs (the same
    /// assumption `prune_eps` accounting makes).
    pub fn compute(&mut self, graph: &KnowledgeGraph, query: NodeId, cfg: &SimilarityConfig) {
        assert!(
            query.index() < graph.node_count(),
            "query node {query} out of range"
        );
        self.ensure_capacity(graph.node_count());
        let c = cfg.restart;
        let c32 = c as f32;
        let eps = cfg.prune_eps as f32;
        self.pruned_bound = 0.0;

        self.token += 1;
        self.phi_token = self.token;
        self.touched.clear();
        self.active.clear();

        self.phi[query.index()] = c32;
        self.phi_stamp[query.index()] = self.phi_token;
        self.touched.push(query);
        // Seeding phi with fl32(c) is itself a rounding step.
        self.bound = (c32 as f64 - c).abs();

        self.mass[query.index()] = 1.0;
        self.active.push(query);

        // L1 bound on the frontier's accumulated mass error.
        let mut mass_err = 0.0f64;
        let mut decay = 1.0f64;
        let mut decay32 = 1.0f32;
        for level in 1..=cfg.max_path_len {
            decay *= 1.0 - c;
            decay32 *= 1.0 - c32;
            self.token += 1;
            let level_token = self.token;
            self.next_active.clear();
            let mut level_edges = 0u64;
            for ai in 0..self.active.len() {
                let u = self.active[ai];
                let m = self.mass[u.index()];
                if m == 0.0 {
                    continue;
                }
                if m < eps {
                    self.pruned_bound += m as f64 * decay;
                    continue;
                }
                let (targets, weights) = graph.out_row(u);
                level_edges += targets.len() as u64;
                for (&t, &w) in targets.iter().zip(weights) {
                    let idx = t.index();
                    if self.next_stamp[idx] != level_token {
                        self.next_stamp[idx] = level_token;
                        self.next_mass[idx] = 0.0;
                        self.next_active.push(t);
                    }
                    self.next_mass[idx] += m * w as f32;
                }
            }
            // Conservative rounding recurrence (all quantities are
            // non-negative; weights are row-stochastic, so true mass is
            // non-expansive): carried error propagates undamped, and each
            // of the ≤ level_edges cast/multiply/add steps contributes a
            // relative EPS32 on the level's mass total. The factor 4
            // absorbs the slack of bounding per-node add chains by the
            // level's edge count.
            let mut sum_next = 0.0f64;
            for ni in 0..self.next_active.len() {
                let v = self.next_active[ni];
                let i = v.index();
                sum_next += self.next_mass[i] as f64;
                if self.phi_stamp[i] != self.phi_token {
                    self.phi_stamp[i] = self.phi_token;
                    self.phi[i] = 0.0;
                    self.touched.push(v);
                }
                self.phi[i] += c32 * decay32 * self.next_mass[i];
            }
            mass_err += 4.0 * EPS32 * (level_edges as f64 + 2.0) * (sum_next + mass_err);
            // Phi picks up the frontier's mass error scaled by c·decay,
            // plus its own accumulation rounding (c32, decay32 drift and
            // the per-level multiply-add, each relative EPS32 per level).
            self.bound += c * decay * mass_err
                + 4.0 * EPS32 * (level as f64 + 2.0) * c * decay * (sum_next + mass_err);
            std::mem::swap(&mut self.mass, &mut self.next_mass);
            std::mem::swap(&mut self.mass_stamp, &mut self.next_stamp);
            std::mem::swap(&mut self.active, &mut self.next_active);
            if self.active.is_empty() {
                break;
            }
        }
        self.bound += self.pruned_bound;
    }

    /// The `f32` score of the most recent pass (`0.0` if unreached).
    #[inline]
    pub fn phi(&self, node: NodeId) -> f32 {
        let i = node.index();
        if i < self.n && self.phi_stamp[i] == self.phi_token {
            self.phi[i]
        } else {
            0.0
        }
    }

    /// Upper bound on `|Φ_exact − Φ_f32|` for any single node in the most
    /// recent pass (includes pruning loss when `prune_eps > 0`).
    pub fn error_bound(&self) -> f64 {
        self.bound
    }

    /// Ranks `answers` with a guaranteed-exact *order*: evaluates in
    /// `f32`, and if any adjacent pair of sorted scores is closer than
    /// `2 × error_bound` — i.e. rounding could have swapped it — refines
    /// with one full `f64` pass through `exact`. Returns `true` when the
    /// refinement ran (in which case scores are exact too); on the fast
    /// path scores are `f32` casts and only the order is contractual.
    #[allow(clippy::too_many_arguments)]
    pub fn rank_into_verified(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        answers: &[NodeId],
        cfg: &SimilarityConfig,
        k: usize,
        exact: &mut PhiWorkspace,
        out: &mut Vec<RankedAnswer>,
    ) -> bool {
        self.compute(graph, query, cfg);
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        scored.extend(answers.iter().map(|&a| (a, self.phi(a))));
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // A pair is safe iff its true scores cannot swap: each f32 score
        // is within `bound` of truth, so a gap of at least 2·bound pins
        // the order. bound == 0 means the scores are exact (ties break by
        // id identically in both widths).
        let ambiguous = scored
            .windows(2)
            .any(|w| (w[0].1 as f64 - w[1].1 as f64) < 2.0 * self.bound);
        if ambiguous {
            exact.rank_into(graph, query, answers, cfg, k, out);
        } else {
            scored.truncate(k);
            out.clear();
            out.extend(
                scored
                    .iter()
                    .enumerate()
                    .map(|(i, &(node, score))| RankedAnswer {
                        node,
                        score: score as f64,
                        rank: i + 1,
                    }),
            );
        }
        self.scored = scored;
        ambiguous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::rank_answers;
    use kg_graph::{GraphBuilder, NodeKind};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_graph(seed: u64) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let queries: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
            .collect();
        let hubs: Vec<NodeId> = (0..16)
            .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
            .collect();
        let answers: Vec<NodeId> = (0..8)
            .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
            .collect();
        for &q in &queries {
            for &h in &hubs {
                if rng.gen::<f64>() < 0.5 {
                    b.add_edge(q, h, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        for &h in &hubs {
            for &h2 in &hubs {
                if h != h2 && rng.gen::<f64>() < 0.2 {
                    b.add_edge(h, h2, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
            for &a in &answers {
                if rng.gen::<f64>() < 0.4 {
                    b.add_edge(h, a, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        let mut g = b.build();
        g.normalize_out_edges();
        (g, queries, answers)
    }

    /// The mode's contract, mirroring the `prune_eps` bound test: every
    /// f32 score is within the reported bound of the exact f64 score.
    #[test]
    fn f32_error_stays_within_reported_bound() {
        for seed in 0..10 {
            let (g, queries, _) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let mut ws32 = F32Workspace::new();
            let mut ws64 = PhiWorkspace::new();
            for &q in &queries {
                ws32.compute(&g, q, &cfg);
                ws64.compute(&g, q, &cfg);
                let bound = ws32.error_bound();
                assert!(bound.is_finite() && bound > 0.0);
                // The bound must be tight enough to be useful: phi
                // scores are O(c), so a bound in the 1e-4 range would
                // make every ranking ambiguous.
                assert!(bound < 1e-4, "useless bound {bound}");
                for v in g.nodes() {
                    let got = ws32.phi(v) as f64;
                    let want = ws64.phi(v);
                    assert!(
                        (got - want).abs() <= bound,
                        "seed {seed}, query {q}, node {v}: |{got} - {want}| > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_covers_pruning_too() {
        let (g, queries, _) = random_graph(3);
        let cfg = SimilarityConfig::default().with_prune_eps(0.02);
        let exact = SimilarityConfig::default();
        let mut ws32 = F32Workspace::new();
        let mut ws64 = PhiWorkspace::new();
        for &q in &queries {
            ws32.compute(&g, q, &cfg);
            ws64.compute(&g, q, &exact);
            let bound = ws32.error_bound();
            for v in g.nodes() {
                assert!((ws32.phi(v) as f64 - ws64.phi(v)).abs() <= bound);
            }
        }
    }

    /// The headline guarantee: verified ranking returns the exact order
    /// for every query, whether or not the refinement kicked in.
    #[test]
    fn verified_order_always_matches_exact_order() {
        let mut refined_any = false;
        for seed in 0..10 {
            let (g, queries, answers) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let mut ws32 = F32Workspace::new();
            let mut ws64 = PhiWorkspace::new();
            let mut out = Vec::new();
            for &q in &queries {
                let reference = rank_answers(&g, q, &answers, &cfg, answers.len());
                let refined = ws32.rank_into_verified(
                    &g,
                    q,
                    &answers,
                    &cfg,
                    answers.len(),
                    &mut ws64,
                    &mut out,
                );
                refined_any |= refined;
                let got: Vec<(NodeId, usize)> = out.iter().map(|r| (r.node, r.rank)).collect();
                let want: Vec<(NodeId, usize)> =
                    reference.iter().map(|r| (r.node, r.rank)).collect();
                assert_eq!(got, want, "seed {seed}, query {q}, refined {refined}");
                if refined {
                    // Refinement reruns the exact kernel: scores match too.
                    assert_eq!(out, reference);
                }
            }
        }
        // Not asserted per-seed (it depends on score gaps), but across 40
        // queries at least one must have triggered each path for the test
        // to mean anything.
        assert!(refined_any, "no query ever hit the refinement path");
    }

    #[test]
    fn exact_tie_forces_refinement() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, a1, 0.5).unwrap();
        b.add_edge(q, a2, 0.5).unwrap();
        let g = b.build();
        let cfg = SimilarityConfig::default();
        let mut ws32 = F32Workspace::new();
        let mut ws64 = PhiWorkspace::new();
        let mut out = Vec::new();
        let refined = ws32.rank_into_verified(&g, q, &[a1, a2], &cfg, 2, &mut ws64, &mut out);
        assert!(refined, "tied scores must refine");
        assert_eq!(out, rank_answers(&g, q, &[a1, a2], &cfg, 2));
    }

    #[test]
    fn well_separated_scores_skip_refinement() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, a1, 0.9).unwrap();
        b.add_edge(q, a2, 0.1).unwrap();
        let g = b.build();
        let cfg = SimilarityConfig::default();
        let mut ws32 = F32Workspace::new();
        let mut ws64 = PhiWorkspace::new();
        let mut out = Vec::new();
        let refined = ws32.rank_into_verified(&g, q, &[a1, a2], &cfg, 2, &mut ws64, &mut out);
        assert!(!refined, "a 9:1 gap cannot be rounding-ambiguous");
        assert_eq!(out[0].node, a1);
        assert_eq!(out[1].node, a2);
    }
}
