//! Ranking explanations: *why* does an answer score what it scores?
//!
//! The paper motivates knowledge-graph Q&A over end-to-end neural models
//! by interpretability (Section II: "these end-to-end models lack
//! interpretability"). This module makes that concrete: an answer's
//! similarity is a sum of walk contributions, so the top-contributing
//! walks *are* the explanation — "this answer ranked first because the
//! query mentions *outbox*, which relates to *send-message* (0.5), which
//! the document covers".

use crate::config::SimilarityConfig;
use crate::pdist::{enumerate_paths, Path};
use kg_graph::{KnowledgeGraph, NodeId};

/// One explanatory walk: its node labels, in order, and its share of the
/// answer's total similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The walk itself.
    pub path: Path,
    /// Node ids along the walk (query first, answer last).
    pub nodes: Vec<NodeId>,
    /// The walk's contribution `P[z]·c·(1-c)^{|z|}`.
    pub contribution: f64,
    /// The contribution as a fraction of the answer's total similarity
    /// (0 when the total is 0).
    pub share: f64,
}

impl Explanation {
    /// Renders the walk as `q -> a -> b` using graph labels.
    pub fn render(&self, graph: &KnowledgeGraph) -> String {
        self.nodes
            .iter()
            .map(|&n| graph.label(n))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Explains `answer`'s similarity to `query`: the `top_n` highest-
/// contributing walks, sorted by contribution (ties broken by shorter
/// walk, then lexicographic edge order for determinism).
///
/// Returns an empty vector when the answer is unreachable within
/// `cfg.max_path_len`.
pub fn explain_ranking(
    graph: &KnowledgeGraph,
    query: NodeId,
    answer: NodeId,
    cfg: &SimilarityConfig,
    top_n: usize,
    max_expansions: usize,
) -> Vec<Explanation> {
    let paths = enumerate_paths(graph, query, &[answer], cfg, max_expansions);
    let walks = paths.paths_to(answer);
    let total: f64 = walks
        .iter()
        .map(|p| p.contribution(graph, cfg.restart))
        .sum();
    let mut out: Vec<Explanation> = walks
        .iter()
        .map(|p| {
            let contribution = p.contribution(graph, cfg.restart);
            let mut nodes = Vec::with_capacity(p.len() + 1);
            nodes.push(query);
            for &e in &p.edges {
                nodes.push(graph.endpoints(e).1);
            }
            Explanation {
                path: p.clone(),
                nodes,
                contribution,
                share: if total > 0.0 {
                    contribution / total
                } else {
                    0.0
                },
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.contribution
            .total_cmp(&a.contribution)
            .then(a.path.len().cmp(&b.path.len()))
            .then_with(|| a.path.edges.cmp(&b.path.edges))
    });
    out.truncate(top_n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdist::phi_single;
    use kg_graph::{GraphBuilder, NodeKind};

    /// q reaches a via a strong short walk and a weak long walk.
    fn scene() -> (KnowledgeGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let strong = b.add_node("strong", NodeKind::Entity);
        let w1 = b.add_node("weak1", NodeKind::Entity);
        let w2 = b.add_node("weak2", NodeKind::Entity);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, strong, 0.8).unwrap();
        b.add_edge(strong, a, 0.9).unwrap();
        b.add_edge(q, w1, 0.2).unwrap();
        b.add_edge(w1, w2, 0.3).unwrap();
        b.add_edge(w2, a, 0.3).unwrap();
        (b.build(), q, a)
    }

    #[test]
    fn strongest_walk_comes_first() {
        let (g, q, a) = scene();
        let cfg = SimilarityConfig::default();
        let ex = explain_ranking(&g, q, a, &cfg, 10, 100_000);
        assert_eq!(ex.len(), 2);
        assert!(ex[0].contribution > ex[1].contribution);
        assert_eq!(ex[0].render(&g), "q -> strong -> a");
        assert_eq!(ex[1].render(&g), "q -> weak1 -> weak2 -> a");
    }

    #[test]
    fn shares_sum_to_one_and_match_phi() {
        let (g, q, a) = scene();
        let cfg = SimilarityConfig::default();
        let ex = explain_ranking(&g, q, a, &cfg, 10, 100_000);
        let share_sum: f64 = ex.iter().map(|e| e.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        let contribution_sum: f64 = ex.iter().map(|e| e.contribution).sum();
        assert!((contribution_sum - phi_single(&g, q, a, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn top_n_truncates() {
        let (g, q, a) = scene();
        let ex = explain_ranking(&g, q, a, &SimilarityConfig::default(), 1, 100_000);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].render(&g), "q -> strong -> a");
    }

    #[test]
    fn unreachable_answer_has_no_explanation() {
        let (g, q, _) = scene();
        // Explain the query itself seen as "answer" from a sink: weak2 has
        // one outgoing edge to a only; q is unreachable from a.
        let a = g.find_node("a").unwrap();
        let ex = explain_ranking(&g, a, q, &SimilarityConfig::default(), 5, 100_000);
        assert!(ex.is_empty());
    }

    #[test]
    fn nodes_track_the_walk() {
        let (g, q, a) = scene();
        let ex = explain_ranking(&g, q, a, &SimilarityConfig::default(), 10, 100_000);
        for e in &ex {
            assert_eq!(e.nodes.first(), Some(&q));
            assert_eq!(e.nodes.last(), Some(&a));
            assert_eq!(e.nodes.len(), e.path.len() + 1);
        }
    }
}
