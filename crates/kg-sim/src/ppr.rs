//! Personalized PageRank by power iteration (Eq. 1 of the paper).
//!
//! `π_vq = (1-c)·M·π_vq + c·u_vq` where `M_ij = w(v_j, v_i)` and the
//! preference vector `u` puts all mass on the query node. The fixed point
//! is the Neumann series `c Σ_{l≥0} (1-c)^l (Mᵀ)^l e_q` — which the
//! extended inverse P-distance truncates at `L` (see [`crate::pdist`]).

use kg_graph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Power-iteration controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PprOptions {
    /// Restart probability `c`.
    pub restart: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when the L1 change between iterates falls below this.
    pub tol: f64,
}

impl Default for PprOptions {
    fn default() -> Self {
        PprOptions {
            restart: 0.15,
            max_iters: 200,
            tol: 1e-12,
        }
    }
}

/// Computes the PPR vector `π_vq` for a single query node by power
/// iteration. Returns a dense vector indexed by node id.
///
/// Sub-stochastic rows (nodes whose out-weights sum below one, e.g.
/// sinks) simply leak mass, exactly as the walk-sum definition
/// prescribes; no teleport-to-all correction is applied, matching the
/// paper's model.
pub fn ppr_vector(graph: &KnowledgeGraph, query: NodeId, opts: &PprOptions) -> Vec<f64> {
    assert!(
        query.index() < graph.node_count(),
        "query node {query} out of range"
    );
    let n = graph.node_count();
    let c = opts.restart;
    let mut pi = vec![0.0f64; n];
    pi[query.index()] = 1.0; // start from the preference vector
    let mut next = vec![0.0f64; n];
    let mut iters = 0u64;
    let mut residual = f64::INFINITY;

    for _ in 0..opts.max_iters {
        iters += 1;
        next.iter_mut().for_each(|v| *v = 0.0);
        next[query.index()] = c;
        // next += (1-c) * M * pi, with M_ij = w(j, i):
        // mass flows along out-edges of each node u holding pi[u].
        for u in graph.nodes() {
            let mass = pi[u.index()];
            if mass == 0.0 {
                continue;
            }
            let scaled = (1.0 - c) * mass;
            for e in graph.out_edges(u) {
                next[e.to.index()] += scaled * e.weight;
            }
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        residual = delta;
        if delta < opts.tol {
            break;
        }
    }
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sim.ppr_vectors").incr();
        kg_telemetry::counter("votekg.sim.ppr_iterations").add(iters);
        kg_telemetry::histogram("votekg.sim.ppr_iterations_per_vector").record(iters);
        kg_telemetry::gauge("votekg.sim.ppr_last_residual").set(residual);
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    fn chain() -> KnowledgeGraph {
        // q -> a -> b, all weight 1.
        let mut bld = GraphBuilder::new();
        let q = bld.add_node("q", NodeKind::Query);
        let a = bld.add_node("a", NodeKind::Entity);
        let b = bld.add_node("b", NodeKind::Entity);
        bld.add_edge(q, a, 1.0).unwrap();
        bld.add_edge(a, b, 1.0).unwrap();
        bld.build()
    }

    #[test]
    fn chain_has_closed_form() {
        // pi(q) = c, pi(a) = c(1-c), pi(b) = c(1-c)^2 / (1) since b is a sink
        let g = chain();
        let opts = PprOptions::default();
        let pi = ppr_vector(&g, NodeId(0), &opts);
        let c = opts.restart;
        assert!((pi[0] - c).abs() < 1e-9, "{pi:?}");
        assert!((pi[1] - c * (1.0 - c)).abs() < 1e-9);
        assert!((pi[2] - c * (1.0 - c) * (1.0 - c)).abs() < 1e-9);
    }

    #[test]
    fn self_loop_accumulates_geometric_mass() {
        // q -> q with weight 1: pi(q) = c * sum (1-c)^l = 1.
        let mut bld = GraphBuilder::new();
        let q = bld.add_node("q", NodeKind::Query);
        bld.add_edge(q, q, 1.0).unwrap();
        let pi = ppr_vector(&bld.build(), NodeId(0), &PprOptions::default());
        assert!((pi[0] - 1.0).abs() < 1e-9, "{pi:?}");
    }

    #[test]
    fn total_mass_bounded_by_one() {
        let g = chain();
        let pi = ppr_vector(&g, NodeId(0), &PprOptions::default());
        let total: f64 = pi.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn disconnected_node_gets_zero() {
        let mut bld = GraphBuilder::new();
        let q = bld.add_node("q", NodeKind::Query);
        let a = bld.add_node("a", NodeKind::Entity);
        let iso = bld.add_node("iso", NodeKind::Entity);
        bld.add_edge(q, a, 1.0).unwrap();
        let g = bld.build();
        let pi = ppr_vector(&g, q, &PprOptions::default());
        assert_eq!(pi[iso.index()], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        ppr_vector(&chain(), NodeId(99), &PprOptions::default());
    }
}
