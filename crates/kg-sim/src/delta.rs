//! Incremental maintenance: which queries are affected by a weight
//! change?
//!
//! After an optimization pass adjusts a set of edges, a deployment with
//! cached rankings only needs to re-rank the queries whose similarity
//! could have moved. A query `q`'s scores depend exactly on the edges
//! reachable within `L` hops of `q` — i.e. edge `(u, v)` matters iff `u`
//! lies within `L − 1` hops of `q`. Walking *backward* from the changed
//! edges' sources finds all such queries in one sweep, regardless of how
//! many queries exist.

use crate::config::SimilarityConfig;
use kg_graph::{EdgeId, KnowledgeGraph, NodeId};
use std::collections::HashSet;

/// Returns the subset of `queries` whose similarity scores can change
/// when the weights of `changed` edges change, under path bound
/// `cfg.max_path_len`. Output preserves the order of `queries`.
pub fn affected_queries(
    graph: &KnowledgeGraph,
    changed: &[EdgeId],
    queries: &[NodeId],
    cfg: &SimilarityConfig,
) -> Vec<NodeId> {
    if changed.is_empty() || queries.is_empty() {
        return Vec::new();
    }
    // Backward multi-source BFS from the changed edges' source nodes, up
    // to depth L-1 (a source at distance d from q puts the edge on walks
    // of length d+1 <= L).
    let mut reached: HashSet<NodeId> = HashSet::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &e in changed {
        let (from, _) = graph.endpoints(e);
        if reached.insert(from) {
            frontier.push(from);
        }
    }
    let mut depth = 0usize;
    while !frontier.is_empty() && depth + 1 < cfg.max_path_len {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for e in graph.in_edges(v) {
                if reached.insert(e.from) {
                    next.push(e.from);
                }
            }
        }
        frontier = next;
    }
    queries
        .iter()
        .copied()
        .filter(|q| reached.contains(q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    /// q1 -> a -> b -> c -> d (a chain), q2 -> d directly.
    fn chain() -> (KnowledgeGraph, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = GraphBuilder::new();
        let q1 = bld.add_node("q1", NodeKind::Query);
        let q2 = bld.add_node("q2", NodeKind::Query);
        let a = bld.add_node("a", NodeKind::Entity);
        let b = bld.add_node("b", NodeKind::Entity);
        let c = bld.add_node("c", NodeKind::Entity);
        let d = bld.add_node("d", NodeKind::Entity);
        let e0 = bld.add_edge(q1, a, 1.0).unwrap();
        let e1 = bld.add_edge(a, b, 1.0).unwrap();
        let e2 = bld.add_edge(b, c, 1.0).unwrap();
        let e3 = bld.add_edge(c, d, 1.0).unwrap();
        let e4 = bld.add_edge(q2, d, 1.0).unwrap();
        (bld.build(), vec![q1, q2], vec![e0, e1, e2, e3, e4])
    }

    #[test]
    fn nearby_change_affects_only_reaching_query() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 5);
        // a->b is 1 hop from q1 (on its walks), unreachable from q2.
        let hit = affected_queries(&g, &[edges[1]], &queries, &cfg);
        assert_eq!(hit, vec![queries[0]]);
    }

    #[test]
    fn change_beyond_l_hops_does_not_affect() {
        let (g, queries, edges) = chain();
        // c->d lies on q1-walks of length 4; with L = 3 it is out of range.
        let cfg = SimilarityConfig::new(0.15, 3);
        let hit = affected_queries(&g, &[edges[3]], &queries, &cfg);
        assert!(!hit.contains(&queries[0]), "{hit:?}");
        // q2 -> d: the edge c->d is NOT on q2's walks (q2 reaches d, but
        // c is not reachable from q2), so q2 is unaffected too.
        assert!(hit.is_empty(), "{hit:?}");
    }

    #[test]
    fn direct_edge_affects_its_query() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 2);
        let hit = affected_queries(&g, &[edges[4]], &queries, &cfg);
        assert_eq!(hit, vec![queries[1]]);
    }

    #[test]
    fn multiple_changes_union_their_queries() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 5);
        let hit = affected_queries(&g, &[edges[1], edges[4]], &queries, &cfg);
        assert_eq!(hit, queries);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::default();
        assert!(affected_queries(&g, &[], &queries, &cfg).is_empty());
        assert!(affected_queries(&g, &edges, &[], &cfg).is_empty());
    }

    /// Soundness against the engine: if a query is NOT reported affected,
    /// changing the edge must not change any of its similarity scores.
    #[test]
    fn unaffected_queries_scores_are_invariant() {
        let (g, queries, edges) = chain();
        for l in 2..=5 {
            let cfg = SimilarityConfig::new(0.15, l);
            for &e in &edges {
                let hit = affected_queries(&g, &[e], &queries, &cfg);
                let mut g2 = g.clone();
                g2.set_weight(e, g.weight(e) * 0.5).unwrap();
                for &q in &queries {
                    if !hit.contains(&q) {
                        let before = crate::pdist::phi_vector(&g, q, &cfg);
                        let after = crate::pdist::phi_vector(&g2, q, &cfg);
                        assert_eq!(before, after, "edge {e:?}, L={l}, query {q}");
                    }
                }
            }
        }
    }
}
