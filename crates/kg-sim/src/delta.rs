//! Incremental maintenance: which queries are affected by a weight
//! change, and *repairing* a prior evaluation instead of redoing it.
//!
//! After an optimization pass adjusts a set of edges, a deployment with
//! cached rankings only needs to re-rank the queries whose similarity
//! could have moved. A query `q`'s scores depend exactly on the edges
//! reachable within `L` hops of `q` — i.e. edge `(u, v)` matters iff `u`
//! lies within `L − 1` hops of `q`. Walking *backward* from the changed
//! edges' sources finds all such queries in one sweep, regardless of how
//! many queries exist ([`affected_queries`]).
//!
//! Knowing a query is affected used to mean evicting its cache entry and
//! re-running the full frontier DP. [`delta_phi`] turns that eviction
//! into a *repair*: [`PhiRecord`] captures the per-level frontier of a
//! prior [`crate::PhiWorkspace::compute_recorded`] pass, and when a small
//! set of edge weights changes, the repair re-derives only the masses
//! downstream of the change — re-seeding from the frontier nodes that
//! touch a changed edge and propagating corrections level by level.
//!
//! # Bitwise exactness
//!
//! The repaired scores are **bit-identical** to a fresh evaluation (with
//! `prune_eps = 0`), not merely close. This works because the DP's float
//! schedule is weight-independent as long as the *support* (which masses
//! are non-zero) is unchanged: contributions into a node arrive in the
//! frontier order of their sources, so the repair can gather a node's
//! in-contributions, replay them in recorded source-position order, and
//! fold from `0.0` exactly as the kernel would. Whenever that invariant
//! cannot be maintained — a mass crossing zero (support change), frontier
//! pruning enabled, a config or graph mismatch, or the repair work
//! exceeding the configured churn budget — `delta_phi` refuses with a
//! [`RepairFallback`] and the caller recomputes from scratch. Fallback is
//! the safety net, never a correctness trade.

use crate::config::{DeltaConfig, SimilarityConfig};
use crate::topk::{by_score_then_id, RankedAnswer};
use kg_graph::{EdgeId, KnowledgeGraph, NodeId};
use std::collections::HashSet;

/// Returns the subset of `queries` whose similarity scores can change
/// when the weights of `changed` edges change, under path bound
/// `cfg.max_path_len`. Output preserves the order of `queries`.
pub fn affected_queries(
    graph: &KnowledgeGraph,
    changed: &[EdgeId],
    queries: &[NodeId],
    cfg: &SimilarityConfig,
) -> Vec<NodeId> {
    if changed.is_empty() || queries.is_empty() {
        return Vec::new();
    }
    // Backward multi-source BFS from the changed edges' source nodes, up
    // to depth L-1 (a source at distance d from q puts the edge on walks
    // of length d+1 <= L).
    let mut reached: HashSet<NodeId> = HashSet::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &e in changed {
        let (from, _) = graph.endpoints(e);
        if reached.insert(from) {
            frontier.push(from);
        }
    }
    let mut depth = 0usize;
    while !frontier.is_empty() && depth + 1 < cfg.max_path_len {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for e in graph.in_edges(v) {
                if reached.insert(e.from) {
                    next.push(e.from);
                }
            }
        }
        frontier = next;
    }
    queries
        .iter()
        .copied()
        .filter(|q| reached.contains(q))
        .collect()
}

/// A replayable capture of one [`crate::PhiWorkspace::compute_recorded`]
/// pass: the query, the config it ran under, every level's live frontier
/// with masses, and the resulting phi scores. [`delta_phi`] edits this in
/// place when edge weights change; [`PhiRecord::rank_into`] re-ranks from
/// it without touching the graph.
#[derive(Debug, Clone)]
pub struct PhiRecord {
    pub(crate) query: NodeId,
    pub(crate) restart: f64,
    pub(crate) max_path_len: usize,
    pub(crate) prune_eps: f64,
    pub(crate) n: usize,
    // Every level's live frontier, flattened into one arena of
    // `(node, mass)` pairs in *frontier order* — exactly the order the
    // kernel first touched them, so a node's offset within its level is
    // its frontier position: the order in which its own contributions
    // were pushed downstream, which the repair must replay to stay
    // bitwise faithful. Level `l` spans
    // `level_entries[level_offsets[l]..level_offsets[l + 1]]`; level 0
    // is the query seed. Kept unsorted and contiguous so capture is a
    // plain append and repair sweeps are a single linear scan; the
    // repair builds dense per-level indices on demand instead of
    // binary-searching.
    pub(crate) level_entries: Vec<(NodeId, f64)>,
    pub(crate) level_offsets: Vec<u32>,
    // (node, phi) — exactly the touched set of the pass. Captured in
    // discovery order (recording must not slow the kernel down with a
    // sort); sorted by node lazily, the first time a consumer needs
    // keyed lookups (`phi_sorted` tracks which).
    pub(crate) phi: Vec<(NodeId, f64)>,
    pub(crate) phi_sorted: bool,
    // Edges the recorded pass expanded; the repair's work budget unit.
    pub(crate) edge_ops: u64,
    pub(crate) valid: bool,
}

impl Default for PhiRecord {
    fn default() -> Self {
        Self::new()
    }
}

impl PhiRecord {
    /// An empty, invalid record; fill it with
    /// [`crate::PhiWorkspace::compute_recorded`].
    pub fn new() -> Self {
        PhiRecord {
            query: NodeId(0),
            restart: 0.0,
            max_path_len: 0,
            prune_eps: 0.0,
            n: 0,
            level_entries: Vec::new(),
            level_offsets: Vec::new(),
            phi: Vec::new(),
            phi_sorted: false,
            edge_ops: 0,
            valid: false,
        }
    }

    /// Sorts the phi table by node for binary-searched lookups; a no-op
    /// once sorted (clones inherit sortedness, so at most one sort per
    /// captured pass however many consumers follow).
    pub(crate) fn sort_phi(&mut self) {
        if !self.phi_sorted {
            self.phi.sort_unstable_by_key(|e| e.0);
            self.phi_sorted = true;
        }
    }

    /// Levels captured by the recorded pass (level 0 is the query seed).
    fn used_levels(&self) -> usize {
        self.level_offsets.len().saturating_sub(1)
    }

    /// Level `l`'s live frontier, in frontier order.
    fn level(&self, l: usize) -> &[(NodeId, f64)] {
        &self.level_entries[self.level_offsets[l] as usize..self.level_offsets[l + 1] as usize]
    }

    /// True when the record holds a usable capture. A record is
    /// invalidated by a failed repair (the caller must recompute) and
    /// revalidated by the next recorded pass.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Marks the record unusable, forcing the next consumer to recompute.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// The query the record was computed for.
    pub fn query(&self) -> NodeId {
        self.query
    }

    /// Edges expanded by the recorded pass.
    pub fn edge_ops(&self) -> u64 {
        self.edge_ops
    }

    /// The recorded `Φ(query, node)` (`0.0` for unreached nodes) —
    /// bitwise equal to what [`crate::PhiWorkspace::phi`] returned for
    /// the recorded pass, and kept equal to a fresh evaluation across
    /// successful [`delta_phi`] repairs.
    pub fn phi(&self, node: NodeId) -> f64 {
        if self.phi_sorted {
            match self.phi.binary_search_by_key(&node, |e| e.0) {
                Ok(i) => self.phi[i].1,
                Err(_) => 0.0,
            }
        } else {
            // Not yet sorted (fresh capture): linear scan. Hot consumers
            // ([`delta_phi_apply`], [`Self::rank_into`]) sort first.
            self.phi
                .iter()
                .find(|e| e.0 == node)
                .map(|e| e.1)
                .unwrap_or(0.0)
        }
    }

    /// Ranks `answers` from the recorded scores with the same ordering
    /// and tie-breaking as [`crate::rank_answers`]. `scored` is caller
    /// scratch (contents ignored); allocation-free once both buffers are
    /// at capacity (after the one-time lazy phi sort).
    pub fn rank_into(
        &mut self,
        answers: &[NodeId],
        k: usize,
        scored: &mut Vec<(NodeId, f64)>,
        out: &mut Vec<RankedAnswer>,
    ) {
        self.sort_phi();
        scored.clear();
        scored.extend(answers.iter().map(|&a| (a, self.phi(a))));
        scored.sort_unstable_by(by_score_then_id);
        scored.truncate(k);
        out.clear();
        out.extend(
            scored
                .iter()
                .enumerate()
                .map(|(i, &(node, score))| RankedAnswer {
                    node,
                    score,
                    rank: i + 1,
                }),
        );
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn memory_bytes(&self) -> usize {
        self.level_entries.capacity() * std::mem::size_of::<(NodeId, f64)>()
            + self.level_offsets.capacity() * std::mem::size_of::<u32>()
            + self.phi.capacity() * std::mem::size_of::<(NodeId, f64)>()
    }

    pub(crate) fn begin(&mut self, query: NodeId, cfg: &SimilarityConfig, n: usize) {
        self.valid = false;
        self.query = query;
        self.restart = cfg.restart;
        self.max_path_len = cfg.max_path_len;
        self.prune_eps = cfg.prune_eps;
        self.n = n;
        self.edge_ops = 0;
        // Level 0: all mass on the query, at frontier position 0.
        self.level_entries.clear();
        self.level_offsets.clear();
        self.level_offsets.push(0);
        self.level_entries.push((query, 1.0));
        self.level_offsets.push(1);
    }

    pub(crate) fn push_level(&mut self, frontier: &[NodeId], mass: &[f64]) {
        // A straight append into the flat arena — no sorting, no
        // per-level allocations, so recording a pass costs little more
        // than the pass itself.
        self.level_entries
            .extend(frontier.iter().map(|&v| (v, mass[v.index()])));
        self.level_offsets.push(self.level_entries.len() as u32);
    }

    pub(crate) fn finish(&mut self, touched: &[NodeId], phi: &[f64], edge_ops: u64) {
        self.phi.clear();
        self.phi
            .extend(touched.iter().map(|&v| (v, phi[v.index()])));
        // Deliberately left in discovery order — the sort is deferred to
        // the first keyed consumer ([`Self::sort_phi`]) so pure cache
        // fills never pay it.
        self.phi_sorted = false;
        self.edge_ops = edge_ops;
        self.valid = true;
    }
}

/// Reusable scratch for [`delta_phi`]; allocation-free once warm.
#[derive(Debug, Clone, Default)]
pub struct RepairScratch {
    // Dense dedup stamps (candidate set per level, phi-dirty set per call).
    cand_stamp: Vec<u64>,
    cand_token: u64,
    phi_stamp: Vec<u64>,
    phi_token: u64,
    candidates: Vec<NodeId>,
    // Nodes dirty at the previous/current level with their *planned*
    // (not yet committed) masses, overlaying the record during cascades.
    prev_dirty: Vec<(NodeId, f64)>,
    cur_dirty: Vec<(NodeId, f64)>,
    phi_dirty: Vec<NodeId>,
    // The loaded delta ([`RepairScratch::load_delta`]): changed-edge
    // sources stamped densely, and the changed `(src, dst)` pairs sorted
    // by source. Loaded once per weight delta and shared by every plan
    // against it, so per-plan cost never scales with the churn size.
    delta_src_stamp: Vec<u64>,
    delta_token: u64,
    delta_out: Vec<(NodeId, NodeId)>,
    delta_changed: usize,
    delta_loaded: bool,
    delta_oob: bool,
    // (source frontier position, contribution) replay buffer.
    contributions: Vec<(u32, f64)>,
    // The plan: (arena entry index, new mass) writes awaiting apply.
    commits: Vec<(u32, f64)>,
    // Dense view of the previous level (stamped lazily per level): a
    // node's frontier position and mass, valid when its stamp matches.
    prev_stamp: Vec<u64>,
    prev_token: u64,
    prev_pos: Vec<u32>,
    prev_mass: Vec<f64>,
    // Dense entry index into the current level, for in-place commits.
    idx_stamp: Vec<u64>,
    idx_token: u64,
    cur_idx: Vec<u32>,
    // Dense phi accumulators for the final re-fold sweep.
    phi_acc: Vec<f64>,
    /// Ranking scratch, for callers re-ranking from a repaired record.
    pub scored: Vec<(NodeId, f64)>,
}

impl RepairScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.cand_stamp.len() < n {
            self.cand_stamp.resize(n, 0);
            self.phi_stamp.resize(n, 0);
            self.delta_src_stamp.resize(n, 0);
            self.prev_stamp.resize(n, 0);
            self.prev_pos.resize(n, 0);
            self.prev_mass.resize(n, 0.0);
            self.idx_stamp.resize(n, 0);
            self.cur_idx.resize(n, 0);
            self.phi_acc.resize(n, 0.0);
        }
    }

    /// Loads a weight delta into the scratch so any number of
    /// [`delta_phi_plan`] calls can be made against it. Stamps each
    /// changed edge's source node and keeps the `(src, dst)` pairs sorted
    /// by source — O(|changed| log |changed|) once, instead of per plan.
    /// Callers repairing a batch of records against one delta (a server
    /// sync) load once and plan per record.
    pub fn load_delta(&mut self, graph: &KnowledgeGraph, changed: &[EdgeId]) {
        self.ensure(graph.node_count());
        self.delta_token += 1;
        self.delta_out.clear();
        self.delta_changed = changed.len();
        self.delta_loaded = true;
        self.delta_oob = false;
        for &e in changed {
            if e.index() >= graph.edge_count() {
                self.delta_oob = true;
                continue;
            }
            let (u, v) = graph.endpoints(e);
            self.delta_src_stamp[u.index()] = self.delta_token;
            self.delta_out.push((u, v));
        }
        self.delta_out.sort_unstable_by_key(|&(u, _)| u);
    }

    /// Whether the most recent [`delta_phi_plan`] on this scratch moved
    /// `node`'s phi score. Only meaningful right after a plan that
    /// planned at least one commit (nonzero
    /// [`RepairStats::repaired_masses`]) and before the next plan;
    /// callers use it to skip re-ranking answer lists whose scores
    /// provably did not change.
    pub fn phi_changed(&self, node: NodeId) -> bool {
        self.phi_stamp.get(node.index()) == Some(&self.phi_token)
    }
}

/// Why [`delta_phi`] declined to repair. Every variant means "recompute
/// from scratch"; none means the record produced wrong answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairFallback {
    /// The delta path is switched off in [`DeltaConfig`].
    Disabled,
    /// The record was poisoned by an earlier failed repair (or never
    /// filled).
    Invalidated,
    /// The caller's [`SimilarityConfig`] differs from the recorded one.
    ConfigMismatch,
    /// The record was taken with `prune_eps > 0`; pruning makes the float
    /// schedule weight-dependent, so only exact passes are repairable.
    Pruned,
    /// The graph's node count changed — different topology.
    GraphMismatch,
    /// A repaired mass crossed zero, changing the DP's live support and
    /// with it the downstream accumulation order.
    ZeroCrossing,
    /// Estimated repair work exceeded `max_churn` × the recorded pass's
    /// cost; a full recompute is cheaper.
    ChurnExceeded,
    /// The record and graph disagree structurally (defensive; indicates
    /// the record belongs to a different graph).
    Inconsistent,
}

impl RepairFallback {
    /// Telemetry counter name for this fallback reason.
    pub fn counter_name(self) -> &'static str {
        match self {
            RepairFallback::Disabled => "votekg.sim.delta.fallback.disabled",
            RepairFallback::Invalidated => "votekg.sim.delta.fallback.invalidated",
            RepairFallback::ConfigMismatch => "votekg.sim.delta.fallback.config_mismatch",
            RepairFallback::Pruned => "votekg.sim.delta.fallback.pruned",
            RepairFallback::GraphMismatch => "votekg.sim.delta.fallback.graph_mismatch",
            RepairFallback::ZeroCrossing => "votekg.sim.delta.fallback.zero_crossing",
            RepairFallback::ChurnExceeded => "votekg.sim.delta.fallback.churn_exceeded",
            RepairFallback::Inconsistent => "votekg.sim.delta.fallback.inconsistent",
        }
    }
}

/// What a successful repair did, for telemetry and fallback tuning.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RepairStats {
    /// Frontier masses rewritten across all levels.
    pub repaired_masses: usize,
    /// Phi scores recomputed.
    pub dirty_phi: usize,
    /// Edges the repair visited (compare against
    /// [`PhiRecord::edge_ops`]).
    pub repair_ops: u64,
    /// Largest `|phi_new − phi_old|` correction applied.
    pub max_correction: f64,
}

/// Repairs `record` in place so it reflects `graph`'s *current* weights,
/// given that exactly the weights of `changed` edges moved since the
/// record was captured. On success the record's scores are bitwise equal
/// to a fresh [`crate::PhiWorkspace::compute`] pass on the current
/// weights. On any [`RepairFallback`] the record is poisoned
/// ([`PhiRecord::is_valid`] turns false) and the caller must recompute —
/// partial repairs are never left behind as "valid".
///
/// `changed` must be a *superset* of the edges whose weight differs from
/// capture time (extra unchanged edges are harmless; a missed changed
/// edge silently yields stale scores). [`kg_graph::WeightDelta`] provides
/// exactly this set.
pub fn delta_phi(
    graph: &KnowledgeGraph,
    record: &mut PhiRecord,
    changed: &[EdgeId],
    cfg: &SimilarityConfig,
    delta: &DeltaConfig,
    scratch: &mut RepairScratch,
) -> Result<RepairStats, RepairFallback> {
    scratch.load_delta(graph, changed);
    match delta_phi_plan(graph, record, cfg, delta, scratch) {
        Ok(mut stats) => {
            delta_phi_apply(record, scratch, &mut stats)?;
            Ok(stats)
        }
        Err(why) => {
            record.valid = false;
            Err(why)
        }
    }
}

/// The read-only planning half of [`delta_phi`]: computes every frontier
/// mass the weight changes move — including the full downstream cascade
/// and all budget / zero-crossing refusals — *without touching the
/// record*, leaving the commit list in `scratch`. Callers holding
/// records behind shared pointers probe repairability here first and
/// only pay for a deep copy when the plan succeeds: on `Ok`, clone the
/// record and feed it to [`delta_phi_apply`] with the same scratch; on
/// `Err`, drop or recompute it. A failed plan does **not** poison the
/// record (it cannot — the record is immutable here), so the caller is
/// responsible for not serving the now-stale record.
///
/// The weight delta must have been loaded into the scratch with
/// [`RepairScratch::load_delta`] first; one load serves any number of
/// plans, so repairing a whole cache against one delta costs
/// O(|changed|) once plus O(record) per entry.
pub fn delta_phi_plan(
    graph: &KnowledgeGraph,
    record: &PhiRecord,
    cfg: &SimilarityConfig,
    delta: &DeltaConfig,
    scratch: &mut RepairScratch,
) -> Result<RepairStats, RepairFallback> {
    let fail = |why: RepairFallback| -> Result<RepairStats, RepairFallback> {
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.sim.delta.fallback").incr();
            kg_telemetry::counter(why.counter_name()).incr();
        }
        Err(why)
    };
    // An early `Ok` must leave an *empty* plan behind, never a stale one.
    scratch.commits.clear();
    scratch.phi_dirty.clear();
    if !delta.enabled {
        return fail(RepairFallback::Disabled);
    }
    if !record.valid {
        return fail(RepairFallback::Invalidated);
    }
    if cfg.restart.to_bits() != record.restart.to_bits()
        || cfg.max_path_len != record.max_path_len
        || cfg.prune_eps.to_bits() != record.prune_eps.to_bits()
    {
        return fail(RepairFallback::ConfigMismatch);
    }
    if record.prune_eps != 0.0 {
        return fail(RepairFallback::Pruned);
    }
    if graph.node_count() != record.n {
        return fail(RepairFallback::GraphMismatch);
    }
    if !scratch.delta_loaded || scratch.delta_oob {
        // No delta loaded, or it referenced edges this graph does not
        // have — either way the scratch and graph disagree.
        return fail(RepairFallback::Inconsistent);
    }
    let mut stats = RepairStats::default();
    if scratch.delta_changed == 0 {
        return Ok(stats);
    }
    let mut span = kg_telemetry::span!("votekg.sim.delta.repair", {
        changed: scratch.delta_changed as u64,
    });

    scratch.ensure(record.n);
    // Fast path: a changed edge can only move recorded mass if its
    // source was touched by the recorded pass. `record.phi` is exactly
    // the touched set — probe each touched node against the loaded
    // delta's source stamps, O(record) regardless of churn size.
    let delta_token = scratch.delta_token;
    let overlaps = scratch.delta_src_stamp[record.query.index()] == delta_token
        || record
            .phi
            .iter()
            .any(|&(u, _)| scratch.delta_src_stamp[u.index()] == delta_token);
    if !overlaps {
        return Ok(stats);
    }

    let budget = delta.max_churn * record.edge_ops as f64;
    // Edge-work the repair performs (in-edge gathers + dirty frontier
    // expansions), in the same unit as the recorded pass's `edge_ops`.
    // Per-level stamping of the recorded frontiers is not counted — it
    // is O(touched) bookkeeping, several times cheaper per element than
    // kernel edge expansion.
    let mut repair_ops = 0u64;

    scratch.prev_dirty.clear();
    scratch.phi_token += 1;
    let phi_token = scratch.phi_token;

    for l in 1..record.used_levels() {
        // Candidate set: nodes whose level-`l` mass may have moved —
        // targets of changed edges with a live source at `l − 1`, plus
        // every out-neighbor of a node already dirty at `l − 1`. Sources
        // are found by scanning the (tiny) recorded frontier against the
        // loaded delta's stamps, never the delta itself, so clean levels
        // cost one probe per frontier node.
        scratch.cand_token += 1;
        let cand_token = scratch.cand_token;
        scratch.candidates.clear();
        for &(u, m) in record.level(l - 1) {
            if scratch.delta_src_stamp[u.index()] == delta_token && m != 0.0 {
                let lo = scratch.delta_out.partition_point(|&(s, _)| s < u);
                for &(s, v) in &scratch.delta_out[lo..] {
                    if s != u {
                        break;
                    }
                    if scratch.cand_stamp[v.index()] != cand_token {
                        scratch.cand_stamp[v.index()] = cand_token;
                        scratch.candidates.push(v);
                    }
                }
            }
        }
        for &(u, _) in &scratch.prev_dirty {
            let (targets, _) = graph.out_row(u);
            repair_ops += targets.len() as u64;
            for &t in targets {
                if scratch.cand_stamp[t.index()] != cand_token {
                    scratch.cand_stamp[t.index()] = cand_token;
                    scratch.candidates.push(t);
                }
            }
        }
        if repair_ops as f64 > budget {
            return fail(RepairFallback::ChurnExceeded);
        }
        if scratch.candidates.is_empty() {
            scratch.prev_dirty.clear();
            continue;
        }

        // Dense view of level l − 1: frontier position and mass per
        // node, O(1) to probe during contribution gathering. Planned
        // corrections from the previous iteration overlay the recorded
        // masses, so the cascade folds from repaired values without the
        // record changing. Only built for levels that actually have
        // candidates.
        scratch.prev_token += 1;
        let prev_token = scratch.prev_token;
        for (i, &(u, m)) in record.level(l - 1).iter().enumerate() {
            let ui = u.index();
            scratch.prev_stamp[ui] = prev_token;
            scratch.prev_pos[ui] = i as u32;
            scratch.prev_mass[ui] = m;
        }
        for &(u, planned) in &scratch.prev_dirty {
            scratch.prev_mass[u.index()] = planned;
        }

        // Dense entry index (absolute arena offsets) for level l, so
        // old-mass reads and planned commits are O(1).
        scratch.idx_token += 1;
        let idx_token = scratch.idx_token;
        let base = record.level_offsets[l];
        for (i, &(v, _)) in record.level(l).iter().enumerate() {
            let vi = v.index();
            scratch.idx_stamp[vi] = idx_token;
            scratch.cur_idx[vi] = base + i as u32;
        }

        scratch.cur_dirty.clear();
        let candidates = std::mem::take(&mut scratch.candidates);
        for &v in &candidates {
            // Replay v's in-contributions in the order the kernel pushed
            // them: source frontier position at level l − 1.
            let (sources, edge_ids) = graph.in_row(v);
            repair_ops += sources.len() as u64;
            if repair_ops as f64 > budget {
                // Trip before gathering, so a doomed plan stops at the
                // first over-budget candidate instead of finishing the
                // level.
                return fail(RepairFallback::ChurnExceeded);
            }
            scratch.contributions.clear();
            for (&src, &eid) in sources.iter().zip(edge_ids) {
                let si = src.index();
                if scratch.prev_stamp[si] == prev_token && scratch.prev_mass[si] != 0.0 {
                    scratch.contributions.push((
                        scratch.prev_pos[si],
                        scratch.prev_mass[si] * graph.weight(eid),
                    ));
                }
            }
            scratch.contributions.sort_unstable_by_key(|&(pos, _)| pos);
            let mut new_mass = 0.0f64;
            for &(_, x) in &scratch.contributions {
                new_mass += x;
            }
            let vi = v.index();
            if scratch.idx_stamp[vi] != idx_token {
                // Touch is weight-independent, so a live-sourced target
                // must have been recorded; its absence means the record
                // belongs to a different graph.
                return fail(RepairFallback::Inconsistent);
            }
            let ei = scratch.cur_idx[vi] as usize;
            let old_mass = record.level_entries[ei].1;
            if new_mass.to_bits() == old_mass.to_bits() {
                continue;
            }
            if (new_mass == 0.0) != (old_mass == 0.0) {
                // Support change: the fresh DP would walk (or skip) edges
                // this record never saw, reordering downstream folds.
                return fail(RepairFallback::ZeroCrossing);
            }
            scratch.commits.push((ei as u32, new_mass));
            stats.repaired_masses += 1;
            scratch.cur_dirty.push((v, new_mass));
            if scratch.phi_stamp[vi] != phi_token {
                scratch.phi_stamp[vi] = phi_token;
                scratch.phi_dirty.push(v);
            }
        }
        scratch.candidates = candidates;
        if repair_ops as f64 > budget {
            return fail(RepairFallback::ChurnExceeded);
        }
        std::mem::swap(&mut scratch.prev_dirty, &mut scratch.cur_dirty);
    }

    stats.repair_ops = repair_ops;
    if kg_telemetry::is_enabled() {
        span.field("repaired_masses", stats.repaired_masses as u64);
        span.field("repair_ops", stats.repair_ops);
    }
    Ok(stats)
}

/// Commits a successful [`delta_phi_plan`] into `record`: writes the
/// planned frontier masses, then re-folds phi for every node whose mass
/// moved at any level, exactly as the kernel accumulates it — seed (`c`
/// at level 0 for the query), then `+= c · decay_l · mass_l` in level
/// order. One sweep over the recorded frontiers feeding dense per-node
/// accumulators preserves that order without sorted levels.
///
/// Must be called with the same `scratch` the plan filled, with no
/// intervening plan, against the planned record (or a clone of it).
/// `stats` is extended with the phi-side numbers.
pub fn delta_phi_apply(
    record: &mut PhiRecord,
    scratch: &mut RepairScratch,
    stats: &mut RepairStats,
) -> Result<(), RepairFallback> {
    for &(ei, m) in &scratch.commits {
        record.level_entries[ei as usize].1 = m;
    }
    let phi_token = scratch.phi_token;
    if !scratch.phi_dirty.is_empty() {
        record.sort_phi();
        let c = record.restart;
        for &v in &scratch.phi_dirty {
            scratch.phi_acc[v.index()] = if v == record.query { c } else { 0.0 };
        }
        let mut decay = 1.0;
        for l in 1..record.used_levels() {
            decay *= 1.0 - c;
            for &(v, m) in record.level(l) {
                let vi = v.index();
                if scratch.phi_stamp[vi] == phi_token {
                    scratch.phi_acc[vi] += c * decay * m;
                }
            }
        }
        for &v in &scratch.phi_dirty {
            let x = scratch.phi_acc[v.index()];
            let Ok(pi) = record.phi.binary_search_by_key(&v, |e| e.0) else {
                record.valid = false;
                if kg_telemetry::is_enabled() {
                    kg_telemetry::counter("votekg.sim.delta.fallback").incr();
                    kg_telemetry::counter(RepairFallback::Inconsistent.counter_name()).incr();
                }
                return Err(RepairFallback::Inconsistent);
            };
            let corr = (x - record.phi[pi].1).abs();
            if corr > stats.max_correction {
                stats.max_correction = corr;
            }
            record.phi[pi].1 = x;
        }
    }

    stats.dirty_phi = scratch.phi_dirty.len();
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sim.delta.repaired").incr();
        kg_telemetry::counter("votekg.sim.delta.repaired_masses").add(stats.repaired_masses as u64);
        // Histogram of correction magnitudes in picounits: phi scores
        // live in (0, 1], so 1e12 keeps sub-ulp corrections resolvable.
        kg_telemetry::histogram("votekg.sim.delta.correction_pico")
            .record((stats.max_correction * 1e12) as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    /// q1 -> a -> b -> c -> d (a chain), q2 -> d directly.
    fn chain() -> (KnowledgeGraph, Vec<NodeId>, Vec<EdgeId>) {
        let mut bld = GraphBuilder::new();
        let q1 = bld.add_node("q1", NodeKind::Query);
        let q2 = bld.add_node("q2", NodeKind::Query);
        let a = bld.add_node("a", NodeKind::Entity);
        let b = bld.add_node("b", NodeKind::Entity);
        let c = bld.add_node("c", NodeKind::Entity);
        let d = bld.add_node("d", NodeKind::Entity);
        let e0 = bld.add_edge(q1, a, 1.0).unwrap();
        let e1 = bld.add_edge(a, b, 1.0).unwrap();
        let e2 = bld.add_edge(b, c, 1.0).unwrap();
        let e3 = bld.add_edge(c, d, 1.0).unwrap();
        let e4 = bld.add_edge(q2, d, 1.0).unwrap();
        (bld.build(), vec![q1, q2], vec![e0, e1, e2, e3, e4])
    }

    #[test]
    fn nearby_change_affects_only_reaching_query() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 5);
        // a->b is 1 hop from q1 (on its walks), unreachable from q2.
        let hit = affected_queries(&g, &[edges[1]], &queries, &cfg);
        assert_eq!(hit, vec![queries[0]]);
    }

    #[test]
    fn change_beyond_l_hops_does_not_affect() {
        let (g, queries, edges) = chain();
        // c->d lies on q1-walks of length 4; with L = 3 it is out of range.
        let cfg = SimilarityConfig::new(0.15, 3);
        let hit = affected_queries(&g, &[edges[3]], &queries, &cfg);
        assert!(!hit.contains(&queries[0]), "{hit:?}");
        // q2 -> d: the edge c->d is NOT on q2's walks (q2 reaches d, but
        // c is not reachable from q2), so q2 is unaffected too.
        assert!(hit.is_empty(), "{hit:?}");
    }

    #[test]
    fn direct_edge_affects_its_query() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 2);
        let hit = affected_queries(&g, &[edges[4]], &queries, &cfg);
        assert_eq!(hit, vec![queries[1]]);
    }

    #[test]
    fn multiple_changes_union_their_queries() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::new(0.15, 5);
        let hit = affected_queries(&g, &[edges[1], edges[4]], &queries, &cfg);
        assert_eq!(hit, queries);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let (g, queries, edges) = chain();
        let cfg = SimilarityConfig::default();
        assert!(affected_queries(&g, &[], &queries, &cfg).is_empty());
        assert!(affected_queries(&g, &edges, &[], &cfg).is_empty());
    }

    use crate::workspace::PhiWorkspace;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_graph(seed: u64) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let queries: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
            .collect();
        let hubs: Vec<NodeId> = (0..14)
            .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
            .collect();
        let answers: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
            .collect();
        for &q in &queries {
            for &h in &hubs {
                if rng.gen::<f64>() < 0.5 {
                    b.add_edge(q, h, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        for &h in &hubs {
            for &h2 in &hubs {
                if h != h2 && rng.gen::<f64>() < 0.2 {
                    b.add_edge(h, h2, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
            for &a in &answers {
                if rng.gen::<f64>() < 0.4 {
                    b.add_edge(h, a, rng.gen::<f64>() + 0.01).unwrap();
                }
            }
        }
        let mut g = b.build();
        g.normalize_out_edges();
        (g, queries, answers)
    }

    /// Repaired records must match an uncached evaluation bit for bit.
    fn assert_record_bitwise_fresh(g: &KnowledgeGraph, record: &PhiRecord, cfg: &SimilarityConfig) {
        let mut ws = PhiWorkspace::new();
        ws.compute(g, record.query(), cfg);
        for v in g.nodes() {
            assert_eq!(
                record.phi(v).to_bits(),
                ws.phi(v).to_bits(),
                "query {}, node {v}: repaired {} vs fresh {}",
                record.query(),
                record.phi(v),
                ws.phi(v)
            );
        }
    }

    #[test]
    fn recorded_pass_is_bitwise_identical_to_plain_compute() {
        for seed in 0..5 {
            let (g, queries, _) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let mut ws = PhiWorkspace::new();
            let mut record = PhiRecord::new();
            for &q in &queries {
                ws.compute_recorded(&g, q, &cfg, &mut record);
                assert!(record.is_valid());
                assert_eq!(record.query(), q);
                assert!(record.edge_ops() > 0);
                for v in g.nodes() {
                    assert_eq!(record.phi(v).to_bits(), ws.phi(v).to_bits());
                }
            }
        }
    }

    #[test]
    fn repair_after_single_edit_is_bitwise_exact() {
        for seed in 0..8 {
            let (mut g, queries, _) = random_graph(seed);
            let cfg = SimilarityConfig::default();
            let delta = DeltaConfig::default();
            let mut ws = PhiWorkspace::new();
            let mut scratch = RepairScratch::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD5);
            for &q in &queries {
                let mut record = PhiRecord::new();
                ws.compute_recorded(&g, q, &cfg, &mut record);
                let e = EdgeId(rng.gen_range(0..g.edge_count() as u32));
                let w = g.weight(e);
                g.set_weight(e, w * 0.5 + 0.01).unwrap();
                match delta_phi(&g, &mut record, &[e], &cfg, &delta, &mut scratch) {
                    Ok(_) => assert_record_bitwise_fresh(&g, &record, &cfg),
                    Err(why) => {
                        assert!(!record.is_valid(), "failed repair must poison: {why:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn repair_accumulates_across_many_rounds() {
        let (mut g, queries, _) = random_graph(2);
        let cfg = SimilarityConfig::default();
        let delta = DeltaConfig::default();
        let mut ws = PhiWorkspace::new();
        let mut scratch = RepairScratch::new();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let q = queries[0];
        let mut record = PhiRecord::new();
        ws.compute_recorded(&g, q, &cfg, &mut record);
        let mut repairs = 0;
        for _round in 0..30 {
            let k = rng.gen_range(1..4);
            let mut changed: Vec<EdgeId> = (0..k)
                .map(|_| EdgeId(rng.gen_range(0..g.edge_count() as u32)))
                .collect();
            changed.sort_unstable();
            changed.dedup();
            for &e in &changed {
                let w = g.weight(e);
                g.set_weight(e, (w * rng.gen_range(0.4f64..1.6)).min(5.0))
                    .unwrap();
            }
            match delta_phi(&g, &mut record, &changed, &cfg, &delta, &mut scratch) {
                Ok(_) => {
                    repairs += 1;
                    assert_record_bitwise_fresh(&g, &record, &cfg);
                }
                Err(_) => ws.compute_recorded(&g, q, &cfg, &mut record),
            }
        }
        // On a graph this small the churn breaker legitimately fires for
        // multi-edge rounds (a 3-edge cascade covers most of the graph);
        // the point here is that repair keeps succeeding bitwise across
        // interleaved repairs and fallback-recomputes, not the hit rate.
        assert!(repairs >= 10, "only {repairs}/30 rounds repaired");
    }

    #[test]
    fn unchanged_weight_in_delta_is_a_noop_repair() {
        let (g, queries, _) = random_graph(4);
        let cfg = SimilarityConfig::default();
        let mut ws = PhiWorkspace::new();
        let mut record = PhiRecord::new();
        ws.compute_recorded(&g, queries[1], &cfg, &mut record);
        let before = record.clone();
        let stats = delta_phi(
            &g,
            &mut record,
            &[EdgeId(0), EdgeId(3)],
            &cfg,
            &DeltaConfig::default(),
            &mut RepairScratch::new(),
        )
        .unwrap();
        assert_eq!(stats.repaired_masses, 0);
        assert_eq!(stats.dirty_phi, 0);
        for v in g.nodes() {
            assert_eq!(record.phi(v).to_bits(), before.phi(v).to_bits());
        }
    }

    #[test]
    fn zero_crossing_falls_back() {
        // q -> a with the only mass path through edge e; zeroing e kills
        // the support, which repair must refuse to model.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h = b.add_node("h", NodeKind::Entity);
        let a = b.add_node("a", NodeKind::Answer);
        let e0 = b.add_edge(q, h, 1.0).unwrap();
        b.add_edge(h, a, 1.0).unwrap();
        let mut g = b.build();
        let cfg = SimilarityConfig::default();
        let mut ws = PhiWorkspace::new();
        let mut record = PhiRecord::new();
        ws.compute_recorded(&g, q, &cfg, &mut record);
        g.set_weight(e0, 0.0).unwrap();
        let err = delta_phi(
            &g,
            &mut record,
            &[e0],
            &cfg,
            &DeltaConfig::default(),
            &mut RepairScratch::new(),
        )
        .unwrap_err();
        assert_eq!(err, RepairFallback::ZeroCrossing);
        assert!(!record.is_valid());
    }

    #[test]
    fn guard_rails_reject_mismatches() {
        let (mut g, queries, _) = random_graph(5);
        let cfg = SimilarityConfig::default();
        let mut ws = PhiWorkspace::new();
        let mut scratch = RepairScratch::new();
        let mut record = PhiRecord::new();
        let changed = [EdgeId(0)];
        g.set_weight(EdgeId(0), 0.123).unwrap();

        // Never filled.
        let err = delta_phi(
            &g,
            &mut record,
            &changed,
            &cfg,
            &DeltaConfig::default(),
            &mut scratch,
        );
        assert_eq!(err.unwrap_err(), RepairFallback::Invalidated);

        // Disabled config.
        ws.compute_recorded(&g, queries[0], &cfg, &mut record);
        let err = delta_phi(
            &g,
            &mut record,
            &changed,
            &cfg,
            &DeltaConfig::disabled(),
            &mut scratch,
        );
        assert_eq!(err.unwrap_err(), RepairFallback::Disabled);

        // Different similarity config.
        ws.compute_recorded(&g, queries[0], &cfg, &mut record);
        let other = SimilarityConfig::new(0.2, 5);
        let err = delta_phi(
            &g,
            &mut record,
            &changed,
            &other,
            &DeltaConfig::default(),
            &mut scratch,
        );
        assert_eq!(err.unwrap_err(), RepairFallback::ConfigMismatch);

        // Pruned pass.
        let pruned = cfg.with_prune_eps(1e-3);
        ws.compute_recorded(&g, queries[0], &pruned, &mut record);
        let err = delta_phi(
            &g,
            &mut record,
            &changed,
            &pruned,
            &DeltaConfig::default(),
            &mut scratch,
        );
        assert_eq!(err.unwrap_err(), RepairFallback::Pruned);

        // Zero churn budget: any real work trips the breaker.
        ws.compute_recorded(&g, queries[0], &cfg, &mut record);
        g.set_weight(EdgeId(0), 0.456).unwrap();
        let tight = DeltaConfig::default().with_max_churn(0.0);
        let err = delta_phi(&g, &mut record, &changed, &cfg, &tight, &mut scratch);
        assert_eq!(err.unwrap_err(), RepairFallback::ChurnExceeded);
    }

    #[test]
    fn record_rank_into_matches_workspace_ranking() {
        let (mut g, queries, answers) = random_graph(6);
        let cfg = SimilarityConfig::default();
        let mut ws = PhiWorkspace::new();
        let mut record = PhiRecord::new();
        let mut scratch = RepairScratch::new();
        let q = queries[2];
        ws.compute_recorded(&g, q, &cfg, &mut record);
        g.set_weight(EdgeId(1), g.weight(EdgeId(1)) * 0.7 + 0.02)
            .unwrap();
        delta_phi(
            &g,
            &mut record,
            &[EdgeId(1)],
            &cfg,
            &DeltaConfig::default(),
            &mut scratch,
        )
        .unwrap();
        let mut from_record = Vec::new();
        record.rank_into(&answers, 4, &mut scratch.scored, &mut from_record);
        let mut fresh = Vec::new();
        ws.rank_into(&g, q, &answers, &cfg, 4, &mut fresh);
        assert_eq!(from_record, fresh);
    }

    /// Soundness against the engine: if a query is NOT reported affected,
    /// changing the edge must not change any of its similarity scores.
    #[test]
    fn unaffected_queries_scores_are_invariant() {
        let (g, queries, edges) = chain();
        for l in 2..=5 {
            let cfg = SimilarityConfig::new(0.15, l);
            for &e in &edges {
                let hit = affected_queries(&g, &[e], &queries, &cfg);
                let mut g2 = g.clone();
                g2.set_weight(e, g.weight(e) * 0.5).unwrap();
                for &q in &queries {
                    if !hit.contains(&q) {
                        let before = crate::pdist::phi_vector(&g, q, &cfg);
                        let after = crate::pdist::phi_vector(&g2, q, &cfg);
                        assert_eq!(before, after, "edge {e:?}, L={l}, query {q}");
                    }
                }
            }
        }
    }
}
