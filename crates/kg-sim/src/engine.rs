//! A unifying trait over the similarity engines, so application code can
//! swap the extended inverse P-distance for PPR or Monte-Carlo sampling
//! without touching call sites — and so baselines in the experiment
//! harness share one interface.

use crate::config::SimilarityConfig;
use crate::pdist::phi_vector;
use crate::ppr::{ppr_vector, PprOptions};
use crate::random_walk::{monte_carlo_similarity, random_walk_similarity, MonteCarloOptions};
use crate::topk::RankedAnswer;
use kg_graph::{KnowledgeGraph, NodeId};

/// A query→answers similarity engine.
pub trait SimilarityEngine {
    /// Similarity scores of `answers` for `query`, in input order.
    fn similarities(&self, graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId]) -> Vec<f64>;

    /// Human-readable engine name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Ranks `answers` and returns the top `k`, ties broken by node id.
    /// Routed through [`crate::topk::rank_scored`] so every engine orders
    /// exactly like [`crate::rank_answers`].
    fn rank(
        &self,
        graph: &KnowledgeGraph,
        query: NodeId,
        answers: &[NodeId],
        k: usize,
    ) -> Vec<RankedAnswer> {
        let sims = self.similarities(graph, query, answers);
        let scored: Vec<(NodeId, f64)> = answers.iter().copied().zip(sims).collect();
        crate::topk::rank_scored(scored, k)
    }
}

/// The paper's engine: extended inverse P-distance via frontier DP.
#[derive(Debug, Clone, Copy, Default)]
pub struct PdistEngine {
    /// Similarity parameters.
    pub cfg: SimilarityConfig,
}

impl SimilarityEngine for PdistEngine {
    fn similarities(&self, graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId]) -> Vec<f64> {
        let phi = phi_vector(graph, query, &self.cfg);
        answers.iter().map(|a| phi[a.index()]).collect()
    }

    fn name(&self) -> &'static str {
        "extended-inverse-p-distance"
    }
}

/// Full Personalized PageRank by power iteration (untruncated).
#[derive(Debug, Clone, Copy, Default)]
pub struct PprEngine {
    /// Power-iteration controls.
    pub opts: PprOptions,
}

impl SimilarityEngine for PprEngine {
    fn similarities(&self, graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId]) -> Vec<f64> {
        let pi = ppr_vector(graph, query, &self.opts);
        answers.iter().map(|a| pi[a.index()]).collect()
    }

    fn name(&self) -> &'static str {
        "personalized-pagerank"
    }
}

/// The per-answer backward baseline (Table VI's "random walk").
#[derive(Debug, Clone, Copy, Default)]
pub struct BackwardWalkEngine {
    /// Similarity parameters.
    pub cfg: SimilarityConfig,
}

impl SimilarityEngine for BackwardWalkEngine {
    fn similarities(&self, graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId]) -> Vec<f64> {
        random_walk_similarity(graph, query, answers, &self.cfg)
    }

    fn name(&self) -> &'static str {
        "per-answer-backward-walk"
    }
}

/// Monte-Carlo sampling engine.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEngine {
    /// Restart probability.
    pub restart: f64,
    /// Sampling controls.
    pub opts: MonteCarloOptions,
}

impl Default for MonteCarloEngine {
    fn default() -> Self {
        MonteCarloEngine {
            restart: 0.15,
            opts: MonteCarloOptions::default(),
        }
    }
}

impl SimilarityEngine for MonteCarloEngine {
    fn similarities(&self, graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId]) -> Vec<f64> {
        monte_carlo_similarity(graph, query, answers, self.restart, &self.opts)
    }

    fn name(&self) -> &'static str {
        "monte-carlo-walks"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    fn scene() -> (KnowledgeGraph, NodeId, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h = b.add_node("h", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h, 1.0).unwrap();
        b.add_edge(h, a1, 0.7).unwrap();
        b.add_edge(h, a2, 0.3).unwrap();
        (b.build(), q, vec![a1, a2])
    }

    #[test]
    fn deterministic_engines_agree_on_ranking() {
        let (g, q, answers) = scene();
        let engines: Vec<Box<dyn SimilarityEngine>> = vec![
            Box::new(PdistEngine::default()),
            Box::new(PprEngine::default()),
            Box::new(BackwardWalkEngine::default()),
        ];
        for e in engines {
            let ranked = e.rank(&g, q, &answers, 2);
            assert_eq!(ranked[0].node, answers[0], "engine {}", e.name());
            assert!(ranked[0].score > ranked[1].score, "engine {}", e.name());
        }
    }

    #[test]
    fn pdist_and_backward_are_numerically_identical() {
        let (g, q, answers) = scene();
        let a = PdistEngine::default().similarities(&g, q, &answers);
        let b = BackwardWalkEngine::default().similarities(&g, q, &answers);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn monte_carlo_ranks_the_same_way() {
        let (g, q, answers) = scene();
        let mc = MonteCarloEngine {
            opts: MonteCarloOptions {
                walks: 50_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let ranked = mc.rank(&g, q, &answers, 2);
        assert_eq!(ranked[0].node, answers[0]);
    }

    #[test]
    fn engine_names_are_distinct() {
        let names = [
            PdistEngine::default().name(),
            PprEngine::default().name(),
            BackwardWalkEngine::default().name(),
            MonteCarloEngine::default().name(),
        ];
        let mut set = names.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), names.len());
    }
}
