//! Fault injection for resilience testing.
//!
//! The vote pipeline must survive solver failures: a diverged solve that
//! returns NaN, a wall-clock deadline that fires mid-round, or a panic in
//! one cluster of a parallel split-and-merge round. Those conditions are
//! rare in normal operation, so this module makes them reproducible:
//!
//! * [`FaultPlan`] + [`inject`] — a process-global plan that the real
//!   outer solvers ([`PenaltySolver`](crate::PenaltySolver),
//!   [`AugLagSolver`](crate::AugLagSolver)) consult at every solve entry.
//!   Solve calls are numbered by a shared counter, so a plan can target
//!   "the 2nd solve of this round" even when the solve happens deep inside
//!   kg-votes or on a kg-cluster worker thread. [`inject`] returns a
//!   [`FaultGuard`] that serializes concurrent fault tests and clears the
//!   plan on drop; with no plan installed the cost is one relaxed atomic
//!   load per solve.
//! * [`FaultySolver`] / [`FaultyInner`] — local wrappers around a
//!   [`Solver`] / [`InnerOptimizer`] with a per-instance plan, for unit
//!   tests that do not want global state.
//!
//! This module is compiled unconditionally (it is exercised by
//! integration tests of downstream crates, which see only the release
//! build of this crate), but injects nothing unless a test installs a
//! plan.

use crate::problem::SgpProblem;
use crate::solver::{InnerOptimizer, InnerParams, InnerResult, SolveError, SolveResult, Solver};
use crate::var::VarSpace;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What to inject when a targeted solve call happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Return [`SolveError::Injected`] from the solve.
    Error,
    /// Panic inside the solve (exercises panic isolation).
    Panic,
    /// Let the solve run, then overwrite the solution and objective with
    /// NaN (a diverged solve slipping past the solver's own guards). In
    /// [`FaultyInner`] this instead makes the merit function return NaN.
    NonFiniteSolution,
    /// Let the solve run, then shift every solution coordinate by the
    /// given fraction of its box width (clamped to the box) and recompute
    /// the derived result fields honestly. The corrupted result is
    /// finite and internally consistent — a *plausible wrong answer* that
    /// slips past the non-finite guards and is only caught by comparing
    /// solvers against each other (the differential fuzz harness).
    SkewSolution(f64),
    /// Sleep before solving (forces wall-clock budget overruns).
    Delay(Duration),
}

/// One plan entry: apply `action` to calls in `[from, to)`, optionally
/// only when the solve runs a specific inner optimizer.
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    from: usize,
    to: usize,
    inner: Option<&'static str>,
    action: FaultAction,
}

impl FaultRule {
    fn matches(&self, call: usize, inner: Option<&str>) -> bool {
        self.from <= call
            && call < self.to
            && match self.inner {
                None => true,
                // An inner-filtered rule never matches a context that
                // cannot name its optimizer (e.g. [`FaultySolver`]).
                Some(want) => inner == Some(want),
            }
    }
}

/// A schedule of faults keyed by solve-call index (0-based, in the order
/// the targeted component performs solves) and/or the inner optimizer
/// the solve runs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Injects `action` at exactly the `call`-th solve.
    pub fn at(mut self, call: usize, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            from: call,
            to: call + 1,
            inner: None,
            action,
        });
        self
    }

    /// Injects `action` at every solve from the `call`-th on.
    pub fn from_call(mut self, call: usize, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            from: call,
            to: usize::MAX,
            inner: None,
            action,
        });
        self
    }

    /// Injects `action` at every solve whose inner optimizer reports the
    /// given [`InnerOptimizer::name`] — regardless of call index. This is
    /// how the fuzz harness plants a bug in exactly one cell row of the
    /// solver matrix (e.g. "every lbfgs solve is subtly wrong").
    pub fn for_inner(mut self, inner: &'static str, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            from: 0,
            to: usize::MAX,
            inner: Some(inner),
            action,
        });
        self
    }

    fn action_for(&self, call: usize, inner: Option<&str>) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|r| r.matches(call, inner))
            .map(|r| r.action)
    }
}

struct PlanState {
    plan: FaultPlan,
    calls: usize,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);
/// Serializes fault-injecting tests within a process: solves from
/// unrelated concurrent tests would otherwise consume plan call indices.
static GATE: Mutex<()> = Mutex::new(());

/// Holds the global fault plan installed; dropping it clears the plan.
/// Also acts as a test-serialization lock — at most one guard exists per
/// process at a time.
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Number of solve calls observed since this plan was installed.
    pub fn calls(&self) -> usize {
        PLAN.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |s| s.calls)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Installs `plan` globally; the real outer solvers consult it on every
/// solve until the returned guard drops. Blocks while another guard is
/// alive (fault tests are mutually serialized).
pub fn inject(plan: FaultPlan) -> FaultGuard {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(PlanState { plan, calls: 0 });
    ACTIVE.store(true, Ordering::SeqCst);
    FaultGuard { _gate: gate }
}

/// Solve-entry hook for the outer solvers: consumes one call index and
/// applies any scheduled fault, matched against the call index and the
/// solve's inner-optimizer label. `Panic`/`Error`/`Delay` act here;
/// `NonFiniteSolution`/`SkewSolution` are returned for [`corrupt_result`]
/// to apply after the solve completes.
pub(crate) fn begin_solve(inner: &'static str) -> Result<Option<FaultAction>, SolveError> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(None);
    }
    let action = {
        let mut guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_mut() {
            None => return Ok(None),
            Some(state) => {
                let call = state.calls;
                state.calls += 1;
                state.plan.action_for(call, Some(inner))
            }
        }
    };
    match action {
        None | Some(FaultAction::NonFiniteSolution) | Some(FaultAction::SkewSolution(_)) => {
            Ok(action)
        }
        Some(FaultAction::Error) => Err(SolveError::Injected),
        Some(FaultAction::Panic) => panic!("sgp: injected solver panic (fault harness)"),
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(None)
        }
    }
}

/// Applies a pending [`FaultAction::NonFiniteSolution`] or
/// [`FaultAction::SkewSolution`] to a finished solve result.
pub(crate) fn corrupt_result(
    problem: &SgpProblem,
    feas_tol: f64,
    injected: Option<FaultAction>,
    result: &mut SolveResult,
) {
    match injected {
        Some(FaultAction::NonFiniteSolution) => {
            result.x.iter_mut().for_each(|v| *v = f64::NAN);
            result.objective = f64::NAN;
        }
        Some(FaultAction::SkewSolution(frac)) => {
            for (i, v) in result.x.iter_mut().enumerate() {
                let var = crate::var::VarId(i as u32);
                let lo = problem.vars.lower(var);
                let hi = problem.vars.upper(var);
                *v = (*v + frac * (hi - lo)).clamp(lo, hi);
            }
            // Recompute every derived field from the skewed point so the
            // result is internally consistent: nothing downstream can
            // detect the corruption without a second opinion.
            result.objective = problem.objective.eval(&result.x);
            let mut grad = vec![0.0; result.x.len()];
            problem.objective.accumulate_grad(&result.x, &mut grad);
            result.grad_norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            result.max_violation = problem.max_violation(&result.x);
            result.violated_constraints = problem.violated_count(&result.x, feas_tol);
            result.feasible = result.max_violation <= feas_tol;
        }
        _ => {}
    }
}

/// An [`InnerOptimizer`] wrapper with a per-instance fault plan.
///
/// `NonFiniteSolution` makes the merit function return NaN for the whole
/// call (the inner optimizer sees a diverged landscape); `Error` has no
/// inner-level meaning and delegates unchanged.
#[derive(Debug)]
pub struct FaultyInner<I> {
    inner: I,
    plan: FaultPlan,
    calls: AtomicUsize,
}

impl<I> FaultyInner<I> {
    /// Wraps `inner`, injecting per `plan` (indexed by minimize call).
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        FaultyInner {
            inner,
            plan,
            calls: AtomicUsize::new(0),
        }
    }

    /// Number of minimize calls observed.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl<I: InnerOptimizer> InnerOptimizer for FaultyInner<I> {
    fn minimize(
        &self,
        f: &mut dyn FnMut(&[f64], &mut [f64]) -> f64,
        vars: &VarSpace,
        x0: &[f64],
        params: &InnerParams,
    ) -> InnerResult {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.action_for(call, Some(self.inner.name())) {
            Some(FaultAction::Panic) => panic!("sgp: injected inner-optimizer panic"),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.minimize(f, vars, x0, params)
            }
            Some(FaultAction::NonFiniteSolution) => {
                let mut nan_merit = |x: &[f64], g: &mut [f64]| {
                    let _ = f(x, g);
                    f64::NAN
                };
                self.inner.minimize(&mut nan_merit, vars, x0, params)
            }
            Some(FaultAction::SkewSolution(frac)) => {
                let mut r = self.inner.minimize(f, vars, x0, params);
                for (i, v) in r.x.iter_mut().enumerate() {
                    let var = crate::var::VarId(i as u32);
                    let lo = vars.lower(var);
                    let hi = vars.upper(var);
                    *v = (*v + frac * (hi - lo)).clamp(lo, hi);
                }
                let mut grad = vec![0.0; r.x.len()];
                r.value = f(&r.x, &mut grad);
                r
            }
            Some(FaultAction::Error) | None => self.inner.minimize(f, vars, x0, params),
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A [`Solver`] wrapper with a per-instance fault plan (indexed by solve
/// call), independent of the global plan.
#[derive(Debug)]
pub struct FaultySolver<S> {
    inner: S,
    plan: FaultPlan,
    calls: AtomicUsize,
}

impl<S> FaultySolver<S> {
    /// Wraps `solver`, injecting per `plan`.
    pub fn new(solver: S, plan: FaultPlan) -> Self {
        FaultySolver {
            inner: solver,
            plan,
            calls: AtomicUsize::new(0),
        }
    }

    /// Number of solve calls observed.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl<S: Solver> Solver for FaultySolver<S> {
    fn solve(
        &self,
        problem: &SgpProblem,
        opts: &crate::SolveOptions,
    ) -> Result<SolveResult, SolveError> {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        let action = self.plan.action_for(call, None);
        match action {
            Some(FaultAction::Error) => return Err(SolveError::Injected),
            Some(FaultAction::Panic) => panic!("sgp: injected solver panic (FaultySolver)"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
        let mut result = self.inner.solve(problem, opts)?;
        corrupt_result(
            problem,
            opts.feas_tol,
            action.filter(|a| {
                matches!(
                    a,
                    FaultAction::NonFiniteSolution | FaultAction::SkewSolution(_)
                )
            }),
            &mut result,
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signomial::Signomial;
    use crate::solver::penalty::PenaltySolver;
    use crate::SolveOptions;

    fn one_var_problem() -> SgpProblem {
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.9, 0.01, 1.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -0.8) + Signomial::constant(0.16);
        SgpProblem::new(vars, obj.into())
    }

    // Tests of the *global* plan live in `tests/fault_injection.rs`: that
    // binary's tests all hold the serialization gate, whereas unit tests
    // here run concurrently with other solver tests whose solves would
    // consume plan call indices.

    #[test]
    fn faulty_solver_injects_locally() {
        let solver = FaultySolver::new(
            PenaltySolver::new(),
            FaultPlan::new()
                .at(0, FaultAction::Error)
                .at(1, FaultAction::NonFiniteSolution),
        );
        let p = one_var_problem();
        assert_eq!(
            solver.solve(&p, &SolveOptions::default()).unwrap_err(),
            SolveError::Injected
        );
        let r = solver.solve(&p, &SolveOptions::default()).unwrap();
        assert!(r.x[0].is_nan());
        let r = solver.solve(&p, &SolveOptions::default()).unwrap();
        assert!(r.x[0].is_finite());
        assert_eq!(solver.calls(), 3);
    }

    #[test]
    fn faulty_inner_nan_merit_keeps_iterate_finite() {
        // A NaN merit from call 0 on: projected Adam backs off to the
        // (projected) start point; the solver must still return finite x.
        let inner = FaultyInner::new(
            crate::AdamOptimizer::default(),
            FaultPlan::new().from_call(0, FaultAction::NonFiniteSolution),
        );
        let solver = PenaltySolver::with_inner(inner);
        let r = solver
            .solve(&one_var_problem(), &SolveOptions::default())
            .unwrap();
        assert!(r.x.iter().all(|v| v.is_finite()), "{:?}", r.x);
        assert!((r.x[0] - 0.9).abs() < 1e-9, "no progress expected");
    }

    #[test]
    #[should_panic(expected = "injected inner-optimizer panic")]
    fn faulty_inner_panics_on_schedule() {
        let inner = FaultyInner::new(
            crate::AdamOptimizer::default(),
            FaultPlan::new().at(0, FaultAction::Panic),
        );
        let _ =
            PenaltySolver::with_inner(inner).solve(&one_var_problem(), &SolveOptions::default());
    }
}
