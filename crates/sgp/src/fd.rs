//! Finite-difference utilities used to validate analytic gradients in
//! tests and benchmarks. Central differences with relative step.

/// Central finite-difference gradient of `f` at `x`.
pub fn fd_grad(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let step = h * (1.0 + x[i].abs());
        xp[i] = x[i] + step;
        let fp = f(&xp);
        xp[i] = x[i] - step;
        let fm = f(&xp);
        xp[i] = x[i];
        g[i] = (fp - fm) / (2.0 * step);
    }
    g
}

/// Maximum absolute difference between `a` and `b`.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_grad_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = fd_grad(f, &[2.0, 1.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-5);
        assert!((g[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
