//! Projected Adam: the default inner optimizer.
//!
//! Adam's per-coordinate step normalization copes well with the wildly
//! varying curvature of signomial merit functions (path monomials of
//! degree up to `L` next to steep sigmoid penalties), which defeats plain
//! gradient descent with a single step size. After each step the iterate
//! is projected onto the variable box.

use crate::solver::{InnerOptimizer, InnerParams, InnerResult};
use crate::var::VarSpace;
use serde::{Deserialize, Serialize};

/// Projected Adam optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamOptimizer {
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical floor in the denominator.
    pub epsilon: f64,
}

impl Default for AdamOptimizer {
    fn default() -> Self {
        AdamOptimizer {
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-10,
        }
    }
}

impl InnerOptimizer for AdamOptimizer {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn minimize(
        &self,
        f: &mut dyn FnMut(&[f64], &mut [f64]) -> f64,
        vars: &VarSpace,
        x0: &[f64],
        params: &InnerParams,
    ) -> InnerResult {
        let InnerParams {
            max_iters,
            learning_rate,
            step_tol,
            ..
        } = *params;
        let n = x0.len();
        let mut x = x0.to_vec();
        vars.project(&mut x);
        let mut grad = vec![0.0; n];
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut value = f64::INFINITY;
        let mut best_x = x.clone();
        let mut best_value = f64::INFINITY;
        let mut iterations = 0;

        for t in 1..=max_iters {
            if params.expired() {
                iterations = t - 1;
                break;
            }
            iterations = t;
            grad.iter_mut().for_each(|g| *g = 0.0);
            value = f(&x, &mut grad);
            if !value.is_finite() {
                // Diverged: back off to the best point seen.
                x.copy_from_slice(&best_x);
                break;
            }
            if value < best_value {
                best_value = value;
                best_x.copy_from_slice(&x);
            }

            let b1t = 1.0 - self.beta1.powi(t as i32);
            let b2t = 1.0 - self.beta2.powi(t as i32);
            let mut max_move = 0.0f64;
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = m[i] / b1t;
                let v_hat = v[i] / b2t;
                let step = learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
                let before = x[i];
                x[i] = (x[i] - step).clamp(vars.lower(crate::var::VarId(i as u32)), {
                    vars.upper(crate::var::VarId(i as u32))
                });
                max_move = max_move.max((x[i] - before).abs());
            }
            if max_move < step_tol {
                break;
            }
        }

        crate::solver::record_inner("adam", iterations);
        // Return the best point encountered (Adam is not monotone).
        let mut final_grad = vec![0.0; n];
        let final_value = f(&best_x, &mut final_grad);
        if final_value <= value || !value.is_finite() {
            InnerResult {
                x: best_x,
                value: final_value,
                iterations,
            }
        } else {
            InnerResult {
                x,
                value,
                iterations,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(n: usize, lo: f64, hi: f64, init: f64) -> VarSpace {
        let mut vs = VarSpace::new();
        for i in 0..n {
            vs.add(format!("x{i}"), init, lo, hi);
        }
        vs
    }

    #[test]
    fn minimizes_separable_quadratic() {
        // f = (x0 - 0.3)^2 + (x1 - 0.8)^2
        let vars = space(2, 0.01, 1.0, 0.5);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.3);
            g[1] = 2.0 * (x[1] - 0.8);
            (x[0] - 0.3).powi(2) + (x[1] - 0.8).powi(2)
        };
        let r = AdamOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5, 0.5],
            &InnerParams::new(3000, 0.02, 1e-10),
        );
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.8).abs() < 1e-3, "{:?}", r.x);
        assert!(r.value < 1e-5);
    }

    #[test]
    fn respects_box_constraints() {
        // Unconstrained minimum at 2.0, box caps at 1.0.
        let vars = space(1, 0.01, 1.0, 0.5);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 2.0);
            (x[0] - 2.0).powi(2)
        };
        let r = AdamOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(3000, 0.05, 1e-12),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn stops_on_small_steps() {
        let vars = space(1, 0.01, 1.0, 0.5);
        // Already at the minimum: gradient 0 everywhere.
        let mut f = |_x: &[f64], _g: &mut [f64]| 1.0;
        let r = AdamOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(1000, 0.02, 1e-9),
        );
        assert!(r.iterations < 10, "took {} iterations", r.iterations);
    }

    #[test]
    fn survives_non_finite_merit() {
        let vars = space(1, 0.01, 1.0, 0.5);
        let mut calls = 0usize;
        let mut f = |x: &[f64], g: &mut [f64]| {
            calls += 1;
            if calls > 3 {
                f64::NAN
            } else {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            }
        };
        let r = AdamOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(1000, 0.02, 1e-12),
        );
        assert!(r.x[0].is_finite());
    }

    #[test]
    fn handles_badly_scaled_gradients() {
        // f = 1e6 (x0 - 0.2)^2 + 1e-3 (x1 - 0.9)^2 : Adam should still move
        // both coordinates toward their minima.
        let vars = space(2, 0.01, 1.0, 0.5);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2e6 * (x[0] - 0.2);
            g[1] = 2e-3 * (x[1] - 0.9);
            1e6 * (x[0] - 0.2).powi(2) + 1e-3 * (x[1] - 0.9).powi(2)
        };
        let r = AdamOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5, 0.5],
            &InnerParams::new(8000, 0.02, 0.0),
        );
        assert!((r.x[0] - 0.2).abs() < 5e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.9).abs() < 5e-2, "{:?}", r.x);
    }
}
