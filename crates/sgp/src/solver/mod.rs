//! Solvers for [`SgpProblem`]s.
//!
//! Two-layer architecture, mirroring how `fmincon`-class solvers handle
//! nonlinear inequality constraints:
//!
//! * an **inner optimizer** ([`InnerOptimizer`]) minimizes a smooth
//!   unconstrained function over the variable box (projected Adam by
//!   default, projected gradient with Armijo backtracking as an
//!   alternative);
//! * an **outer loop** folds the inequality constraints into that smooth
//!   function — either an exterior quadratic penalty
//!   ([`penalty::PenaltySolver`]) or an augmented Lagrangian
//!   ([`auglag::AugLagSolver`]) — and re-solves with growing pressure
//!   until the iterate is feasible.

pub mod adam;
pub mod auglag;
pub mod lbfgs;
pub mod penalty;
pub mod projgrad;

use crate::problem::SgpProblem;
use crate::var::VarSpace;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Tuning knobs shared by all solvers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Maximum outer (penalty / multiplier update) rounds.
    pub max_outer_iters: usize,
    /// Maximum inner optimizer steps per outer round.
    pub max_inner_iters: usize,
    /// Inner optimizer step size.
    pub learning_rate: f64,
    /// Inner convergence: stop when the iterate moves less than this
    /// (infinity norm) between steps.
    pub step_tol: f64,
    /// Feasibility tolerance on constraint violations.
    pub feas_tol: f64,
    /// Initial penalty coefficient ρ (penalty solver) or μ (aug. Lagrangian).
    pub penalty_init: f64,
    /// Multiplicative growth of the penalty coefficient per outer round.
    pub penalty_growth: f64,
    /// Optional wall-clock budget; the solver returns its best iterate
    /// when exceeded (used by the scaling experiments).
    pub time_budget: Option<Duration>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_outer_iters: 12,
            max_inner_iters: 400,
            learning_rate: 0.02,
            step_tol: 1e-7,
            feas_tol: 1e-6,
            penalty_init: 10.0,
            penalty_growth: 5.0,
            time_budget: None,
        }
    }
}

impl SolveOptions {
    /// A cheaper profile for large batch experiments: fewer, larger steps.
    pub fn fast() -> Self {
        SolveOptions {
            max_outer_iters: 6,
            max_inner_iters: 150,
            learning_rate: 0.05,
            step_tol: 1e-6,
            ..Self::default()
        }
    }
}

/// One outer round's telemetry: how objective and feasibility evolved.
/// Useful for diagnosing stalled solves and tuning penalty growth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OuterRound {
    /// Objective value (without penalty terms) after the round.
    pub objective: f64,
    /// Largest constraint violation after the round.
    pub max_violation: f64,
    /// Penalty coefficient (ρ or μ) used during the round.
    pub penalty: f64,
    /// Inner iterations spent in the round.
    pub inner_iterations: usize,
}

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceReason {
    /// Constraint violations dropped within the feasibility tolerance.
    Feasible,
    /// All outer rounds were spent without reaching feasibility.
    MaxOuterIters,
    /// The wall-clock budget ran out first.
    TimeBudget,
}

impl ConvergenceReason {
    /// Stable label used in telemetry and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ConvergenceReason::Feasible => "feasible",
            ConvergenceReason::MaxOuterIters => "max_outer_iters",
            ConvergenceReason::TimeBudget => "time_budget",
        }
    }
}

impl fmt::Display for ConvergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// The final (projected, feasible-or-best-effort) point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// L2 norm of the objective gradient at `x` (stationarity indicator;
    /// excludes penalty terms, so a binding constraint keeps it nonzero).
    pub grad_norm: f64,
    /// Largest constraint violation at `x`.
    pub max_violation: f64,
    /// Number of constraints violated beyond the feasibility tolerance.
    pub violated_constraints: usize,
    /// Total inner optimizer steps across all outer rounds.
    pub inner_iterations: usize,
    /// Outer rounds performed.
    pub outer_iterations: usize,
    /// True when the result satisfies all constraints within tolerance.
    pub feasible: bool,
    /// Why the outer loop stopped.
    pub reason: ConvergenceReason,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Which solver combination produced this result, as
    /// `"<outer>+<inner>"` (e.g. `"penalty+adam"`). Lets downstream
    /// consumers — reports, repro files, the differential fuzz harness —
    /// attribute a result without threading the configuration alongside.
    pub solver: String,
    /// Per-outer-round telemetry, in execution order.
    pub trace: Vec<OuterRound>,
}

/// Errors raised by solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The problem has no variables to optimize.
    EmptyProblem,
    /// The objective or a constraint evaluated to a non-finite value at
    /// the initial point — the encoding is broken.
    NonFiniteAtStart,
    /// A fault injected by the test harness ([`crate::fault`]).
    Injected,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyProblem => write!(f, "problem has no variables"),
            SolveError::NonFiniteAtStart => {
                write!(f, "objective or constraint non-finite at the initial point")
            }
            SolveError::Injected => write!(f, "injected fault (test harness)"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A constrained solver.
pub trait Solver {
    /// Minimizes `problem`'s objective subject to its constraints and box.
    fn solve(&self, problem: &SgpProblem, opts: &SolveOptions) -> Result<SolveResult, SolveError>;
}

/// Result of one inner minimization.
#[derive(Debug, Clone)]
pub struct InnerResult {
    /// Final point (inside the box).
    pub x: Vec<f64>,
    /// Final merit value.
    pub value: f64,
    /// Steps taken.
    pub iterations: usize,
}

/// Per-call parameters for an inner minimization.
///
/// Bundles the step budget with an optional wall-clock `deadline` so the
/// inner loop — where a solve actually spends its time — can stop at the
/// budget instead of overshooting by a full round of inner iterations.
#[derive(Debug, Clone, Copy)]
pub struct InnerParams {
    /// Maximum optimizer steps.
    pub max_iters: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Stop when the iterate moves less than this (infinity norm).
    pub step_tol: f64,
    /// Stop (returning the best iterate so far) once this instant passes.
    pub deadline: Option<Instant>,
}

impl InnerParams {
    /// Parameters with no deadline.
    pub fn new(max_iters: usize, learning_rate: f64, step_tol: f64) -> Self {
        InnerParams {
            max_iters,
            learning_rate,
            step_tol,
            deadline: None,
        }
    }

    /// Derives inner parameters from solver options plus a deadline.
    pub fn from_options(opts: &SolveOptions, deadline: Option<Instant>) -> Self {
        InnerParams {
            max_iters: opts.max_inner_iters,
            learning_rate: opts.learning_rate,
            step_tol: opts.step_tol,
            deadline,
        }
    }

    /// True once the deadline (if any) has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A smooth box-constrained minimizer.
///
/// `f` evaluates the merit function at `x` and writes its gradient into
/// the provided buffer (which arrives zeroed), returning the value.
pub trait InnerOptimizer {
    /// Minimizes `f` over the box of `vars`, starting from `x0`.
    fn minimize(
        &self,
        f: &mut dyn FnMut(&[f64], &mut [f64]) -> f64,
        vars: &VarSpace,
        x0: &[f64],
        params: &InnerParams,
    ) -> InnerResult;

    /// Stable label naming this optimizer ("adam", "projgrad", "lbfgs").
    /// Used for solver introspection ([`SolveResult::solver`]) and for
    /// inner-filtered fault rules ([`crate::fault::FaultPlan::for_inner`]).
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Reports one inner minimization to telemetry, attributed to the
/// optimizer that ran it; shared by all [`InnerOptimizer`] impls.
pub(crate) fn record_inner(optimizer: &'static str, iterations: usize) {
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter_labeled("votekg.sgp.inner_steps", &[("optimizer", optimizer)])
            .add(iterations as u64);
    }
}

/// Validates the initial point of a problem; shared by the outer solvers.
pub(crate) fn check_problem(problem: &SgpProblem) -> Result<Vec<f64>, SolveError> {
    if problem.n_vars() == 0 {
        return Err(SolveError::EmptyProblem);
    }
    let x0 = problem.vars.initial_point();
    let f0 = problem.objective.eval(&x0);
    if !f0.is_finite() {
        return Err(SolveError::NonFiniteAtStart);
    }
    for c in &problem.constraints {
        if !c.expr.eval(&x0).is_finite() {
            return Err(SolveError::NonFiniteAtStart);
        }
    }
    Ok(x0)
}

/// Builds the final [`SolveResult`] from a candidate point, and reports
/// the solve to telemetry (`votekg.sgp.*`) when collection is enabled.
/// `solver` is the `"<outer>+<inner>"` combination label.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    problem: &SgpProblem,
    solver: String,
    x: Vec<f64>,
    inner_iterations: usize,
    outer_iterations: usize,
    feas_tol: f64,
    elapsed: Duration,
    trace: Vec<OuterRound>,
    reason: ConvergenceReason,
) -> SolveResult {
    let objective = problem.objective.eval(&x);
    let mut grad = vec![0.0; x.len()];
    problem.objective.accumulate_grad(&x, &mut grad);
    let grad_norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
    let max_violation = problem.max_violation(&x);
    let violated = problem.violated_count(&x, feas_tol);

    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.sgp.solves").incr();
        kg_telemetry::counter_labeled("votekg.sgp.converged", &[("reason", reason.as_str())])
            .incr();
        kg_telemetry::counter("votekg.sgp.inner_iterations").add(inner_iterations as u64);
        kg_telemetry::counter("votekg.sgp.outer_iterations").add(outer_iterations as u64);
        kg_telemetry::histogram("votekg.sgp.inner_iterations_per_solve")
            .record(inner_iterations as u64);
        kg_telemetry::gauge("votekg.sgp.last_objective").set(objective);
        kg_telemetry::gauge("votekg.sgp.last_grad_norm").set(grad_norm);
    }
    // Outside the is_enabled gate: the VOTEKG_LOG stderr logger works
    // without metrics collection; log_event self-gates on both sinks.
    kg_telemetry::tevent!(
        kg_telemetry::Level::Debug,
        "votekg.sgp.solve",
        "reason={reason} objective={objective:.6e} grad_norm={grad_norm:.3e} \
         max_violation={max_violation:.3e} violated={violated} \
         inner={inner_iterations} outer={outer_iterations}"
    );

    SolveResult {
        feasible: max_violation <= feas_tol,
        solver,
        objective,
        grad_norm,
        max_violation,
        violated_constraints: violated,
        inner_iterations,
        outer_iterations,
        reason,
        elapsed,
        x,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = SolveOptions::default();
        assert!(o.max_inner_iters > 0);
        assert!(o.penalty_growth > 1.0);
        assert!(o.feas_tol > 0.0);
        assert!(o.time_budget.is_none());
    }

    #[test]
    fn fast_profile_is_cheaper() {
        let fast = SolveOptions::fast();
        let def = SolveOptions::default();
        assert!(fast.max_inner_iters < def.max_inner_iters);
        assert!(fast.max_outer_iters <= def.max_outer_iters);
    }

    #[test]
    fn solve_error_display() {
        assert!(SolveError::EmptyProblem
            .to_string()
            .contains("no variables"));
        assert!(SolveError::NonFiniteAtStart
            .to_string()
            .contains("non-finite"));
    }
}
