//! Exterior quadratic penalty method.
//!
//! Minimizes `f0(x) + ρ Σ_i max(0, g_i(x))²`, repeatedly increasing `ρ`
//! until the iterate is feasible or the round budget is exhausted. This is
//! the workhorse for the single-vote solution, whose constraints (Eq. 11)
//! must actually be *satisfied*, not merely discouraged.

use crate::fault;
use crate::problem::SgpProblem;
use crate::solver::adam::AdamOptimizer;
use crate::solver::{
    check_problem, finish, ConvergenceReason, InnerOptimizer, InnerParams, SolveError,
    SolveOptions, SolveResult, Solver,
};
use std::time::Instant;

/// Exterior penalty solver parameterized by its inner optimizer.
#[derive(Debug, Clone, Default)]
pub struct PenaltySolver<I = AdamOptimizer> {
    /// The smooth box-constrained minimizer used for each subproblem.
    pub inner: I,
}

impl PenaltySolver<AdamOptimizer> {
    /// Creates a penalty solver with the default projected-Adam inner
    /// optimizer.
    pub fn new() -> Self {
        PenaltySolver::default()
    }
}

impl<I: InnerOptimizer> PenaltySolver<I> {
    /// Creates a penalty solver around the given inner optimizer.
    pub fn with_inner(inner: I) -> Self {
        PenaltySolver { inner }
    }
}

impl<I: InnerOptimizer> Solver for PenaltySolver<I> {
    fn solve(&self, problem: &SgpProblem, opts: &SolveOptions) -> Result<SolveResult, SolveError> {
        let _span = kg_telemetry::span!("votekg.sgp.penalty", {
            vars: problem.n_vars(),
            constraints: problem.n_constraints(),
        });
        // Clock starts before the fault hook: an injected delay must
        // count against the time budget, like any slow pre-solve work.
        let start = Instant::now();
        let injected = fault::begin_solve(self.inner.name())?;
        let mut x = check_problem(problem)?;
        let deadline = opts.time_budget.map(|b| start + b);
        let params = InnerParams::from_options(opts, deadline);
        let mut rho = opts.penalty_init;
        let mut inner_total = 0usize;
        let mut outer = 0usize;
        let mut reason = ConvergenceReason::MaxOuterIters;
        let mut trace = Vec::new();

        for round in 0..opts.max_outer_iters.max(1) {
            outer = round + 1;
            let mut merit = |x: &[f64], grad: &mut [f64]| -> f64 {
                let mut v = problem.objective.eval(x);
                problem.objective.accumulate_grad(x, grad);
                for c in &problem.constraints {
                    let g = c.expr.eval(x);
                    if g > 0.0 {
                        v += rho * g * g;
                        c.expr.accumulate_grad_scaled(x, 2.0 * rho * g, grad);
                    }
                }
                v
            };
            let r = self.inner.minimize(&mut merit, &problem.vars, &x, &params);
            inner_total += r.iterations;
            x = r.x;

            let violation = problem.max_violation(&x);
            trace.push(crate::solver::OuterRound {
                objective: problem.objective.eval(&x),
                max_violation: violation,
                penalty: rho,
                inner_iterations: r.iterations,
            });
            // Budget first: an unconstrained problem is always "feasible",
            // and a truncated descent must report TimeBudget so callers can
            // tell a best-effort iterate from a converged one.
            if let Some(budget) = opts.time_budget {
                if start.elapsed() >= budget {
                    reason = ConvergenceReason::TimeBudget;
                    break;
                }
            }
            if violation <= opts.feas_tol {
                reason = ConvergenceReason::Feasible;
                break;
            }
            rho *= opts.penalty_growth;
        }

        let mut result = finish(
            problem,
            format!("penalty+{}", self.inner.name()),
            x,
            inner_total,
            outer,
            opts.feas_tol,
            start.elapsed(),
            trace,
            reason,
        );
        fault::corrupt_result(problem, opts.feas_tol, injected, &mut result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signomial::Signomial;
    use crate::var::VarSpace;

    #[test]
    fn unconstrained_quadratic_reaches_minimum() {
        // minimize (x - 0.4)^2, no constraints.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.9, 0.01, 1.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -0.8) + Signomial::constant(0.16);
        let p = SgpProblem::new(vars, obj.into());
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert!(r.feasible);
        assert_eq!(r.reason, ConvergenceReason::Feasible);
        assert!(r.grad_norm.is_finite());
        assert!((r.x[0] - 0.4).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn active_constraint_binds() {
        // minimize (x - 2)^2 s.t. x <= 1 on [0.01, 10] -> x* = 1.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 10.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -4.0) + Signomial::constant(4.0);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 5e-3, "{:?}", r.x);
        assert!(r.max_violation < 1e-2);
    }

    #[test]
    fn gp_example_two_variables() {
        // minimize 1/(x y) s.t. x + y <= 1  -> x = y = 0.5, objective 4.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.2, 0.01, 1.0);
        let y = vars.add("y", 0.7, 0.01, 1.0);
        let obj = Signomial::from(crate::monomial::Monomial::new(1.0, [(x, -1.0), (y, -1.0)]));
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(
            Signomial::linear(x, 1.0) + Signomial::linear(y, 1.0) - Signomial::constant(1.0),
            "x+y<=1",
        );
        let opts = SolveOptions {
            max_inner_iters: 2000,
            ..Default::default()
        };
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &opts)
            .unwrap();
        assert!((r.x[0] - 0.5).abs() < 0.02, "{:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 0.02, "{:?}", r.x);
        assert!((r.objective - 4.0).abs() < 0.2);
    }

    #[test]
    fn infeasible_problem_reports_violation() {
        // x <= 0.2 and x >= 0.8 cannot both hold.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 1.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        p.add_constraint_leq_zero(
            Signomial::linear(x, 1.0) - Signomial::constant(0.2),
            "x<=0.2",
        );
        p.add_constraint_leq_zero(
            Signomial::constant(0.8) - Signomial::linear(x, 1.0),
            "x>=0.8",
        );
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert!(!r.feasible);
        assert_eq!(r.reason, ConvergenceReason::MaxOuterIters);
        assert!(r.max_violation > 0.1);
        assert!(r.violated_constraints >= 1);
    }

    #[test]
    fn empty_problem_errors() {
        let p = SgpProblem::new(VarSpace::new(), Signomial::zero().into());
        assert_eq!(
            PenaltySolver::<AdamOptimizer>::default()
                .solve(&p, &SolveOptions::default())
                .unwrap_err(),
            SolveError::EmptyProblem
        );
    }

    #[test]
    fn time_budget_short_circuits() {
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 1.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        // Unsatisfiable to force all outer rounds.
        p.add_constraint_leq_zero(Signomial::constant(2.0) - Signomial::linear(x, 1.0), "x>=2");
        let opts = SolveOptions {
            time_budget: Some(std::time::Duration::from_millis(0)),
            ..Default::default()
        };
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &opts)
            .unwrap();
        assert_eq!(r.outer_iterations, 1);
        assert_eq!(r.reason, ConvergenceReason::TimeBudget);
    }

    #[test]
    fn time_budget_bounds_inner_iterations() {
        // The deadline reaches the inner loop: an expired budget stops a
        // huge inner iteration allowance almost immediately instead of
        // overshooting by a full inner round.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 1.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        p.add_constraint_leq_zero(Signomial::constant(2.0) - Signomial::linear(x, 1.0), "x>=2");
        let opts = SolveOptions {
            max_inner_iters: 10_000_000,
            step_tol: 0.0,
            time_budget: Some(std::time::Duration::from_millis(0)),
            ..Default::default()
        };
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &opts)
            .unwrap();
        assert_eq!(r.reason, ConvergenceReason::TimeBudget);
        assert!(
            r.inner_iterations <= 1,
            "inner loop overshot the deadline: {} iterations",
            r.inner_iterations
        );
        assert!(r.x.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::signomial::Signomial;
    use crate::var::VarSpace;

    #[test]
    fn trace_records_every_outer_round() {
        // Unsatisfiable constraint forces all outer rounds with growing rho.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 1.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        p.add_constraint_leq_zero(Signomial::constant(2.0) - Signomial::linear(x, 1.0), "x>=2");
        let opts = SolveOptions {
            max_outer_iters: 4,
            ..SolveOptions::default()
        };
        let r = PenaltySolver::new().solve(&p, &opts).unwrap();
        assert_eq!(r.trace.len(), 4);
        // Penalty grows monotonically across rounds.
        for w in r.trace.windows(2) {
            assert!(w[1].penalty > w[0].penalty);
        }
        // The recorded final violation matches the result.
        assert!((r.trace.last().unwrap().max_violation - r.max_violation).abs() < 1e-12);
    }

    #[test]
    fn feasible_solve_stops_tracing_early() {
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 1.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        p.add_constraint_leq_zero(
            Signomial::linear(x, 1.0) - Signomial::constant(0.9),
            "x<=0.9",
        );
        let r = PenaltySolver::new()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert_eq!(r.trace.len(), 1);
        assert!(r.feasible);
    }
}
