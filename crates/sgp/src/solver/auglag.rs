//! Augmented Lagrangian solver for inequality constraints.
//!
//! Uses the standard Rockafellar form for `g_i(x) <= 0`:
//!
//! ```text
//! L(x, λ, μ) = f0(x) + Σ_i ψ(g_i(x), λ_i, μ)
//! ψ(g, λ, μ) = (max(0, λ + μ g)² − λ²) / (2 μ)
//! ```
//!
//! with the multiplier update `λ_i ← max(0, λ_i + μ g_i(x))` after each
//! inner solve. Compared to the exterior penalty, multiplier estimates let
//! a *moderate* `μ` achieve feasibility, avoiding the ill-conditioning of
//! very large penalty coefficients on badly scaled vote constraints.

use crate::fault;
use crate::problem::SgpProblem;
use crate::solver::adam::AdamOptimizer;
use crate::solver::{
    check_problem, finish, ConvergenceReason, InnerOptimizer, InnerParams, SolveError,
    SolveOptions, SolveResult, Solver,
};
use std::time::Instant;

/// Augmented-Lagrangian solver parameterized by its inner optimizer.
#[derive(Debug, Clone, Default)]
pub struct AugLagSolver<I = AdamOptimizer> {
    /// The smooth box-constrained minimizer used for each subproblem.
    pub inner: I,
}

impl AugLagSolver<AdamOptimizer> {
    /// Creates an augmented-Lagrangian solver with the default
    /// projected-Adam inner optimizer.
    pub fn new() -> Self {
        AugLagSolver::default()
    }
}

impl<I: InnerOptimizer> AugLagSolver<I> {
    /// Creates an augmented-Lagrangian solver around the given inner
    /// optimizer.
    pub fn with_inner(inner: I) -> Self {
        AugLagSolver { inner }
    }
}

impl<I: InnerOptimizer> Solver for AugLagSolver<I> {
    fn solve(&self, problem: &SgpProblem, opts: &SolveOptions) -> Result<SolveResult, SolveError> {
        let _span = kg_telemetry::span!("votekg.sgp.auglag", {
            vars: problem.n_vars(),
            constraints: problem.n_constraints(),
        });
        // Clock starts before the fault hook: an injected delay must
        // count against the time budget, like any slow pre-solve work.
        let start = Instant::now();
        let injected = fault::begin_solve(self.inner.name())?;
        let mut x = check_problem(problem)?;
        let deadline = opts.time_budget.map(|b| start + b);
        let params = InnerParams::from_options(opts, deadline);
        let m = problem.n_constraints();
        let mut lambda = vec![0.0f64; m];
        let mut mu = opts.penalty_init;
        let mut inner_total = 0usize;
        let mut outer = 0usize;
        let mut reason = ConvergenceReason::MaxOuterIters;
        let mut prev_violation = f64::INFINITY;
        let mut trace = Vec::new();

        for round in 0..opts.max_outer_iters.max(1) {
            outer = round + 1;
            let lam = lambda.clone();
            let mut merit = |x: &[f64], grad: &mut [f64]| -> f64 {
                let mut v = problem.objective.eval(x);
                problem.objective.accumulate_grad(x, grad);
                for (c, &l) in problem.constraints.iter().zip(&lam) {
                    let g = c.expr.eval(x);
                    let t = l + mu * g;
                    if t > 0.0 {
                        v += (t * t - l * l) / (2.0 * mu);
                        c.expr.accumulate_grad_scaled(x, t, grad);
                    } else {
                        v -= l * l / (2.0 * mu);
                    }
                }
                v
            };
            let r = self.inner.minimize(&mut merit, &problem.vars, &x, &params);
            inner_total += r.iterations;
            x = r.x;

            let viol = problem.max_violation(&x);
            trace.push(crate::solver::OuterRound {
                objective: problem.objective.eval(&x),
                max_violation: viol,
                penalty: mu,
                inner_iterations: r.iterations,
            });
            // Budget first: an unconstrained problem is always "feasible",
            // and a truncated descent must report TimeBudget so callers can
            // tell a best-effort iterate from a converged one.
            if let Some(budget) = opts.time_budget {
                if start.elapsed() >= budget {
                    reason = ConvergenceReason::TimeBudget;
                    break;
                }
            }
            if viol <= opts.feas_tol {
                reason = ConvergenceReason::Feasible;
                break;
            }
            // Multiplier update.
            for (i, c) in problem.constraints.iter().enumerate() {
                lambda[i] = (lambda[i] + mu * c.expr.eval(&x)).max(0.0);
            }
            // Grow μ only when feasibility stalls (classic LANCELOT rule).
            if viol > 0.25 * prev_violation {
                mu *= opts.penalty_growth;
            }
            prev_violation = viol;
        }

        let mut result = finish(
            problem,
            format!("auglag+{}", self.inner.name()),
            x,
            inner_total,
            outer,
            opts.feas_tol,
            start.elapsed(),
            trace,
            reason,
        );
        fault::corrupt_result(problem, opts.feas_tol, injected, &mut result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::signomial::Signomial;
    use crate::var::VarSpace;

    #[test]
    fn active_constraint_binds() {
        // minimize (x - 2)^2 s.t. x <= 1 -> x* = 1.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 10.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -4.0) + Signomial::constant(4.0);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
        let r = AugLagSolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 5e-3, "{:?}", r.x);
    }

    #[test]
    fn inactive_constraint_is_ignored() {
        // minimize (x - 0.3)^2 s.t. x <= 0.9: constraint slack at optimum.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.8, 0.01, 1.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -0.6) + Signomial::constant(0.09);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(
            Signomial::linear(x, 1.0) - Signomial::constant(0.9),
            "x<=0.9",
        );
        let r = AugLagSolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!(r.feasible);
    }

    #[test]
    fn signomial_constraint_with_product_terms() {
        // minimize (x-0.9)^2 + (y-0.9)^2 s.t. x*y <= 0.25 -> x=y=0.5.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.3, 0.01, 1.0);
        let y = vars.add("y", 0.7, 0.01, 1.0);
        let obj = Signomial::power(x, 2.0, 1.0)
            + Signomial::linear(x, -1.8)
            + Signomial::power(y, 2.0, 1.0)
            + Signomial::linear(y, -1.8)
            + Signomial::constant(2.0 * 0.81);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(
            Signomial::from(Monomial::new(1.0, [(x, 1.0), (y, 1.0)])) - Signomial::constant(0.25),
            "xy<=0.25",
        );
        let opts = SolveOptions {
            max_inner_iters: 2000,
            ..Default::default()
        };
        let r = AugLagSolver::<AdamOptimizer>::default()
            .solve(&p, &opts)
            .unwrap();
        assert!(r.max_violation < 1e-2, "viol {}", r.max_violation);
        assert!((r.x[0] * r.x[1] - 0.25).abs() < 2e-2, "{:?}", r.x);
        // Symmetric problem, symmetric solution.
        assert!((r.x[0] - r.x[1]).abs() < 5e-2, "{:?}", r.x);
    }

    #[test]
    fn matches_penalty_solver_on_shared_problem() {
        let build = || {
            let mut vars = VarSpace::new();
            let x = vars.add("x", 0.5, 0.01, 10.0);
            let obj = Signomial::power(x, 2.0, 1.0)
                + Signomial::linear(x, -4.0)
                + Signomial::constant(4.0);
            let mut p = SgpProblem::new(vars, obj.into());
            p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
            p
        };
        let opts = SolveOptions::default();
        let a = AugLagSolver::<AdamOptimizer>::default()
            .solve(&build(), &opts)
            .unwrap();
        let b = crate::solver::penalty::PenaltySolver::<AdamOptimizer>::default()
            .solve(&build(), &opts)
            .unwrap();
        assert!((a.x[0] - b.x[0]).abs() < 1e-2, "{} vs {}", a.x[0], b.x[0]);
    }

    #[test]
    fn empty_problem_errors() {
        let p = SgpProblem::new(VarSpace::new(), Signomial::zero().into());
        assert!(AugLagSolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .is_err());
    }
}
