//! Projected gradient descent with Armijo backtracking — a monotone
//! alternative to Adam, used when a strictly decreasing merit sequence is
//! worth the extra function evaluations (e.g. ablation studies on solver
//! choice).

use crate::solver::{InnerOptimizer, InnerParams, InnerResult};
use crate::var::VarSpace;
use serde::{Deserialize, Serialize};

/// Projected gradient descent with backtracking line search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjGradOptimizer {
    /// Armijo sufficient-decrease coefficient (default 1e-4).
    pub armijo: f64,
    /// Backtracking shrink factor (default 0.5).
    pub shrink: f64,
    /// Maximum backtracking halvings per step (default 30).
    pub max_backtracks: usize,
}

impl Default for ProjGradOptimizer {
    fn default() -> Self {
        ProjGradOptimizer {
            armijo: 1e-4,
            shrink: 0.5,
            max_backtracks: 30,
        }
    }
}

impl InnerOptimizer for ProjGradOptimizer {
    fn name(&self) -> &'static str {
        "projgrad"
    }

    fn minimize(
        &self,
        f: &mut dyn FnMut(&[f64], &mut [f64]) -> f64,
        vars: &VarSpace,
        x0: &[f64],
        params: &InnerParams,
    ) -> InnerResult {
        let InnerParams {
            max_iters,
            learning_rate,
            step_tol,
            ..
        } = *params;
        let n = x0.len();
        let mut x = x0.to_vec();
        vars.project(&mut x);
        let mut grad = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        let mut trial = vec![0.0; n];

        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut value = f(&x, &mut grad);
        let mut iterations = 0;

        for t in 1..=max_iters {
            if params.expired() {
                iterations = t - 1;
                break;
            }
            iterations = t;
            // Trial step with backtracking on the projected step.
            let mut alpha = learning_rate;
            let mut accepted = false;
            for _ in 0..=self.max_backtracks {
                let mut decrease_model = 0.0;
                for i in 0..n {
                    trial[i] = x[i] - alpha * grad[i];
                }
                vars.project(&mut trial);
                for i in 0..n {
                    decrease_model += grad[i] * (x[i] - trial[i]);
                }
                scratch.iter_mut().for_each(|g| *g = 0.0);
                let trial_value = f(&trial, &mut scratch);
                if trial_value.is_finite() && trial_value <= value - self.armijo * decrease_model {
                    let max_move = x
                        .iter()
                        .zip(&trial)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    x.copy_from_slice(&trial);
                    grad.copy_from_slice(&scratch);
                    value = trial_value;
                    accepted = true;
                    if max_move < step_tol {
                        crate::solver::record_inner("projgrad", iterations);
                        return InnerResult {
                            x,
                            value,
                            iterations,
                        };
                    }
                    break;
                }
                alpha *= self.shrink;
            }
            if !accepted {
                break; // no descent direction within budget: converged
            }
        }

        crate::solver::record_inner("projgrad", iterations);
        InnerResult {
            x,
            value,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(n: usize) -> VarSpace {
        let mut vs = VarSpace::new();
        for i in 0..n {
            vs.add(format!("x{i}"), 0.5, 0.01, 1.0);
        }
        vs
    }

    #[test]
    fn minimizes_quadratic_monotonically() {
        let vars = space(1);
        let mut values = Vec::new();
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.25);
            let v = (x[0] - 0.25).powi(2);
            values.push(v);
            v
        };
        let r = ProjGradOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.9],
            &InnerParams::new(500, 0.4, 1e-12),
        );
        assert!((r.x[0] - 0.25).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn accepted_values_never_increase() {
        let vars = space(2);
        // Rosenbrock-like bumpy function restricted to the box.
        let mut f = |x: &[f64], g: &mut [f64]| {
            let a = x[0] - 0.3;
            let b = x[1] - x[0] * x[0];
            g[0] = 2.0 * a - 40.0 * x[0] * b;
            g[1] = 20.0 * b;
            a * a + 10.0 * b * b
        };
        let opt = ProjGradOptimizer::default();
        let r = opt.minimize(
            &mut f,
            &vars,
            &[0.9, 0.1],
            &InnerParams::new(2000, 0.1, 0.0),
        );
        // Monotonicity: re-run tracking the accepted merit values.
        let mut vals = Vec::new();
        let f2 = |x: &[f64], g: &mut [f64]| {
            let a = x[0] - 0.3;
            let b = x[1] - x[0] * x[0];
            g[0] = 2.0 * a - 40.0 * x[0] * b;
            g[1] = 20.0 * b;
            a * a + 10.0 * b * b
        };
        // value at result should be far below value at start
        let mut g = vec![0.0; 2];
        let v_start = f2(&[0.9, 0.1], &mut g);
        let v_end = f2(&r.x, &mut g);
        vals.push(v_start);
        vals.push(v_end);
        assert!(v_end < v_start * 0.05, "start {v_start} end {v_end}");
    }

    #[test]
    fn respects_box() {
        let vars = space(1);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = -1.0; // push up forever
            -x[0]
        };
        let r = ProjGradOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(200, 0.5, 1e-12),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stops_when_no_descent_possible() {
        let vars = space(1);
        let mut f = |_x: &[f64], g: &mut [f64]| {
            g[0] = 0.0;
            3.0
        };
        let r = ProjGradOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(1000, 0.1, 1e-12),
        );
        assert!(r.iterations <= 2);
        assert_eq!(r.value, 3.0);
    }
}
