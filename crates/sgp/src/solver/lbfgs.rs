//! Projected limited-memory BFGS — a curvature-aware inner optimizer.
//!
//! The two-loop recursion builds an approximate Newton direction from the
//! last `memory` gradient differences; trial points are projected onto
//! the box and accepted under an Armijo condition. On the badly scaled
//! merit functions of vote programs (tiny path-monomial gradients next to
//! steep sigmoid walls) this typically converges in far fewer iterations
//! than first-order methods, at a slightly higher cost per iteration.
//!
//! Box handling is the standard practical compromise (project the L-BFGS
//! step, refresh memory when curvature breaks): not a true active-set
//! method, but robust for the loosely-binding boxes of edge weights.

use crate::solver::{InnerOptimizer, InnerParams, InnerResult};
use crate::var::VarSpace;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Projected L-BFGS optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbfgsOptimizer {
    /// Number of curvature pairs kept (default 8).
    pub memory: usize,
    /// Armijo sufficient-decrease coefficient (default 1e-4).
    pub armijo: f64,
    /// Backtracking shrink factor (default 0.5).
    pub shrink: f64,
    /// Maximum backtracking steps per iteration (default 25).
    pub max_backtracks: usize,
}

impl Default for LbfgsOptimizer {
    fn default() -> Self {
        LbfgsOptimizer {
            memory: 8,
            armijo: 1e-4,
            shrink: 0.5,
            max_backtracks: 25,
        }
    }
}

impl InnerOptimizer for LbfgsOptimizer {
    fn name(&self) -> &'static str {
        "lbfgs"
    }

    fn minimize(
        &self,
        f: &mut dyn FnMut(&[f64], &mut [f64]) -> f64,
        vars: &VarSpace,
        x0: &[f64],
        params: &InnerParams,
    ) -> InnerResult {
        let InnerParams {
            max_iters,
            learning_rate,
            step_tol,
            ..
        } = *params;
        let n = x0.len();
        let mut x = x0.to_vec();
        vars.project(&mut x);

        let mut grad = vec![0.0; n];
        let mut value = f(&x, &mut grad);
        if !value.is_finite() {
            return InnerResult {
                x,
                value,
                iterations: 0,
            };
        }

        // Curvature history (s_k, y_k, 1/(y_k·s_k)).
        let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::with_capacity(self.memory);
        let mut dir = vec![0.0; n];
        let mut trial = vec![0.0; n];
        let mut trial_grad = vec![0.0; n];
        let mut iterations = 0usize;

        for t in 1..=max_iters {
            if params.expired() {
                iterations = t - 1;
                break;
            }
            iterations = t;
            // Two-loop recursion: dir = -H·grad.
            dir.copy_from_slice(&grad);
            let mut alphas = Vec::with_capacity(history.len());
            for (s, y, rho) in history.iter().rev() {
                let a = rho * dot(s, &dir);
                axpy(&mut dir, y, -a);
                alphas.push(a);
            }
            // Initial Hessian scaling gamma = s·y / y·y of the newest pair.
            if let Some((s, y, _)) = history.back() {
                let gamma = dot(s, y) / dot(y, y).max(1e-300);
                dir.iter_mut().for_each(|d| *d *= gamma.max(1e-12));
            } else {
                // First iteration: scale like a gradient step.
                dir.iter_mut().for_each(|d| *d *= learning_rate);
            }
            for ((s, y, rho), a) in history.iter().zip(alphas.into_iter().rev()) {
                let b = rho * dot(y, &dir);
                axpy(&mut dir, s, a - b);
            }
            // dir currently approximates H·grad; descend along -dir.
            let descent = dot(&grad, &dir);
            if !descent.is_finite() || descent <= 0.0 {
                // Curvature broke down: reset to steepest descent.
                history.clear();
                dir.copy_from_slice(&grad);
                dir.iter_mut().for_each(|d| *d *= learning_rate);
            }

            // Backtracking on the projected step.
            let mut alpha = 1.0;
            let mut accepted = false;
            for _ in 0..=self.max_backtracks {
                for i in 0..n {
                    trial[i] = x[i] - alpha * dir[i];
                }
                vars.project(&mut trial);
                let model_decrease: f64 = grad
                    .iter()
                    .zip(x.iter().zip(&trial))
                    .map(|(g, (xi, ti))| g * (xi - ti))
                    .sum();
                trial_grad.iter_mut().for_each(|g| *g = 0.0);
                let trial_value = f(&trial, &mut trial_grad);
                if trial_value.is_finite() && trial_value <= value - self.armijo * model_decrease {
                    // Record curvature (projected step).
                    let s: Vec<f64> = trial.iter().zip(&x).map(|(a, b)| a - b).collect();
                    let y: Vec<f64> = trial_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
                    let sy = dot(&s, &y);
                    if sy > 1e-12 {
                        if history.len() == self.memory {
                            history.pop_front();
                        }
                        let rho = 1.0 / sy;
                        history.push_back((s.clone(), y, rho));
                    }
                    let max_move = s.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                    x.copy_from_slice(&trial);
                    grad.copy_from_slice(&trial_grad);
                    value = trial_value;
                    accepted = true;
                    if max_move < step_tol {
                        crate::solver::record_inner("lbfgs", iterations);
                        return InnerResult {
                            x,
                            value,
                            iterations,
                        };
                    }
                    break;
                }
                alpha *= self.shrink;
            }
            if !accepted {
                break; // no progress possible: converged or stuck
            }
        }

        crate::solver::record_inner("lbfgs", iterations);
        InnerResult {
            x,
            value,
            iterations,
        }
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn axpy(out: &mut [f64], v: &[f64], k: f64) {
    for (o, x) in out.iter_mut().zip(v) {
        *o += k * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(n: usize, lo: f64, hi: f64, init: f64) -> VarSpace {
        let mut vs = VarSpace::new();
        for i in 0..n {
            vs.add(format!("x{i}"), init, lo, hi);
        }
        vs
    }

    #[test]
    fn quadratic_converges_quickly() {
        let vars = space(2, 0.01, 1.0, 0.5);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.3);
            g[1] = 20.0 * (x[1] - 0.8);
            (x[0] - 0.3).powi(2) + 10.0 * (x[1] - 0.8).powi(2)
        };
        let r = LbfgsOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5, 0.5],
            &InnerParams::new(200, 0.05, 1e-12),
        );
        assert!((r.x[0] - 0.3).abs() < 1e-6, "{:?}", r.x);
        assert!((r.x[1] - 0.8).abs() < 1e-6, "{:?}", r.x);
        assert!(
            r.iterations < 60,
            "L-BFGS should converge fast, took {}",
            r.iterations
        );
    }

    #[test]
    fn respects_box() {
        let vars = space(1, 0.01, 1.0, 0.5);
        let mut f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 5.0);
            (x[0] - 5.0).powi(2)
        };
        let r = LbfgsOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(200, 0.05, 1e-12),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-9, "{:?}", r.x);
    }

    #[test]
    fn beats_adam_on_ill_conditioned_quadratic() {
        use crate::solver::adam::AdamOptimizer;
        use crate::solver::InnerOptimizer as _;
        let vars = space(2, 1e-4, 1.0, 0.5);
        let quad = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 0.2);
            g[1] = 2e4 * (x[1] - 0.9);
            (x[0] - 0.2).powi(2) + 1e4 * (x[1] - 0.9).powi(2)
        };
        let budget = 120;
        let mut f1 = quad;
        let lb = LbfgsOptimizer::default().minimize(
            &mut f1,
            &vars,
            &[0.5, 0.5],
            &InnerParams::new(budget, 0.02, 0.0),
        );
        let mut f2 = quad;
        let ad = AdamOptimizer::default().minimize(
            &mut f2,
            &vars,
            &[0.5, 0.5],
            &InnerParams::new(budget, 0.02, 0.0),
        );
        assert!(
            lb.value <= ad.value,
            "L-BFGS {} vs Adam {} after {budget} iters",
            lb.value,
            ad.value
        );
    }

    #[test]
    fn survives_non_finite_start() {
        let vars = space(1, 0.01, 1.0, 0.5);
        let mut f = |_x: &[f64], _g: &mut [f64]| f64::NAN;
        let r = LbfgsOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5],
            &InnerParams::new(100, 0.05, 1e-12),
        );
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn flat_function_stops_immediately() {
        let vars = space(3, 0.01, 1.0, 0.5);
        let mut f = |_x: &[f64], _g: &mut [f64]| 7.0;
        let r = LbfgsOptimizer::default().minimize(
            &mut f,
            &vars,
            &[0.5; 3],
            &InnerParams::new(100, 0.05, 1e-12),
        );
        assert!(r.iterations <= 2);
        assert_eq!(r.value, 7.0);
    }

    #[test]
    fn works_inside_penalty_solver() {
        use crate::problem::SgpProblem;
        use crate::signomial::Signomial;
        use crate::solver::penalty::PenaltySolver;
        use crate::solver::{SolveOptions, Solver};
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 10.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -4.0) + Signomial::constant(4.0);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
        let solver = PenaltySolver::with_inner(LbfgsOptimizer::default());
        let r = solver.solve(&p, &SolveOptions::default()).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
    }
}
