//! Optimization variables and the box `0 < xl <= x <= xu` they live in.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an optimization variable within a [`VarSpace`].
///
/// In the graph-optimization encoding, each variable is one edge weight
/// `x_{i,j}` (Section IV-B of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The set of variables of an SGP problem: names, initial values and box
/// bounds.
///
/// The SGP standard form (Eq. 2) requires strictly positive lower bounds;
/// [`VarSpace::add`] enforces `0 < lo <= init <= hi`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VarSpace {
    names: Vec<String>,
    init: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl VarSpace {
    /// Creates an empty variable space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been added.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Adds a variable with the given name, initial value and box bounds.
    ///
    /// # Panics
    /// Panics when the bounds are not `0 < lo <= hi`, the initial value is
    /// outside the box, or any value is non-finite — programming errors in
    /// problem construction, not runtime conditions.
    pub fn add(&mut self, name: impl Into<String>, init: f64, lo: f64, hi: f64) -> VarId {
        assert!(
            lo.is_finite() && hi.is_finite() && init.is_finite(),
            "variable bounds and init must be finite"
        );
        assert!(
            lo > 0.0,
            "SGP requires strictly positive lower bounds (got {lo})"
        );
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        assert!(
            (lo..=hi).contains(&init),
            "initial value {init} outside box [{lo}, {hi}]"
        );
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        self.init.push(init);
        self.lo.push(lo);
        self.hi.push(hi);
        id
    }

    /// Name of a variable.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Initial value of a variable.
    #[inline]
    pub fn initial(&self, var: VarId) -> f64 {
        self.init[var.index()]
    }

    /// Lower bound of a variable.
    #[inline]
    pub fn lower(&self, var: VarId) -> f64 {
        self.lo[var.index()]
    }

    /// Upper bound of a variable.
    #[inline]
    pub fn upper(&self, var: VarId) -> f64 {
        self.hi[var.index()]
    }

    /// The full initial point `x0`.
    pub fn initial_point(&self) -> Vec<f64> {
        self.init.clone()
    }

    /// Overwrites a variable's initial value (must stay inside its box).
    pub fn set_initial(&mut self, var: VarId, value: f64) {
        let i = var.index();
        assert!(
            value.is_finite() && (self.lo[i]..=self.hi[i]).contains(&value),
            "initial value {value} outside box [{}, {}]",
            self.lo[i],
            self.hi[i]
        );
        self.init[i] = value;
    }

    /// Clamps a point into the box, in place.
    pub fn project(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.len());
        for ((v, &lo), &hi) in x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *v = v.clamp(lo, hi);
        }
    }

    /// True when `x` lies inside the box within `tol`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.len()
            && x.iter()
                .enumerate()
                .all(|(i, &v)| v >= self.lo[i] - tol && v <= self.hi[i] + tol)
    }

    /// Iterates over `(id, name, init, lo, hi)` for every variable.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str, f64, f64, f64)> + '_ {
        (0..self.len()).map(move |i| {
            (
                VarId(i as u32),
                self.names[i].as_str(),
                self.init[i],
                self.lo[i],
                self.hi[i],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assigns_dense_ids() {
        let mut vs = VarSpace::new();
        let a = vs.add("a", 0.5, 0.1, 1.0);
        let b = vs.add("b", 0.2, 0.1, 1.0);
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.name(b), "b");
        assert_eq!(vs.initial(a), 0.5);
        assert_eq!(vs.lower(a), 0.1);
        assert_eq!(vs.upper(a), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_lower_bound_panics() {
        VarSpace::new().add("a", 0.5, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside box")]
    fn init_outside_box_panics() {
        VarSpace::new().add("a", 2.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        VarSpace::new().add("a", 0.5, 1.0, 0.1);
    }

    #[test]
    fn project_clamps_into_box() {
        let mut vs = VarSpace::new();
        vs.add("a", 0.5, 0.1, 1.0);
        vs.add("b", 0.5, 0.2, 0.8);
        let mut x = vec![-3.0, 5.0];
        vs.project(&mut x);
        assert_eq!(x, vec![0.1, 0.8]);
        assert!(vs.contains(&x, 0.0));
    }

    #[test]
    fn contains_rejects_wrong_dimension() {
        let mut vs = VarSpace::new();
        vs.add("a", 0.5, 0.1, 1.0);
        assert!(!vs.contains(&[0.5, 0.5], 0.0));
    }

    #[test]
    fn set_initial_updates_point() {
        let mut vs = VarSpace::new();
        let a = vs.add("a", 0.5, 0.1, 1.0);
        vs.set_initial(a, 0.9);
        assert_eq!(vs.initial_point(), vec![0.9]);
    }

    #[test]
    fn iter_yields_all_fields() {
        let mut vs = VarSpace::new();
        vs.add("w01", 0.4, 0.01, 1.0);
        let row = vs.iter().next().unwrap();
        assert_eq!(row.0, VarId(0));
        assert_eq!(row.1, "w01");
        assert_eq!((row.2, row.3, row.4), (0.4, 0.01, 1.0));
    }
}
