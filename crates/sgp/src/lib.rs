//! Signomial geometric programming (SGP) for the `votekg` workspace.
//!
//! Section III-A of the paper casts knowledge-graph weight optimization as
//! an SGP problem (Eq. 2–3):
//!
//! ```text
//! minimize   f0(x)
//! s.t.       fi(x) <= 1,   i = 1..m
//!            0 < xl <= x <= xu
//! ```
//!
//! where each `fi` is a *signomial* — a sum of monomials
//! `c · x1^{e1} · x2^{e2} · …` with arbitrary real coefficients and
//! exponents. The paper solved these with MATLAB's `fmincon`; no mature
//! GP/signomial solver exists in the Rust ecosystem, so this crate
//! implements the required machinery from scratch:
//!
//! * [`Monomial`] / [`Signomial`] — sparse symbolic expressions over a
//!   [`VarSpace`], with exact analytic gradients.
//! * [`CompositeObjective`] — the paper's multi-vote objective (Eq. 19) is
//!   *not* a pure signomial: it mixes a quadratic proximal term `λ1‖x−x0‖²`
//!   (Eq. 12) with sigmoid penalties `λ2 σ(w·g(x))` (Eq. 18). The composite
//!   objective models exactly that family.
//! * Solvers — a projected-Adam / projected-gradient inner optimizer over
//!   the box, wrapped by either an exterior quadratic [`PenaltySolver`] or
//!   an [`AugLagSolver`] (augmented Lagrangian) to enforce the inequality
//!   constraints. SGP is NP-hard in general (the paper cites Xu 2014);
//!   these are local methods, like `fmincon`.
//!
//! ```
//! use sgp::{VarSpace, Signomial, SgpProblem, PenaltySolver, Solver, SolveOptions};
//!
//! // minimize (x - 2)^2  subject to  x <= 1,  x in [0.01, 10]
//! let mut vars = VarSpace::new();
//! let x = vars.add("x", 0.5, 0.01, 10.0);
//! let objective = Signomial::constant(4.0)
//!     + Signomial::linear(x, -4.0)
//!     + Signomial::power(x, 2.0, 1.0);
//! let mut p = SgpProblem::new(vars, objective.into());
//! p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
//! let sol = PenaltySolver::new().solve(&p, &SolveOptions::default()).unwrap();
//! assert!((sol.x[0] - 1.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod fd;
pub mod monomial;
pub mod objective;
pub mod problem;
pub mod sigmoid;
pub mod signomial;
pub mod solver;
pub mod var;

pub use fault::{FaultAction, FaultGuard, FaultPlan, FaultyInner, FaultySolver};
pub use monomial::Monomial;
pub use objective::{CompositeObjective, ObjectiveTerm};
pub use problem::{Constraint, SgpProblem};
pub use sigmoid::{sigmoid, sigmoid_grad, step};
pub use signomial::Signomial;
pub use solver::adam::AdamOptimizer;
pub use solver::auglag::AugLagSolver;
pub use solver::lbfgs::LbfgsOptimizer;
pub use solver::penalty::PenaltySolver;
pub use solver::projgrad::ProjGradOptimizer;
pub use solver::{
    ConvergenceReason, InnerOptimizer, InnerParams, OuterRound, SolveError, SolveOptions,
    SolveResult, Solver,
};
pub use var::{VarId, VarSpace};
