//! Signomials: sums of [`Monomial`]s with arbitrary real coefficients —
//! the function class `f(x) = Σ_k c_k Π_i x_i^{e_ik}` of Eq. 3.

use crate::monomial::Monomial;
use crate::var::VarId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::ops::{Add, Mul, Neg, Sub};

/// A signomial expression.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Signomial {
    terms: Vec<Monomial>,
}

impl Signomial {
    /// The zero signomial.
    pub fn zero() -> Self {
        Signomial::default()
    }

    /// A constant signomial.
    pub fn constant(c: f64) -> Self {
        if c == 0.0 {
            Signomial::zero()
        } else {
            Signomial {
                terms: vec![Monomial::constant(c)],
            }
        }
    }

    /// The signomial `coeff · var`.
    pub fn linear(var: VarId, coeff: f64) -> Self {
        Signomial {
            terms: vec![Monomial::linear(var, coeff)],
        }
    }

    /// The signomial `coeff · var^exp`.
    pub fn power(var: VarId, exp: f64, coeff: f64) -> Self {
        Signomial {
            terms: vec![Monomial::new(coeff, [(var, exp)])],
        }
    }

    /// Builds a signomial from monomial terms.
    pub fn from_terms(terms: Vec<Monomial>) -> Self {
        Signomial { terms }
    }

    /// The monomial terms.
    pub fn terms(&self) -> &[Monomial] {
        &self.terms
    }

    /// Number of monomial terms (`K_i` in Eq. 3).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// True when the signomial has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Appends a monomial term.
    pub fn push(&mut self, m: Monomial) {
        if m.coeff != 0.0 {
            self.terms.push(m);
        }
    }

    /// Evaluates the signomial at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|m| m.eval(x)).sum()
    }

    /// Accumulates the gradient at `x` into `grad` (dense, indexed by
    /// variable id). Does not zero `grad` first, so multiple expressions
    /// can share one buffer.
    pub fn accumulate_grad(&self, x: &[f64], grad: &mut [f64]) {
        self.accumulate_grad_scaled(x, 1.0, grad);
    }

    /// Accumulates `scale · ∇f(x)` into `grad`.
    pub fn accumulate_grad_scaled(&self, x: &[f64], scale: f64, grad: &mut [f64]) {
        for m in &self.terms {
            let v = m.eval(x);
            m.accumulate_grad_scaled(x, v, scale, grad);
        }
    }

    /// Gradient at `x` as a fresh dense vector of length `n_vars`.
    pub fn grad(&self, x: &[f64], n_vars: usize) -> Vec<f64> {
        let mut g = vec![0.0; n_vars];
        self.accumulate_grad(x, &mut g);
        g
    }

    /// Merges like terms (same variable/exponent structure) and drops
    /// zero-coefficient terms. The result is canonical up to term order,
    /// which is made deterministic by sorting.
    pub fn simplified(&self) -> Signomial {
        let mut terms = self.terms.clone();
        terms.sort_by(|a, b| {
            a.powers.len().cmp(&b.powers.len()).then_with(|| {
                for (pa, pb) in a.powers.iter().zip(&b.powers) {
                    let c = pa.0.cmp(&pb.0).then(pa.1.total_cmp(&pb.1));
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            })
        });
        let mut out: Vec<Monomial> = Vec::with_capacity(terms.len());
        for t in terms {
            match out.last_mut() {
                Some(last) if last.like(&t) => last.coeff += t.coeff,
                _ => out.push(t),
            }
        }
        out.retain(|m| m.coeff != 0.0);
        Signomial { terms: out }
    }

    /// The set of distinct variables appearing in the expression.
    pub fn vars(&self) -> HashSet<VarId> {
        self.terms.iter().flat_map(|m| m.vars()).collect()
    }

    /// True when every coefficient is positive (the expression is a
    /// *posynomial*, the convexifiable special case of a signomial).
    pub fn is_posynomial(&self) -> bool {
        self.terms.iter().all(|m| m.coeff > 0.0)
    }

    /// Scales every coefficient by `k`.
    pub fn scaled(&self, k: f64) -> Signomial {
        Signomial {
            terms: self
                .terms
                .iter()
                .map(|m| Monomial {
                    coeff: m.coeff * k,
                    powers: m.powers.clone(),
                })
                .collect(),
        }
    }
}

impl From<Monomial> for Signomial {
    fn from(m: Monomial) -> Self {
        Signomial { terms: vec![m] }
    }
}

impl Add for Signomial {
    type Output = Signomial;
    fn add(mut self, mut rhs: Signomial) -> Signomial {
        self.terms.append(&mut rhs.terms);
        self
    }
}

impl Sub for Signomial {
    type Output = Signomial;
    fn sub(self, rhs: Signomial) -> Signomial {
        self + (-rhs)
    }
}

impl Neg for Signomial {
    type Output = Signomial;
    fn neg(self) -> Signomial {
        Signomial {
            terms: self.terms.into_iter().map(|m| m.neg()).collect(),
        }
    }
}

impl Mul for Signomial {
    type Output = Signomial;
    fn mul(self, rhs: Signomial) -> Signomial {
        let mut terms = Vec::with_capacity(self.terms.len() * rhs.terms.len());
        for a in &self.terms {
            for b in &rhs.terms {
                terms.push(a.mul(b));
            }
        }
        Signomial { terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn eval_of_polynomial() {
        // f = 2x^2 - 3xy + 1 at (2, 1) = 8 - 6 + 1 = 3
        let f = Signomial::power(x(), 2.0, 2.0)
            + Signomial::from(Monomial::new(-3.0, [(x(), 1.0), (y(), 1.0)]))
            + Signomial::constant(1.0);
        assert!((f.eval(&[2.0, 1.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grad_of_polynomial() {
        // f = 2x^2 - 3xy + 1 ; df/dx = 4x - 3y ; df/dy = -3x
        let f = Signomial::power(x(), 2.0, 2.0)
            + Signomial::from(Monomial::new(-3.0, [(x(), 1.0), (y(), 1.0)]))
            + Signomial::constant(1.0);
        let g = f.grad(&[2.0, 1.0], 2);
        assert!((g[0] - 5.0).abs() < 1e-9);
        assert!((g[1] + 6.0).abs() < 1e-9);
    }

    #[test]
    fn simplified_merges_like_terms() {
        let f = Signomial::linear(x(), 2.0) + Signomial::linear(x(), 3.0)
            - Signomial::linear(y(), 1.0)
            + Signomial::linear(y(), 1.0);
        let s = f.simplified();
        assert_eq!(s.term_count(), 1);
        assert_eq!(s.terms()[0].coeff, 5.0);
    }

    #[test]
    fn simplified_drops_cancelled_terms() {
        let f = Signomial::constant(2.0) - Signomial::constant(2.0);
        assert!(f.simplified().is_zero());
    }

    #[test]
    fn negative_exponents_evaluate() {
        // GP-style term: x^-1 y^-1 at (2, 4) = 0.125
        let f = Signomial::from(Monomial::new(1.0, [(x(), -1.0), (y(), -1.0)]));
        assert!((f.eval(&[2.0, 4.0]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn mul_expands_products() {
        // (x + 1)(x - 1) = x^2 - 1
        let f = (Signomial::linear(x(), 1.0) + Signomial::constant(1.0))
            * (Signomial::linear(x(), 1.0) - Signomial::constant(1.0));
        let s = f.simplified();
        assert!((s.eval(&[3.0]) - 8.0).abs() < 1e-12);
        assert_eq!(s.term_count(), 2);
    }

    #[test]
    fn posynomial_detection() {
        let pos = Signomial::linear(x(), 1.0) + Signomial::constant(2.0);
        let sig = Signomial::linear(x(), 1.0) - Signomial::constant(2.0);
        assert!(pos.is_posynomial());
        assert!(!sig.is_posynomial());
    }

    #[test]
    fn vars_lists_distinct_variables() {
        let f = Signomial::linear(x(), 1.0)
            + Signomial::from(Monomial::new(1.0, [(x(), 1.0), (y(), 1.0)]));
        let vars = f.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&x()) && vars.contains(&y()));
    }

    #[test]
    fn scaled_multiplies_coefficients() {
        let f = Signomial::linear(x(), 2.0) + Signomial::constant(1.0);
        let g = f.scaled(0.5);
        assert!((g.eval(&[4.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn zero_signomial_evaluates_to_zero() {
        let z = Signomial::zero();
        assert_eq!(z.eval(&[1.0, 2.0]), 0.0);
        assert!(z.is_zero());
        assert_eq!(z.grad(&[1.0], 1), vec![0.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let f = Signomial::power(x(), 2.0, -1.5) + Signomial::constant(3.0);
        let j = serde_json::to_string(&f).unwrap();
        let f2: Signomial = serde_json::from_str(&j).unwrap();
        assert_eq!(f, f2);
    }
}
