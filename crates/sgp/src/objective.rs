//! Composite objectives: the function family of Eq. 19,
//! `λ1 Σ (x − x0)² + λ2 Σ σ(w·g_i(x))`, generalized as a sum of typed
//! terms with exact gradients.

use crate::sigmoid::{sigmoid, sigmoid_grad};
use crate::signomial::Signomial;
use crate::var::VarId;
use serde::{Deserialize, Serialize};

/// One additive term of a [`CompositeObjective`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveTerm {
    /// A plain signomial term.
    Signomial(Signomial),
    /// The proximal drift term `weight · Σ_j (x_j − anchor_j)²` over the
    /// listed variables (Eq. 12). Listing variables keeps the term sparse:
    /// the vote encoding only penalizes drift on edges touched by votes.
    QuadraticProximal {
        /// Scale `λ1`.
        weight: f64,
        /// `(variable, anchor value x0)` pairs.
        anchors: Vec<(VarId, f64)>,
    },
    /// The relaxed violation counter `weight · σ(steepness · inner(x))`
    /// (Eq. 18), where `inner` is typically the constraint margin
    /// `S(q, a) − S(q, a*)` of one vote.
    SigmoidPenalty {
        /// Scale `λ2`.
        weight: f64,
        /// Sigmoid steepness `w` (the paper uses 300).
        steepness: f64,
        /// The signomial fed into the sigmoid.
        inner: Signomial,
    },
}

impl ObjectiveTerm {
    /// Evaluates the term at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        match self {
            ObjectiveTerm::Signomial(s) => s.eval(x),
            ObjectiveTerm::QuadraticProximal { weight, anchors } => {
                weight
                    * anchors
                        .iter()
                        .map(|&(v, x0)| {
                            let d = x[v.index()] - x0;
                            d * d
                        })
                        .sum::<f64>()
            }
            ObjectiveTerm::SigmoidPenalty {
                weight,
                steepness,
                inner,
            } => weight * sigmoid(inner.eval(x), *steepness),
        }
    }

    /// Accumulates the term's gradient at `x` into `grad`.
    pub fn accumulate_grad(&self, x: &[f64], grad: &mut [f64]) {
        match self {
            ObjectiveTerm::Signomial(s) => s.accumulate_grad(x, grad),
            ObjectiveTerm::QuadraticProximal { weight, anchors } => {
                for &(v, x0) in anchors {
                    grad[v.index()] += 2.0 * weight * (x[v.index()] - x0);
                }
            }
            ObjectiveTerm::SigmoidPenalty {
                weight,
                steepness,
                inner,
            } => {
                let outer = weight * sigmoid_grad(inner.eval(x), *steepness);
                if outer != 0.0 {
                    // chain rule: scale the inner gradient by the sigmoid slope
                    let n = grad.len();
                    let mut inner_grad = vec![0.0; n];
                    inner.accumulate_grad(x, &mut inner_grad);
                    for (g, ig) in grad.iter_mut().zip(inner_grad) {
                        *g += outer * ig;
                    }
                }
            }
        }
    }
}

/// A sum of [`ObjectiveTerm`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompositeObjective {
    terms: Vec<ObjectiveTerm>,
}

impl CompositeObjective {
    /// An empty (identically zero) objective.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term.
    pub fn push(&mut self, term: ObjectiveTerm) {
        self.terms.push(term);
    }

    /// The terms.
    pub fn terms(&self) -> &[ObjectiveTerm] {
        &self.terms
    }

    /// Evaluates the objective at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(x)).sum()
    }

    /// Gradient at `x` as a dense vector of length `n_vars`.
    pub fn grad(&self, x: &[f64], n_vars: usize) -> Vec<f64> {
        let mut g = vec![0.0; n_vars];
        self.accumulate_grad(x, &mut g);
        g
    }

    /// Accumulates the gradient at `x` into `grad`.
    pub fn accumulate_grad(&self, x: &[f64], grad: &mut [f64]) {
        for t in &self.terms {
            t.accumulate_grad(x, grad);
        }
    }
}

impl From<Signomial> for CompositeObjective {
    fn from(s: Signomial) -> Self {
        CompositeObjective {
            terms: vec![ObjectiveTerm::Signomial(s)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proximal_term_is_zero_at_anchor() {
        let t = ObjectiveTerm::QuadraticProximal {
            weight: 0.5,
            anchors: vec![(VarId(0), 0.3), (VarId(1), 0.7)],
        };
        assert_eq!(t.eval(&[0.3, 0.7]), 0.0);
        let mut g = vec![0.0; 2];
        t.accumulate_grad(&[0.3, 0.7], &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn proximal_term_value_and_grad() {
        let t = ObjectiveTerm::QuadraticProximal {
            weight: 2.0,
            anchors: vec![(VarId(0), 1.0)],
        };
        // 2 * (3 - 1)^2 = 8 ; grad = 2*2*(3-1) = 8
        assert!((t.eval(&[3.0]) - 8.0).abs() < 1e-12);
        let mut g = vec![0.0];
        t.accumulate_grad(&[3.0], &mut g);
        assert!((g[0] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_penalty_counts_violations() {
        // inner = x - 0.5 ; steep sigmoid ~ indicator(x > 0.5)
        let inner = Signomial::linear(VarId(0), 1.0) - Signomial::constant(0.5);
        let t = ObjectiveTerm::SigmoidPenalty {
            weight: 1.0,
            steepness: 300.0,
            inner,
        };
        assert!(t.eval(&[0.9]) > 0.999);
        assert!(t.eval(&[0.1]) < 0.001);
    }

    #[test]
    fn composite_sums_terms() {
        let mut obj = CompositeObjective::new();
        obj.push(ObjectiveTerm::Signomial(Signomial::constant(1.0)));
        obj.push(ObjectiveTerm::QuadraticProximal {
            weight: 1.0,
            anchors: vec![(VarId(0), 0.0)],
        });
        // 1 + x^2 at x = 2 -> 5
        assert!((obj.eval(&[2.0]) - 5.0).abs() < 1e-12);
        let g = obj.grad(&[2.0], 1);
        assert!((g[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn composite_grad_matches_finite_difference() {
        let inner = Signomial::linear(VarId(0), 2.0) - Signomial::linear(VarId(1), 1.0);
        let mut obj = CompositeObjective::new();
        obj.push(ObjectiveTerm::SigmoidPenalty {
            weight: 0.5,
            steepness: 20.0,
            inner,
        });
        obj.push(ObjectiveTerm::QuadraticProximal {
            weight: 0.25,
            anchors: vec![(VarId(0), 0.4), (VarId(1), 0.6)],
        });
        let x = [0.45, 0.55];
        let g = obj.grad(&x, 2);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (obj.eval(&xp) - obj.eval(&xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-4, "var {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn from_signomial_wraps_single_term() {
        let obj: CompositeObjective = Signomial::constant(3.0).into();
        assert_eq!(obj.terms().len(), 1);
        assert_eq!(obj.eval(&[]), 3.0);
    }
}
