//! The step function (Eq. 16) and its sigmoid approximation (Eq. 17).
//!
//! The multi-vote objective wants to count how many deviation variables
//! are positive (i.e. how many vote constraints are violated). The count
//! uses a step function, which is discontinuous at 0; the paper replaces
//! it by `σ(w·d) = 1 / (1 + e^{-w d})` with a large steepness `w`
//! (Fig. 2 uses `w = 300`).

/// The step function `F(d) = 1 if d > 0 else 0` (Eq. 16).
#[inline]
pub fn step(d: f64) -> f64 {
    if d > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// The steep sigmoid `L(d) = 1 / (1 + e^{-w d})` (Eq. 17).
///
/// Computed in a branch that avoids overflow of `e^{-w d}` for very
/// negative arguments.
#[inline]
pub fn sigmoid(d: f64, w: f64) -> f64 {
    let t = w * d;
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

/// Derivative of [`sigmoid`] with respect to `d`:
/// `dL/dd = w · L(d) · (1 − L(d))`.
#[inline]
pub fn sigmoid_grad(d: f64, w: f64) -> f64 {
    let s = sigmoid(d, w);
    w * s * (1.0 - s)
}

/// Maximum absolute deviation between the sigmoid and the step function
/// outside a dead-zone of half-width `margin` around 0. Used by the Fig. 2
/// regenerator to quantify the approximation quality.
pub fn approximation_error(w: f64, margin: f64, samples: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..samples {
        let d = -1.0 + 2.0 * (i as f64 + 0.5) / samples as f64;
        if d.abs() < margin {
            continue;
        }
        worst = worst.max((sigmoid(d, w) - step(d)).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_zero_one() {
        assert_eq!(step(-0.5), 0.0);
        assert_eq!(step(0.0), 0.0);
        assert_eq!(step(1e-9), 1.0);
    }

    #[test]
    fn sigmoid_midpoint_is_half() {
        assert!((sigmoid(0.0, 300.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded() {
        let mut prev = -1.0;
        for i in 0..200 {
            let d = -1.0 + i as f64 / 100.0;
            let s = sigmoid(d, 300.0);
            assert!((0.0..=1.0).contains(&s));
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn sigmoid_with_w300_closely_tracks_step() {
        // Fig. 2: at w = 300 the sigmoid is visually indistinguishable from
        // the step outside a tiny neighborhood of zero.
        assert!(approximation_error(300.0, 0.05, 1000) < 1e-6);
        // A shallow sigmoid is a poor approximation.
        assert!(approximation_error(2.0, 0.05, 1000) > 0.3);
    }

    #[test]
    fn sigmoid_handles_extreme_arguments_without_overflow() {
        assert_eq!(sigmoid(-1e6, 300.0), 0.0);
        assert_eq!(sigmoid(1e6, 300.0), 1.0);
        assert!(sigmoid_grad(-1e6, 300.0).abs() < 1e-300 || sigmoid_grad(-1e6, 300.0) == 0.0);
    }

    #[test]
    fn sigmoid_grad_matches_finite_difference() {
        let w = 30.0;
        for &d in &[-0.1, -0.01, 0.0, 0.02, 0.3] {
            let h = 1e-7;
            let fd = (sigmoid(d + h, w) - sigmoid(d - h, w)) / (2.0 * h);
            assert!(
                (sigmoid_grad(d, w) - fd).abs() < 1e-4,
                "d={d}: {} vs {fd}",
                sigmoid_grad(d, w)
            );
        }
    }
}
