//! The SGP problem container: variables, objective and inequality
//! constraints in the normalized form `g_i(x) <= 0`.

use crate::objective::CompositeObjective;
use crate::signomial::Signomial;
use crate::var::VarSpace;
use serde::{Deserialize, Serialize};

/// One inequality constraint `expr(x) <= 0`.
///
/// The paper's standard form uses `f_i(x) <= 1`; subtracting 1 converts it
/// to this form, and the vote constraints (Eq. 11/13) are already stated
/// as differences `< 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The constraint expression; feasible when `<= 0`.
    pub expr: Signomial,
    /// Human-readable tag for diagnostics (e.g. which vote and which
    /// competing answer produced it).
    pub name: String,
}

impl Constraint {
    /// Violation at `x`: `max(0, expr(x))`.
    pub fn violation(&self, x: &[f64]) -> f64 {
        self.expr.eval(x).max(0.0)
    }
}

/// A signomial geometric program over a box of variables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SgpProblem {
    /// The variables and their box bounds.
    pub vars: VarSpace,
    /// The objective to minimize.
    pub objective: CompositeObjective,
    /// Inequality constraints `g_i(x) <= 0`.
    pub constraints: Vec<Constraint>,
}

impl SgpProblem {
    /// Creates a problem with no constraints.
    pub fn new(vars: VarSpace, objective: CompositeObjective) -> Self {
        SgpProblem {
            vars,
            objective,
            constraints: Vec::new(),
        }
    }

    /// An unconstrained problem (used by the multi-vote solution after
    /// deviation-variable elimination).
    pub fn unconstrained(vars: VarSpace, objective: CompositeObjective) -> Self {
        Self::new(vars, objective)
    }

    /// Adds the constraint `expr(x) <= 0`.
    pub fn add_constraint_leq_zero(&mut self, expr: Signomial, name: impl Into<String>) {
        self.constraints.push(Constraint {
            expr,
            name: name.into(),
        });
    }

    /// Adds the paper-standard-form constraint `expr(x) <= 1`.
    pub fn add_constraint_leq_one(&mut self, expr: Signomial, name: impl Into<String>) {
        self.add_constraint_leq_zero(expr - Signomial::constant(1.0), name);
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Largest constraint violation at `x` (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.violation(x))
            .fold(0.0, f64::max)
    }

    /// Number of constraints violated by more than `tol` at `x`.
    pub fn violated_count(&self, x: &[f64], tol: f64) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.expr.eval(x) > tol)
            .count()
    }

    /// True when `x` satisfies every constraint within `tol` and lies in
    /// the box.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.vars.contains(x, tol) && self.max_violation(x) <= tol
    }

    /// Rough size descriptor used in logs: `(n_vars, n_constraints,
    /// total_monomial_terms)`.
    pub fn size(&self) -> (usize, usize, usize) {
        let terms: usize = self.constraints.iter().map(|c| c.expr.term_count()).sum();
        (self.n_vars(), self.n_constraints(), terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn toy() -> SgpProblem {
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 2.0);
        let obj: CompositeObjective = Signomial::linear(x, 1.0).into();
        let mut p = SgpProblem::new(vars, obj);
        // x >= 1  <=>  1 - x <= 0
        p.add_constraint_leq_zero(Signomial::constant(1.0) - Signomial::linear(x, 1.0), "x>=1");
        p
    }

    #[test]
    fn violation_and_feasibility() {
        let p = toy();
        assert!((p.max_violation(&[0.4]) - 0.6).abs() < 1e-12);
        assert_eq!(p.max_violation(&[1.5]), 0.0);
        assert!(p.is_feasible(&[1.5], 1e-9));
        assert!(!p.is_feasible(&[0.4], 1e-9));
        // Out of box => infeasible even if constraints hold.
        assert!(!p.is_feasible(&[3.0], 1e-9));
    }

    #[test]
    fn violated_count_counts() {
        let mut p = toy();
        p.add_constraint_leq_zero(
            Signomial::constant(0.9) - Signomial::linear(VarId(0), 1.0),
            "x>=0.9",
        );
        assert_eq!(p.violated_count(&[0.4], 1e-9), 2);
        assert_eq!(p.violated_count(&[0.95], 1e-9), 1);
        assert_eq!(p.violated_count(&[1.5], 1e-9), 0);
    }

    #[test]
    fn leq_one_normalizes() {
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 2.0);
        let mut p = SgpProblem::new(vars, Signomial::zero().into());
        p.add_constraint_leq_one(Signomial::linear(x, 1.0), "x<=1");
        assert_eq!(p.max_violation(&[1.0]), 0.0);
        assert!((p.max_violation(&[1.3]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn size_reports_terms() {
        let p = toy();
        let (n, m, t) = p.size();
        assert_eq!((n, m), (1, 1));
        assert_eq!(t, 2); // "1 - x" has two monomials
    }
}
