//! Monomials `c · x1^{e1} · x2^{e2} · …` — the atoms of signomial
//! expressions (Eq. 3 of the paper).
//!
//! In the vote-encoding, every path `z` from a query node to an answer
//! node becomes one monomial `c(1−c)^{|z|} · Π_e x_e` whose variables are
//! the edge weights along the path; a path that traverses an edge twice
//! yields exponent 2 on that variable.

use crate::var::VarId;
use serde::{Deserialize, Serialize};

/// A single monomial term: `coeff · Π_i x_{v_i}^{e_i}`.
///
/// The factor list is kept sorted by variable id with merged exponents,
/// so equality and like-term merging are structural.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Monomial {
    /// Real coefficient `c` (may be negative — that is what makes the
    /// expression a *signomial* rather than a posynomial).
    pub coeff: f64,
    /// Sorted `(variable, exponent)` factors with distinct variables and
    /// nonzero exponents.
    pub powers: Vec<(VarId, f64)>,
}

impl Monomial {
    /// A constant monomial.
    pub fn constant(coeff: f64) -> Self {
        Monomial {
            coeff,
            powers: Vec::new(),
        }
    }

    /// The monomial `coeff · var`.
    pub fn linear(var: VarId, coeff: f64) -> Self {
        Monomial {
            coeff,
            powers: vec![(var, 1.0)],
        }
    }

    /// Builds a monomial from an unsorted factor list, merging duplicate
    /// variables by summing exponents and dropping zero exponents.
    pub fn new(coeff: f64, factors: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        let mut powers: Vec<(VarId, f64)> = Vec::new();
        for (v, e) in factors {
            powers.push((v, e));
        }
        powers.sort_by_key(|(v, _)| *v);
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(powers.len());
        for (v, e) in powers {
            match merged.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => merged.push((v, e)),
            }
        }
        merged.retain(|(_, e)| *e != 0.0);
        Monomial {
            coeff,
            powers: merged,
        }
    }

    /// Builds the product monomial `coeff · Π_i x_{v_i}` from a walk's edge
    /// variables (all exponents 1; repeated edges merge to higher powers).
    pub fn from_path(coeff: f64, vars: impl IntoIterator<Item = VarId>) -> Self {
        Monomial::new(coeff, vars.into_iter().map(|v| (v, 1.0)))
    }

    /// Degree: sum of exponents.
    pub fn degree(&self) -> f64 {
        self.powers.iter().map(|(_, e)| e).sum()
    }

    /// True when the monomial has no variables.
    pub fn is_constant(&self) -> bool {
        self.powers.is_empty()
    }

    /// Evaluates the monomial at `x` (indexed by variable id).
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut v = self.coeff;
        for &(var, exp) in &self.powers {
            let xv = x[var.index()];
            // Exponent 1 dominates in path monomials; avoid powf for it.
            v *= if exp == 1.0 { xv } else { xv.powf(exp) };
        }
        v
    }

    /// Accumulates `∂m/∂x_j` into `grad[j]` for every variable `j` of the
    /// monomial. `value_at_x` must be `self.eval(x)`.
    ///
    /// Uses the identity `∂m/∂x_j = e_j · m(x) / x_j` when `x_j != 0`, with
    /// a direct-product fallback at zero.
    pub fn accumulate_grad(&self, x: &[f64], value_at_x: f64, grad: &mut [f64]) {
        self.accumulate_grad_scaled(x, value_at_x, 1.0, grad);
    }

    /// Like [`Self::accumulate_grad`] but adds `scale · ∂m/∂x_j` — used by
    /// penalty methods that need `ρ·max(0,g)·∇g` without a scratch buffer.
    pub fn accumulate_grad_scaled(&self, x: &[f64], value_at_x: f64, scale: f64, grad: &mut [f64]) {
        for &(var, exp) in &self.powers {
            let xv = x[var.index()];
            let d = if xv != 0.0 {
                exp * value_at_x / xv
            } else {
                // x_j = 0: recompute the partial product without x_j.
                let mut v = self.coeff * exp;
                if exp != 1.0 {
                    v *= xv.powf(exp - 1.0); // 0 unless exp == 1
                }
                for &(other, oexp) in &self.powers {
                    if other != var {
                        let ov = x[other.index()];
                        v *= if oexp == 1.0 { ov } else { ov.powf(oexp) };
                    }
                }
                v
            };
            grad[var.index()] += scale * d;
        }
    }

    /// Multiplies two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial::new(
            self.coeff * other.coeff,
            self.powers
                .iter()
                .chain(other.powers.iter())
                .map(|&(v, e)| (v, e)),
        )
    }

    /// The monomial with negated coefficient.
    pub fn neg(&self) -> Monomial {
        Monomial {
            coeff: -self.coeff,
            powers: self.powers.clone(),
        }
    }

    /// True when both monomials share the same variable/exponent structure
    /// (they can be merged by summing coefficients).
    pub fn like(&self, other: &Monomial) -> bool {
        self.powers == other.powers
    }

    /// All variables mentioned by the monomial.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.powers.iter().map(|&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_merges_duplicate_vars() {
        let m = Monomial::new(2.0, [(VarId(1), 1.0), (VarId(0), 2.0), (VarId(1), 1.0)]);
        assert_eq!(m.powers, vec![(VarId(0), 2.0), (VarId(1), 2.0)]);
        assert_eq!(m.degree(), 4.0);
    }

    #[test]
    fn constructor_drops_zero_exponents() {
        let m = Monomial::new(1.0, [(VarId(0), 1.0), (VarId(0), -1.0)]);
        assert!(m.is_constant());
    }

    #[test]
    fn from_path_counts_repeats() {
        let m = Monomial::from_path(0.5, [VarId(2), VarId(1), VarId(2)]);
        assert_eq!(m.powers, vec![(VarId(1), 1.0), (VarId(2), 2.0)]);
        // 0.5 * x1 * x2^2 at x = [_, 3, 2] -> 0.5 * 3 * 4 = 6
        assert!((m.eval(&[0.0, 3.0, 2.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn eval_handles_fractional_exponents() {
        let m = Monomial::new(2.0, [(VarId(0), 0.5)]);
        assert!((m.eval(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_hand_computation() {
        // m = 3 x0^2 x1 ; dm/dx0 = 6 x0 x1 ; dm/dx1 = 3 x0^2
        let m = Monomial::new(3.0, [(VarId(0), 2.0), (VarId(1), 1.0)]);
        let x = [2.0, 5.0];
        let v = m.eval(&x);
        assert!((v - 60.0).abs() < 1e-12);
        let mut g = [0.0, 0.0];
        m.accumulate_grad(&x, v, &mut g);
        assert!((g[0] - 60.0).abs() < 1e-9);
        assert!((g[1] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn grad_at_zero_variable() {
        // m = x0 * x1 at x0 = 0: dm/dx0 = x1, dm/dx1 = 0.
        let m = Monomial::from_path(1.0, [VarId(0), VarId(1)]);
        let x = [0.0, 7.0];
        let v = m.eval(&x);
        assert_eq!(v, 0.0);
        let mut g = [0.0, 0.0];
        m.accumulate_grad(&x, v, &mut g);
        assert!((g[0] - 7.0).abs() < 1e-12);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn grad_of_square_at_zero() {
        // m = x0^2 at x0 = 0: dm/dx0 = 0.
        let m = Monomial::new(1.0, [(VarId(0), 2.0)]);
        let mut g = [0.0];
        m.accumulate_grad(&[0.0], 0.0, &mut g);
        assert_eq!(g[0], 0.0);
    }

    #[test]
    fn mul_combines_exponents() {
        let a = Monomial::new(2.0, [(VarId(0), 1.0)]);
        let b = Monomial::new(3.0, [(VarId(0), 1.0), (VarId(1), 1.0)]);
        let c = a.mul(&b);
        assert_eq!(c.coeff, 6.0);
        assert_eq!(c.powers, vec![(VarId(0), 2.0), (VarId(1), 1.0)]);
    }

    #[test]
    fn like_terms_share_structure() {
        let a = Monomial::new(2.0, [(VarId(0), 1.0)]);
        let b = Monomial::new(-5.0, [(VarId(0), 1.0)]);
        let c = Monomial::new(2.0, [(VarId(0), 2.0)]);
        assert!(a.like(&b));
        assert!(!a.like(&c));
    }
}
