//! Property-based tests for the SGP machinery: analytic gradients agree
//! with finite differences, simplification preserves values, and solvers
//! never leave the box or increase constraint violations beyond the
//! initial point on feasible-at-start problems.

use proptest::prelude::*;
use sgp::fd::{fd_grad, max_abs_diff};
use sgp::{
    AdamOptimizer, CompositeObjective, Monomial, ObjectiveTerm, PenaltySolver, SgpProblem,
    Signomial, SolveOptions, Solver, VarId, VarSpace,
};

const NVARS: usize = 4;

/// Random monomial over up to NVARS variables with exponents in [-2, 3].
fn arb_monomial() -> impl Strategy<Value = Monomial> {
    (
        -3.0f64..3.0,
        proptest::collection::vec((0u32..NVARS as u32, -2.0f64..3.0), 0..4),
    )
        .prop_map(|(c, factors)| Monomial::new(c, factors.into_iter().map(|(v, e)| (VarId(v), e))))
}

fn arb_signomial() -> impl Strategy<Value = Signomial> {
    proptest::collection::vec(arb_monomial(), 1..6).prop_map(Signomial::from_terms)
}

/// Points strictly inside (0.2, 1.8) so negative exponents stay finite and
/// finite differences are stable.
fn arb_point() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.2f64..1.8, NVARS)
}

proptest! {
    /// Analytic signomial gradients match central finite differences.
    #[test]
    fn signomial_grad_matches_fd(f in arb_signomial(), x in arb_point()) {
        let g = f.grad(&x, NVARS);
        let fd = fd_grad(|x| f.eval(x), &x, 1e-6);
        // Scale tolerance with the gradient magnitude.
        let scale = 1.0 + g.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!(
            max_abs_diff(&g, &fd) <= 1e-4 * scale,
            "grad {:?} vs fd {:?}", g, fd
        );
    }

    /// Simplification never changes the value of the expression.
    #[test]
    fn simplify_preserves_value(f in arb_signomial(), x in arb_point()) {
        let s = f.simplified();
        let a = f.eval(&x);
        let b = s.eval(&x);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// Simplification is idempotent and never grows the term count.
    #[test]
    fn simplify_is_idempotent(f in arb_signomial()) {
        let s1 = f.simplified();
        let s2 = s1.simplified();
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.term_count() <= f.term_count());
    }

    /// Composite objectives (proximal + sigmoid penalties) have exact
    /// gradients too.
    #[test]
    fn composite_grad_matches_fd(
        inner in arb_signomial(),
        x in arb_point(),
        w in 1.0f64..40.0,
        lam in 0.01f64..2.0,
    ) {
        let mut obj = CompositeObjective::new();
        obj.push(ObjectiveTerm::SigmoidPenalty { weight: lam, steepness: w, inner });
        obj.push(ObjectiveTerm::QuadraticProximal {
            weight: lam,
            anchors: (0..NVARS).map(|i| (VarId(i as u32), 0.5)).collect(),
        });
        let g = obj.grad(&x, NVARS);
        let fd = fd_grad(|x| obj.eval(x), &x, 1e-6);
        let scale = 1.0 + g.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!(max_abs_diff(&g, &fd) <= 1e-3 * scale, "grad {:?} vs fd {:?}", g, fd);
    }

    /// The penalty solver always returns a point inside the box, and on a
    /// problem that is feasible at the start it stays feasible.
    #[test]
    fn solver_stays_in_box(
        anchors in proptest::collection::vec(0.1f64..0.9, NVARS),
        cap in 0.5f64..3.5,
    ) {
        // minimize sum (x_i - anchor_i)^2 s.t. sum x_i <= cap, x in [0.05, 1].
        let mut vars = VarSpace::new();
        for (i, _) in anchors.iter().enumerate() {
            vars.add(format!("x{i}"), 0.1, 0.05, 1.0);
        }
        let mut obj = CompositeObjective::new();
        obj.push(ObjectiveTerm::QuadraticProximal {
            weight: 1.0,
            anchors: anchors.iter().enumerate().map(|(i, &a)| (VarId(i as u32), a)).collect(),
        });
        let mut p = SgpProblem::new(vars, obj);
        let sum_expr = (0..NVARS)
            .map(|i| Signomial::linear(VarId(i as u32), 1.0))
            .fold(Signomial::zero(), |acc, s| acc + s)
            - Signomial::constant(cap);
        p.add_constraint_leq_zero(sum_expr, "sum<=cap");
        // Start point sums to 0.4 <= cap, so the problem starts feasible.
        let r = PenaltySolver::<AdamOptimizer>::default()
            .solve(&p, &SolveOptions::default())
            .unwrap();
        prop_assert!(p.vars.contains(&r.x, 1e-12));
        prop_assert!(r.max_violation <= 1e-2, "violation {}", r.max_violation);
        // The objective at the solution is no worse than at the start.
        let start_obj = p.objective.eval(&p.vars.initial_point());
        prop_assert!(r.objective <= start_obj + 1e-9);
    }
}
