//! Global fault-plan injection tests.
//!
//! Every test here installs a plan via [`sgp::fault::inject`], whose
//! guard also serializes the tests — the global call counter would
//! otherwise be shared between concurrently running solves. Fault tests
//! of downstream crates (kg-votes, kg-cluster, core) live in their own
//! test binaries, i.e. their own processes.

use sgp::fault::{inject, FaultAction, FaultPlan};
use sgp::{
    ConvergenceReason, PenaltySolver, SgpProblem, Signomial, SolveError, SolveOptions, Solver,
    VarSpace,
};
use std::time::Duration;

fn one_var_problem() -> SgpProblem {
    // minimize (x - 0.4)^2 on [0.01, 1].
    let mut vars = VarSpace::new();
    let x = vars.add("x", 0.9, 0.01, 1.0);
    let obj =
        Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -0.8) + Signomial::constant(0.16);
    SgpProblem::new(vars, obj.into())
}

#[test]
fn empty_plan_injects_nothing() {
    let _guard = inject(FaultPlan::new());
    let r = PenaltySolver::new()
        .solve(&one_var_problem(), &SolveOptions::default())
        .unwrap();
    assert!(r.x[0].is_finite());
}

#[test]
fn error_injection_hits_the_indexed_call() {
    let guard = inject(FaultPlan::new().at(1, FaultAction::Error));
    let solver = PenaltySolver::new();
    let p = one_var_problem();
    assert!(solver.solve(&p, &SolveOptions::default()).is_ok());
    assert_eq!(
        solver.solve(&p, &SolveOptions::default()).unwrap_err(),
        SolveError::Injected
    );
    assert!(solver.solve(&p, &SolveOptions::default()).is_ok());
    assert_eq!(guard.calls(), 3);
}

#[test]
fn non_finite_injection_corrupts_the_solution() {
    let _guard = inject(FaultPlan::new().at(0, FaultAction::NonFiniteSolution));
    let r = PenaltySolver::new()
        .solve(&one_var_problem(), &SolveOptions::default())
        .unwrap();
    assert!(r.x[0].is_nan());
    assert!(r.objective.is_nan());
}

#[test]
fn plan_clears_when_guard_drops() {
    {
        let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
        assert!(PenaltySolver::new()
            .solve(&one_var_problem(), &SolveOptions::default())
            .is_err());
    }
    assert!(PenaltySolver::new()
        .solve(&one_var_problem(), &SolveOptions::default())
        .is_ok());
}

#[test]
#[should_panic(expected = "injected solver panic")]
fn panic_injection_panics_inside_the_solve() {
    let _guard = inject(FaultPlan::new().at(0, FaultAction::Panic));
    let _ = PenaltySolver::new().solve(&one_var_problem(), &SolveOptions::default());
}

#[test]
fn delay_injection_exhausts_the_time_budget() {
    // The injected sleep burns the whole budget before the solve starts;
    // the deadline-aware inner loop must then return almost immediately
    // with the budget as the stop reason.
    let _guard = inject(FaultPlan::new().at(0, FaultAction::Delay(Duration::from_millis(30))));
    let mut vars = VarSpace::new();
    let x = vars.add("x", 0.5, 0.01, 1.0);
    let mut p = SgpProblem::new(vars, Signomial::zero().into());
    p.add_constraint_leq_zero(Signomial::constant(2.0) - Signomial::linear(x, 1.0), "x>=2");
    let opts = SolveOptions {
        max_inner_iters: 10_000_000,
        step_tol: 0.0,
        time_budget: Some(Duration::from_millis(10)),
        ..Default::default()
    };
    let r = PenaltySolver::new().solve(&p, &opts).unwrap();
    assert_eq!(r.reason, ConvergenceReason::TimeBudget);
    assert!(r.inner_iterations <= 1, "{}", r.inner_iterations);
    assert!(r.x.iter().all(|v| v.is_finite()));
}

#[test]
fn skew_injection_shifts_the_solution_with_honest_bookkeeping() {
    // Call 0 is skewed, call 1 runs clean. The skewed result must be the
    // clean optimum shifted by frac * (hi - lo), with the objective
    // recomputed at the shifted point — internally consistent, finite,
    // and therefore invisible to single-solver sanity checks.
    let _guard = inject(FaultPlan::new().at(0, FaultAction::SkewSolution(0.3)));
    let p = one_var_problem();
    let skewed = PenaltySolver::new()
        .solve(&p, &SolveOptions::default())
        .unwrap();
    let clean = PenaltySolver::new()
        .solve(&p, &SolveOptions::default())
        .unwrap();
    let shift = 0.3 * (1.0 - 0.01);
    assert!(
        (skewed.x[0] - (clean.x[0] + shift)).abs() < 1e-6,
        "skewed {} vs clean {} + {shift}",
        skewed.x[0],
        clean.x[0]
    );
    assert!(skewed.x.iter().all(|v| v.is_finite()));
    let expected_obj = (skewed.x[0] - 0.4).powi(2);
    assert!(
        (skewed.objective - expected_obj).abs() < 1e-9,
        "objective must be recomputed at the skewed point: {} vs {expected_obj}",
        skewed.objective
    );
    assert!(skewed.objective > clean.objective);
}

#[test]
fn skew_injection_reports_violations_honestly() {
    // minimize (x - 0.4)^2 s.t. x <= 0.5: the optimum 0.4 is feasible,
    // the skewed point is not — and the corrupted result must say so.
    let mut vars = VarSpace::new();
    let x = vars.add("x", 0.45, 0.01, 1.0);
    let obj =
        Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -0.8) + Signomial::constant(0.16);
    let mut p = SgpProblem::new(vars, obj.into());
    p.add_constraint_leq_zero(
        Signomial::linear(x, 1.0) - Signomial::constant(0.5),
        "x<=0.5",
    );
    let _guard = inject(FaultPlan::new().at(0, FaultAction::SkewSolution(0.5)));
    let r = PenaltySolver::new()
        .solve(&p, &SolveOptions::default())
        .unwrap();
    assert!(!r.feasible, "skewed past the constraint: {:?}", r.x);
    assert!(
        r.max_violation > 0.3,
        "violation must be recomputed: {}",
        r.max_violation
    );
    assert!(r.violated_constraints > 0);
}

#[test]
fn for_inner_faults_target_only_the_named_inner() {
    use sgp::LbfgsOptimizer;
    // The rule is call-independent but filtered by inner label: every
    // lbfgs solve is skewed, every adam solve runs clean — regardless of
    // order or how many solves happen.
    let _guard = inject(FaultPlan::new().for_inner("lbfgs", FaultAction::SkewSolution(0.4)));
    let p = one_var_problem();
    let adam = PenaltySolver::new()
        .solve(&p, &SolveOptions::default())
        .unwrap();
    let lbfgs = PenaltySolver::with_inner(LbfgsOptimizer::default())
        .solve(&p, &SolveOptions::default())
        .unwrap();
    let adam2 = PenaltySolver::new()
        .solve(&p, &SolveOptions::default())
        .unwrap();
    assert_eq!(adam.solver, "penalty+adam");
    assert_eq!(lbfgs.solver, "penalty+lbfgs");
    assert!((adam.x[0] - 0.4).abs() < 1e-2, "adam clean: {}", adam.x[0]);
    assert!(
        (adam2.x[0] - 0.4).abs() < 1e-2,
        "adam clean: {}",
        adam2.x[0]
    );
    assert!(
        (lbfgs.x[0] - 0.4).abs() > 0.3,
        "lbfgs skewed: {}",
        lbfgs.x[0]
    );
}
