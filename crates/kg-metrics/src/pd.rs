//! The percentage difference `PD(L_i, L_j)` of Eq. 22, used by the
//! Section VII-E path-length study (Fig. 7a): how much the sum of top-k
//! similarity scores grows when the pruning bound is raised from `L_i`
//! to `L_j`.

/// `PD(L_i, L_j) = (Sum_{L_j} − Sum_{L_i}) / Sum_{L_i}` where each
/// argument is the sum of top-k similarity scores computed under the
/// corresponding bound. Returns 0 when the baseline sum is 0 (an empty
/// or disconnected query), avoiding a meaningless division.
pub fn percentage_difference(sum_li: f64, sum_lj: f64) -> f64 {
    assert!(
        sum_li.is_finite() && sum_lj.is_finite(),
        "similarity sums must be finite"
    );
    if sum_li == 0.0 {
        0.0
    } else {
        (sum_lj - sum_li) / sum_li
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_growth() {
        assert!((percentage_difference(1.0, 1.01) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_defined() {
        assert_eq!(percentage_difference(0.0, 0.5), 0.0);
    }

    #[test]
    fn no_growth_is_zero() {
        assert_eq!(percentage_difference(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_panics() {
        percentage_difference(f64::NAN, 1.0);
    }
}
