//! Ranking-quality metrics: Ω / Ω_avg (Definition 3 / Eq. 21), R_avg,
//! P_avg (Table IV), H@k (Table V), MRR and MAP (Fig. 5).
//!
//! Ranks are 1-based throughout, matching the paper's convention.

use serde::{Deserialize, Serialize};

/// A best answer's rank before and after graph optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankPair {
    /// `rank_t`: position under the original graph.
    pub before: usize,
    /// `rank'_t`: position under the optimized graph.
    pub after: usize,
}

/// `Ω = Σ_t (rank_t − rank'_t)` (Eq. 5).
pub fn omega(pairs: &[RankPair]) -> i64 {
    pairs.iter().map(|p| p.before as i64 - p.after as i64).sum()
}

/// `Ω_avg = Ω / |T|` (Eq. 21). Zero for an empty slice.
pub fn omega_avg(pairs: &[RankPair]) -> f64 {
    if pairs.is_empty() {
        0.0
    } else {
        omega(pairs) as f64 / pairs.len() as f64
    }
}

/// Average rank of a list of 1-based ranks (`R_avg` of Table IV).
pub fn mean_rank(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        0.0
    } else {
        ranks.iter().sum::<usize>() as f64 / ranks.len() as f64
    }
}

/// `P_avg`: average percentage-wise ranking improvement,
/// `mean((before − after) / before)` (Table IV).
pub fn pavg(pairs: &[RankPair]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|p| (p.before as f64 - p.after as f64) / p.before as f64)
        .sum::<f64>()
        / pairs.len() as f64
}

/// `H@k`: fraction of queries whose best answer ranks no lower than `k`
/// (Table V).
pub fn hits_at_k(ranks: &[usize], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|&&r| r <= k).count() as f64 / ranks.len() as f64
}

/// Mean reciprocal rank of the best answers.
pub fn mrr(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / ranks.len() as f64
}

/// Mean average precision when a query may have several relevant answers:
/// `relevant_ranks[q]` holds the (sorted ascending) 1-based ranks of
/// query `q`'s relevant answers in its result list. With a single
/// relevant answer per query this reduces to [`mrr`].
pub fn map_multi(relevant_ranks: &[Vec<usize>]) -> f64 {
    if relevant_ranks.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ranks in relevant_ranks {
        if ranks.is_empty() {
            continue; // query contributes AP = 0
        }
        debug_assert!(
            ranks.windows(2).all(|w| w[0] < w[1]),
            "ranks must be sorted"
        );
        let ap: f64 = ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i + 1) as f64 / r as f64)
            .sum::<f64>()
            / ranks.len() as f64;
        total += ap;
    }
    total / relevant_ranks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(p: &[(usize, usize)]) -> Vec<RankPair> {
        p.iter()
            .map(|&(before, after)| RankPair { before, after })
            .collect()
    }

    #[test]
    fn omega_matches_definition() {
        let p = pairs(&[(3, 1), (2, 2), (1, 2)]);
        assert_eq!(omega(&p), 1); // (3-1) + (2-2) + (1-2)
        assert!((omega_avg(&p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rank_basic() {
        assert!((mean_rank(&[1, 2, 3, 6]) - 3.0).abs() < 1e-12);
        assert_eq!(mean_rank(&[]), 0.0);
    }

    #[test]
    fn pavg_matches_paper_semantics() {
        // rank 4 -> 2 is a 50% improvement; rank 2 -> 3 is -50%.
        let p = pairs(&[(4, 2), (2, 3)]);
        assert!((pavg(&p) - (0.5 - 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn hits_at_k_counts_thresholds() {
        let ranks = [1, 3, 5, 11];
        assert!((hits_at_k(&ranks, 1) - 0.25).abs() < 1e-12);
        assert!((hits_at_k(&ranks, 3) - 0.5).abs() < 1e-12);
        assert!((hits_at_k(&ranks, 5) - 0.75).abs() < 1e-12);
        assert!((hits_at_k(&ranks, 10) - 0.75).abs() < 1e-12);
        assert_eq!(hits_at_k(&[], 5), 0.0);
    }

    #[test]
    fn mrr_basic() {
        assert!((mrr(&[1, 2, 4]) - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
        assert_eq!(mrr(&[]), 0.0);
    }

    #[test]
    fn map_reduces_to_mrr_for_single_relevant() {
        let ranks = [1usize, 2, 4];
        let lists: Vec<Vec<usize>> = ranks.iter().map(|&r| vec![r]).collect();
        assert!((map_multi(&lists) - mrr(&ranks)).abs() < 1e-12);
    }

    #[test]
    fn map_multi_relevant_answers() {
        // One query, relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
        let got = map_multi(&[vec![1, 3]]);
        assert!((got - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn map_counts_queries_with_no_relevant_as_zero() {
        let got = map_multi(&[vec![1], vec![]]);
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_metrics() {
        let ranks = [1usize; 10];
        assert_eq!(hits_at_k(&ranks, 1), 1.0);
        assert_eq!(mrr(&ranks), 1.0);
        assert_eq!(mean_rank(&ranks), 1.0);
    }
}

/// Normalized discounted cumulative gain at cutoff `k` for binary
/// relevance with a single relevant answer per query: each query
/// contributes `1 / log2(rank + 1)` when its best answer ranks within
/// `k`, normalized by the ideal (rank 1) gain of 1.
pub fn ndcg_at_k(ranks: &[usize], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks
        .iter()
        .map(|&r| {
            if r <= k {
                1.0 / ((r as f64) + 1.0).log2()
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / ranks.len() as f64
}

#[cfg(test)]
mod ndcg_tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        assert!((ndcg_at_k(&[1, 1, 1], 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_three_discounts_by_log() {
        // gain = 1/log2(4) = 0.5
        assert!((ndcg_at_k(&[3], 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beyond_cutoff_scores_zero() {
        assert_eq!(ndcg_at_k(&[11], 10), 0.0);
        assert_eq!(ndcg_at_k(&[], 10), 0.0);
    }

    #[test]
    fn monotone_in_rank() {
        let a = ndcg_at_k(&[1], 10);
        let b = ndcg_at_k(&[2], 10);
        let c = ndcg_at_k(&[5], 10);
        assert!(a > b && b > c);
    }
}
