//! Evaluation metrics used throughout Section VII of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pd;
pub mod ranking;

pub use pd::percentage_difference;
pub use ranking::{
    hits_at_k, map_multi, mean_rank, mrr, ndcg_at_k, omega, omega_avg, pavg, RankPair,
};
