//! Framework-level fault tolerance: injected solver faults must surface
//! through [`Framework::optimize`] as report classifications — degraded,
//! failed, or timed-out solves — never as a panic, and the revert
//! snapshot must stay usable throughout.
//!
//! Every test installs a global fault plan via [`sgp::fault::inject`]
//! (or an empty one), whose guard also serializes the tests: the plan's
//! call counter is process-wide. This binary is the only core test
//! process that injects.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_votes::{SolveOutcome, Vote};
use sgp::fault::{inject, FaultAction, FaultPlan};
use votekg::{Framework, FrameworkConfig, Strategy};

fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let h1 = b.add_node("h1", NodeKind::Entity);
    let h2 = b.add_node("h2", NodeKind::Entity);
    let a1 = b.add_node("a1", NodeKind::Answer);
    let a2 = b.add_node("a2", NodeKind::Answer);
    b.add_edge(q, h1, 0.5).unwrap();
    b.add_edge(q, h2, 0.5).unwrap();
    b.add_edge(h1, a1, 0.7).unwrap();
    b.add_edge(h2, a2, 0.3).unwrap();
    (b.build(), q, a1, a2)
}

#[test]
fn transient_solver_error_degrades_but_still_satisfies() {
    let _guard = inject(FaultPlan::new().at(0, FaultAction::Error));
    let (g, q, a1, a2) = scene();
    let mut fw = Framework::new(g, FrameworkConfig::default());
    fw.record_vote(Vote::new(q, vec![a1, a2], a2));
    let report = fw.optimize(Strategy::MultiVote);
    assert_eq!(report.degraded_solves(), 1, "{report:?}");
    assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
    // The fallback chain recovered, so the round is revertible as usual.
    assert!(fw.revert_last_optimization());
    assert_eq!(fw.rank(q, &[a1, a2], 2)[0].node, a1);
}

#[test]
fn persistent_solver_failure_quarantines_and_keeps_the_graph() {
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
    let (g, q, a1, a2) = scene();
    let snap = WeightSnapshot::capture(&g);
    let mut fw = Framework::new(g, FrameworkConfig::default());
    fw.record_vote(Vote::new(q, vec![a1, a2], a2));
    let report = fw.optimize(Strategy::MultiVote);
    assert_eq!(report.failed_solves(), 1, "{report:?}");
    assert_eq!(report.quarantined_votes, 1, "{report:?}");
    assert!(matches!(report.solves[0], SolveOutcome::Failed { .. }));
    assert_eq!(
        snap.squared_distance(fw.graph()),
        0.0,
        "graph must be untouched"
    );
    // Nothing was applied, but the revert snapshot is still consistent.
    assert!(fw.revert_last_optimization());
    assert_eq!(snap.squared_distance(fw.graph()), 0.0);
}

#[test]
fn set_solve_timeout_reaches_every_pipeline() {
    let _guard = inject(FaultPlan::new());
    for strategy in [
        Strategy::SingleVote,
        Strategy::MultiVote,
        Strategy::SplitMerge,
    ] {
        let (g, q, a1, a2) = scene();
        let mut config = FrameworkConfig::default();
        config.set_solve_timeout(Some(std::time::Duration::ZERO));
        let mut fw = Framework::new(g, config);
        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        let report = fw.optimize(strategy);
        assert_eq!(
            report.timed_out_solves(),
            1,
            "{strategy:?} ignored the budget: {report:?}"
        );
        for e in fw.graph().edges() {
            assert!(e.weight.is_finite());
        }
    }
}
