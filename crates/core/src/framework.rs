//! The interactive optimization framework (Fig. 1 of the paper): rank →
//! collect votes → optimize → rank better next time.

use crate::durable::{Durability, DurableOptions, RecoveryReport};
use kg_cluster::{solve_split_merge, SplitMergeOptions, SplitMergeReport};
use kg_graph::{GraphSnapshot, KnowledgeGraph, NodeId, SharedGraph, WeightSnapshot};
use kg_serve::{ServeConfig, ServeHandle, ServeStats, SnapshotServer};
use kg_sim::topk::RankedAnswer;
use kg_sim::{BatchQuery, SimilarityConfig};
use kg_votes::wal::WalError;
use kg_votes::{
    solve_multi_votes, solve_single_votes, MultiVoteOptions, OptimizationReport, SingleVoteOptions,
    Vote, VoteKind, VoteSet,
};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Which optimization pipeline [`Framework::optimize`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Algorithm 1: greedy, one SGP program per negative vote.
    SingleVote,
    /// Section V: one batch SGP over all votes, conflicts handled by the
    /// sigmoid violation counter.
    MultiVote,
    /// Section VI: affinity-propagation split, per-cluster multi-vote
    /// solves, voting merge.
    SplitMerge,
}

/// Configuration of a [`Framework`].
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct FrameworkConfig {
    /// Single-vote pipeline options.
    pub single: SingleVoteOptions,
    /// Multi-vote pipeline options.
    pub multi: MultiVoteOptions,
    /// Split-and-merge pipeline options.
    pub split_merge: SplitMergeOptions,
    /// Collapse repeated votes on the same question into majority
    /// verdicts before optimizing (see [`kg_votes::aggregate_votes`]).
    pub aggregate: bool,
}

impl Strategy {
    /// Stable lowercase name, used as the telemetry label.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::SingleVote => "single",
            Strategy::MultiVote => "multi",
            Strategy::SplitMerge => "split_merge",
        }
    }
}

impl FrameworkConfig {
    /// The similarity parameters used for ranking (taken from the
    /// multi-vote encoding, which all pipelines share by default).
    pub fn sim(&self) -> SimilarityConfig {
        self.multi.encode.sim
    }

    /// Sets one wall-clock budget on every pipeline's solves (`None`
    /// removes it). A solve hitting the budget stops early and applies
    /// its best iterate so far, reported as
    /// [`kg_votes::SolveOutcome::TimedOut`].
    pub fn set_solve_timeout(&mut self, budget: Option<std::time::Duration>) {
        self.single.solve.time_budget = budget;
        self.multi.solve.time_budget = budget;
        self.split_merge.multi.solve.time_budget = budget;
    }
}

/// The interactive framework: owns the (augmented) knowledge graph and a
/// buffer of pending votes.
///
/// # Concurrency model
///
/// The framework is the single *writer*: optimization mutates its private
/// [`KnowledgeGraph`] and publishes the finished state as an immutable,
/// epoch-stamped [`GraphSnapshot`] through a [`SharedGraph`]. Reads —
/// [`Self::rank`], [`Self::rank_batch`], and every [`ServeHandle`]
/// obtained from [`Self::handle`] — evaluate against the latest published
/// snapshot via a lock-free [`SnapshotServer`] cache, so any number of
/// reader threads serve concurrently while an optimization round runs,
/// without a lock anywhere on the read path.
#[derive(Debug)]
pub struct Framework {
    graph: KnowledgeGraph,
    config: FrameworkConfig,
    pending: VoteSet,
    /// Snapshot of the weights before the most recent optimize call.
    last_snapshot: Option<WeightSnapshot>,
    /// Publication point between this writer and concurrent readers.
    shared: Arc<SharedGraph>,
    /// Sharded lock-free ranking cache over published snapshots.
    server: Arc<SnapshotServer>,
    /// Vote WAL + snapshot checkpointing, when opened via
    /// [`Self::open_durable`]. `None` keeps every entry point infallible,
    /// exactly as before durability existed.
    durability: Option<Durability>,
}

impl Clone for Framework {
    fn clone(&self) -> Self {
        // The clone gets its own publication point and an empty cache:
        // sharing either would let one clone's optimization rounds
        // invalidate (or serve!) the other's rankings.
        Framework {
            graph: self.graph.clone(),
            config: self.config.clone(),
            pending: self.pending.clone(),
            last_snapshot: self.last_snapshot.clone(),
            shared: Arc::new(SharedGraph::new(self.graph.clone())),
            server: Arc::new(SnapshotServer::new(*self.server.config())),
            // Two frameworks appending to one WAL would interleave their
            // rounds into a single unreplayable history: the clone is
            // in-memory only until it opens its own durable directory.
            durability: None,
        }
    }
}

impl Framework {
    /// Wraps an augmented knowledge graph.
    pub fn new(graph: KnowledgeGraph, config: FrameworkConfig) -> Self {
        let serve_cfg = ServeConfig {
            sim: config.sim(),
            ..Default::default()
        };
        let shared = Arc::new(SharedGraph::new(graph.clone()));
        Framework {
            graph,
            config,
            pending: VoteSet::new(),
            last_snapshot: None,
            shared,
            server: Arc::new(SnapshotServer::new(serve_cfg)),
            durability: None,
        }
    }

    /// Opens a crash-recoverable framework over the durable directory
    /// `dir`: loads the newest valid graph snapshot (falling back to the
    /// supplied `graph` when none exists), replays the WAL tail onto it
    /// — bit-identical to the pre-crash weights — restores the pending
    /// vote queue, and arms WAL logging for every subsequent
    /// `record_vote` / `optimize` call. An empty or missing directory
    /// simply starts a fresh durable history.
    ///
    /// `graph` must have the topology the directory was recorded against
    /// (weights are irrelevant — they are recovered); a different graph
    /// is rejected with [`WalError::GraphMismatch`].
    pub fn open_durable(
        dir: &Path,
        mut graph: KnowledgeGraph,
        config: FrameworkConfig,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let (durability, report, pending) = Durability::open(dir, &mut graph, opts)?;
        let mut fw = Framework::new(graph, config);
        fw.pending = pending;
        fw.durability = Some(durability);
        Ok((fw, report))
    }

    /// True when this framework writes a WAL (opened via
    /// [`Self::open_durable`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable directory, when [`Self::is_durable`].
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir())
    }

    /// Forces a checkpoint now: snapshot the current graph to disk,
    /// compact the WAL down to the pending votes, prune old snapshots.
    /// Returns the snapshotted version, or `None` without durability.
    pub fn checkpoint(&mut self) -> Result<Option<u64>, WalError> {
        match self.durability.as_mut() {
            Some(d) => {
                d.checkpoint(&self.graph, &self.pending)?;
                Ok(Some(self.graph.version()))
            }
            None => Ok(None),
        }
    }

    /// Flushes buffered WAL vote appends to disk without committing a
    /// round. No-op without durability.
    pub fn sync_wal(&mut self) -> Result<(), WalError> {
        match self.durability.as_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Commits the current round to the WAL when durability is armed.
    fn commit_if_durable(&mut self, votes_consumed: usize) -> Result<(), WalError> {
        match self.durability.as_mut() {
            Some(d) => d.commit(&self.graph, &self.pending, votes_consumed),
            None => Ok(()),
        }
    }

    /// Renders a WAL failure for the infallible entry points. Only
    /// reachable when durability is armed — without it the durable hooks
    /// are no-ops — so the panic message points at the `_durable` API.
    fn wal_panic(e: WalError) -> ! {
        panic!(
            "vote WAL write failed: {e}; call the *_durable variant of this method to \
             handle durability errors instead of panicking"
        )
    }

    /// Sets the worker-thread count the serving cache uses for batched
    /// re-ranking (1 = inline). Results are identical for any value.
    /// Rebuilds the cache, so call it before handing out [`Self::handle`]s.
    pub fn with_serve_workers(mut self, workers: usize) -> Self {
        let cfg = ServeConfig {
            workers,
            ..*self.server.config()
        };
        self.server = Arc::new(SnapshotServer::new(cfg));
        self
    }

    /// Sets the shard count of the serving cache (more shards, less
    /// contention between concurrent miss-fills; results are identical
    /// for any value). Rebuilds the cache, so call it before handing out
    /// [`Self::handle`]s.
    pub fn with_serve_shards(mut self, shards: usize) -> Self {
        let cfg = ServeConfig {
            shards,
            ..*self.server.config()
        };
        self.server = Arc::new(SnapshotServer::new(cfg));
        self
    }

    /// Configures delta repair of the serving cache: after each
    /// optimization round, cached rankings the changed edges can reach
    /// are patched in place through [`kg_sim::delta_phi`] (bitwise
    /// identical to recomputing) instead of being evicted. Results are
    /// identical with repair on or off — only the re-ranking cost
    /// changes. Rebuilds the cache, so call it before handing out
    /// [`Self::handle`]s.
    pub fn with_delta_config(mut self, delta: kg_sim::DeltaConfig) -> Self {
        let cfg = ServeConfig {
            delta,
            ..*self.server.config()
        };
        self.server = Arc::new(SnapshotServer::new(cfg));
        self
    }

    /// Publishes the graph's current state if it is newer than the last
    /// published snapshot, and returns the up-to-date snapshot. Reads go
    /// through this, so single-threaded callers always observe their own
    /// [`Self::graph_mut`] edits, exactly as before snapshotting existed.
    fn published(&self) -> GraphSnapshot {
        let snap = self.shared.snapshot();
        if snap.epoch() == self.graph.version() {
            snap
        } else {
            self.shared.publish(&self.graph)
        }
    }

    /// Makes the graph's current state visible to every [`ServeHandle`]
    /// and returns the published snapshot. Optimization entry points call
    /// this at their consistency points; it only matters to call it
    /// manually after direct [`Self::graph_mut`] edits that concurrent
    /// readers should observe.
    pub fn publish(&self) -> GraphSnapshot {
        self.published()
    }

    /// A cheap, cloneable, `Send + Sync` reader handle over this
    /// framework's published snapshots and serving cache: hand one clone
    /// to each reader thread and they serve concurrently — lock-free —
    /// while the framework keeps optimizing.
    ///
    /// Handles observe state as of the last [`Self::publish`] (every
    /// optimization entry point publishes when it finishes a batch).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle::new(Arc::clone(&self.shared), Arc::clone(&self.server))
    }

    /// The current graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Mutable access to the graph (e.g. for external weight edits).
    pub fn graph_mut(&mut self) -> &mut KnowledgeGraph {
        &mut self.graph
    }

    /// The configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// Ranks `answers` for `query`, returning the top `k`.
    ///
    /// Served through the framework's [`SnapshotServer`]: repeated
    /// requests between weight changes hit the cache (no lock taken), and
    /// after an optimization round only the queries the changed edges can
    /// reach are recomputed. Output is always identical to an uncached
    /// [`kg_sim::rank_answers`] call on the current graph.
    pub fn rank(&self, query: NodeId, answers: &[NodeId], k: usize) -> Vec<RankedAnswer> {
        self.server.rank_at(&self.published(), query, answers, k)
    }

    /// Ranks a whole batch of requests through the serving cache, with
    /// misses evaluated in parallel over the configured serve workers.
    pub fn rank_batch(&self, requests: &[BatchQuery<'_>]) -> Vec<Vec<RankedAnswer>> {
        self.server.rank_batch_at(&self.published(), requests)
    }

    /// Cumulative cache counters of the serving layer.
    pub fn serve_stats(&self) -> ServeStats {
        self.server.stats()
    }

    /// Buffers a user vote; returns its kind.
    ///
    /// Panics when the framework is durable and the WAL append fails —
    /// use [`Self::record_vote_durable`] to handle that error.
    pub fn record_vote(&mut self, vote: Vote) -> VoteKind {
        match self.record_vote_durable(vote) {
            Ok(kind) => kind,
            Err(e) => Self::wal_panic(e),
        }
    }

    /// Buffers a user vote, appending it to the WAL first when durable.
    /// The append is buffered; it reaches disk at the next committed
    /// round or [`Self::sync_wal`] call.
    pub fn record_vote_durable(&mut self, vote: Vote) -> Result<VoteKind, WalError> {
        if let Some(d) = self.durability.as_mut() {
            d.append_vote(&vote)?;
        }
        let kind = vote.kind();
        self.pending.push(vote);
        Ok(kind)
    }

    /// Builds and buffers a vote from a ranked list the framework
    /// previously returned plus the user's chosen best answer.
    pub fn record_feedback(
        &mut self,
        query: NodeId,
        ranked: &[RankedAnswer],
        chosen: NodeId,
    ) -> VoteKind {
        let answers: Vec<NodeId> = ranked.iter().map(|r| r.node).collect();
        self.record_vote(Vote::new(query, answers, chosen))
    }

    /// Votes buffered since the last optimization.
    pub fn pending_votes(&self) -> &VoteSet {
        &self.pending
    }

    /// Runs the chosen pipeline over the pending votes (draining them)
    /// and returns the rank outcomes. With `config.aggregate` set,
    /// repeated votes on the same question are first collapsed into
    /// majority verdicts; outcomes then refer to the aggregated votes.
    ///
    /// Panics when the framework is durable and the round's WAL commit
    /// fails — use [`Self::optimize_durable`] to handle that error.
    pub fn optimize(&mut self, strategy: Strategy) -> OptimizationReport {
        match self.optimize_durable(strategy) {
            Ok(report) => report,
            Err(e) => Self::wal_panic(e),
        }
    }

    /// [`Self::optimize`] with the round's WAL commit (weight deltas +
    /// checksum, fsynced) surfaced as a `Result`. On a durable framework
    /// the round is recoverable once this returns `Ok`.
    pub fn optimize_durable(&mut self, strategy: Strategy) -> Result<OptimizationReport, WalError> {
        let raw_votes = self.pending.len();
        let mut votes = std::mem::take(&mut self.pending);
        if self.config.aggregate {
            votes = kg_votes::aggregate_votes(&votes).0;
        }
        let mut round = kg_telemetry::span!("votekg.framework.round", {
            strategy: strategy.as_str(),
            raw_votes: raw_votes,
            votes: votes.len(),
        });
        self.last_snapshot = Some(WeightSnapshot::capture(&self.graph));
        let report = match strategy {
            Strategy::SingleVote => {
                solve_single_votes(&mut self.graph, &votes, &self.config.single)
            }
            Strategy::MultiVote => solve_multi_votes(&mut self.graph, &votes, &self.config.multi),
            Strategy::SplitMerge => {
                solve_split_merge(&mut self.graph, &votes, &self.config.split_merge).report
            }
        };
        self.record_round(strategy, &mut round, &report);
        {
            let _phase = kg_telemetry::span!("votekg.framework.publish");
            self.published();
        }
        self.commit_if_durable(raw_votes)?;
        Ok(report)
    }

    /// Like [`Self::optimize`] with [`Strategy::SplitMerge`], but returns
    /// the full split-and-merge report (clusters, timings, conflicts).
    ///
    /// Panics when the framework is durable and the round's WAL commit
    /// fails.
    pub fn optimize_split_merge(&mut self) -> SplitMergeReport {
        let raw_votes = self.pending.len();
        let votes = std::mem::take(&mut self.pending);
        self.last_snapshot = Some(WeightSnapshot::capture(&self.graph));
        let report = solve_split_merge(&mut self.graph, &votes, &self.config.split_merge);
        self.published();
        if let Err(e) = self.commit_if_durable(raw_votes) {
            Self::wal_panic(e);
        }
        report
    }

    /// Incremental operation: optimizes the pending votes in arrival-order
    /// batches of at most `batch_size`, re-ranking between batches — the
    /// deployment mode where feedback trickles in continuously and waiting
    /// for a large batch is not acceptable. Returns one report per batch.
    ///
    /// Between batches the serving cache is refreshed *selectively*: the
    /// graph's [`kg_graph::WeightDelta`] since the batch started is fed to
    /// [`kg_sim::affected_queries`], and only the voted queries the
    /// changed edges can reach (within `L − 1` hops) are re-ranked —
    /// through [`Self::rank_batch`], so concurrent readers of the
    /// framework see warm, current rankings the whole time.
    ///
    /// Compared to one big [`Self::optimize`] call, smaller batches trade
    /// some conflict-resolution quality (conflicts spanning batches are
    /// resolved greedily, like the single-vote solution's order bias) for
    /// much smaller SGP programs.
    ///
    /// Panics when the framework is durable and a batch's WAL commit
    /// fails — use [`Self::optimize_incremental_durable`] to handle that
    /// error.
    pub fn optimize_incremental(
        &mut self,
        strategy: Strategy,
        batch_size: usize,
    ) -> Vec<OptimizationReport> {
        match self.optimize_incremental_durable(strategy, batch_size) {
            Ok(reports) => reports,
            Err(e) => Self::wal_panic(e),
        }
    }

    /// [`Self::optimize_incremental`] with WAL commits surfaced as a
    /// `Result`. On a durable framework each batch is committed (and
    /// fsynced) individually as soon as it publishes, so a crash between
    /// batches loses nothing: finished batches replay from the WAL,
    /// unprocessed votes are restored to the pending queue.
    pub fn optimize_incremental_durable(
        &mut self,
        strategy: Strategy,
        batch_size: usize,
    ) -> Result<Vec<OptimizationReport>, WalError> {
        assert!(batch_size > 0, "batch size must be positive");
        self.last_snapshot = Some(WeightSnapshot::capture(&self.graph));
        // Distinct voted questions, in arrival order: the re-rank universe.
        let mut questions: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for v in &self.pending.votes {
            if !questions.iter().any(|(q, _)| *q == v.query) {
                questions.push((v.query, v.answers.clone()));
            }
        }
        let sim = self.config.sim();
        let mut reports = Vec::new();
        // Batches drain the pending queue one chunk at a time (rather than
        // taking it wholesale up front) so `self.pending` always holds
        // exactly the not-yet-optimized votes: a WAL checkpoint between
        // batches then compacts to the correct remainder, and a crash
        // recovers it.
        while !self.pending.is_empty() {
            let take = batch_size.min(self.pending.len());
            let chunk: Vec<Vote> = self.pending.votes.drain(..take).collect();
            let version_before = self.graph.version();
            let batch = VoteSet::from_votes(chunk);
            let report = match strategy {
                Strategy::SingleVote => {
                    solve_single_votes(&mut self.graph, &batch, &self.config.single)
                }
                Strategy::MultiVote => {
                    solve_multi_votes(&mut self.graph, &batch, &self.config.multi)
                }
                Strategy::SplitMerge => {
                    solve_split_merge(&mut self.graph, &batch, &self.config.split_merge).report
                }
            };
            reports.push(report);
            // Publish the batch's result before re-ranking, so concurrent
            // handles switch to the new weights even when no cached query
            // is affected.
            {
                let _phase = kg_telemetry::span!("votekg.framework.publish");
                self.published();
            }

            // Between-batch re-rank of exactly the queries this batch's
            // weight changes can affect.
            let delta = self.graph.changes_since(version_before);
            if !delta.is_empty() {
                let mut rerank = kg_telemetry::span!("votekg.framework.rerank");
                let queries: Vec<NodeId> = questions.iter().map(|(q, _)| *q).collect();
                let affected = kg_sim::affected_queries(&self.graph, &delta.edges, &queries, &sim);
                let requests: Vec<BatchQuery<'_>> = questions
                    .iter()
                    .filter(|(q, _)| affected.contains(q))
                    .map(|(q, answers)| BatchQuery {
                        query: *q,
                        answers,
                        k: answers.len(),
                    })
                    .collect();
                rerank.field("queries", requests.len());
                if kg_telemetry::is_enabled() {
                    kg_telemetry::counter("votekg.framework.incremental_reranks")
                        .add(requests.len() as u64);
                }
                self.rank_batch(&requests);
            }
            self.commit_if_durable(take)?;
        }
        Ok(reports)
    }

    /// One structured summary per optimization round: outcome fields on
    /// the `votekg.framework.round` span, per-strategy counters, and an
    /// info-level `VOTEKG_LOG` event.
    fn record_round(
        &self,
        strategy: Strategy,
        round: &mut kg_telemetry::Span,
        report: &OptimizationReport,
    ) {
        let stderr_logging =
            kg_telemetry::log_enabled("votekg.framework", kg_telemetry::Level::Info);
        if !kg_telemetry::is_enabled() && !stderr_logging {
            return;
        }
        if kg_telemetry::is_enabled() {
            round.field("omega", report.omega());
            round.field("satisfied", report.satisfied_votes());
            round.field("violated_before", report.violated_votes_before());
            round.field("violated_after", report.violated_votes_after());
            round.field("discarded", report.discarded_votes);
            round.field("quarantined", report.quarantined_votes);
            round.field("failed_solves", report.failed_solves());
            round.field("edges_changed", report.edges_changed);
            let labels = [("strategy", strategy.as_str())];
            kg_telemetry::counter_labeled("votekg.framework.rounds", &labels).incr();
            kg_telemetry::counter_labeled("votekg.framework.votes_processed", &labels)
                .add(report.outcomes.len() as u64);
            kg_telemetry::gauge("votekg.framework.last_omega_avg").set(report.omega_avg());
        }
        kg_telemetry::tevent!(
            kg_telemetry::Level::Info,
            "votekg.framework",
            "{} round: {} votes, omega {} (avg {:.3}), violated {} -> {}, \
             {} edges changed, {} discarded",
            strategy.as_str(),
            report.outcomes.len(),
            report.omega(),
            report.omega_avg(),
            report.violated_votes_before(),
            report.violated_votes_after(),
            report.edges_changed,
            report.discarded_votes
        );
    }

    /// Reverts the graph to its weights before the last optimize call.
    /// Returns false when there is nothing to revert.
    ///
    /// On a durable framework the revert is itself committed to the WAL
    /// as a zero-vote round (panicking if that write fails), so recovery
    /// reproduces the reverted weights.
    pub fn revert_last_optimization(&mut self) -> bool {
        match self.last_snapshot.take() {
            Some(snap) => {
                snap.restore(&mut self.graph);
                self.published();
                if let Err(e) = self.commit_if_durable(0) {
                    Self::wal_panic(e);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        // Hubs have a second out-edge so the post-optimization row
        // normalization (NormalizeEdges) keeps relative changes — as in
        // any realistically dense knowledge graph.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let other = b.add_node("other", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h1, other, 0.3).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        b.add_edge(h2, other, 0.7).unwrap();
        (b.build(), q, a1, a2)
    }

    #[test]
    fn end_to_end_multi_vote() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        let ranked = fw.rank(q, &[a1, a2], 2);
        assert_eq!(ranked[0].node, a1);
        let kind = fw.record_feedback(q, &ranked, a2);
        assert_eq!(kind, VoteKind::Negative);
        assert_eq!(fw.pending_votes().len(), 1);
        let report = fw.optimize(Strategy::MultiVote);
        assert!(fw.pending_votes().is_empty());
        assert_eq!(report.outcomes[0].rank_after, 1);
        // Ranking now prefers a2.
        let ranked2 = fw.rank(q, &[a1, a2], 2);
        assert_eq!(ranked2[0].node, a2);
    }

    #[test]
    fn positive_feedback_is_recorded_as_positive() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        let ranked = fw.rank(q, &[a1, a2], 2);
        assert_eq!(fw.record_feedback(q, &ranked, a1), VoteKind::Positive);
    }

    #[test]
    fn revert_restores_weights() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g.clone(), FrameworkConfig::default());
        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        fw.optimize(Strategy::MultiVote);
        assert!(fw.revert_last_optimization());
        for e in g.edges() {
            assert_eq!(fw.graph().weight(e.edge), e.weight);
        }
        assert!(!fw.revert_last_optimization());
    }

    #[test]
    fn all_strategies_run() {
        for strategy in [
            Strategy::SingleVote,
            Strategy::MultiVote,
            Strategy::SplitMerge,
        ] {
            let (g, q, a1, a2) = scene();
            let mut fw = Framework::new(g, FrameworkConfig::default());
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            let report = fw.optimize(strategy);
            assert_eq!(report.outcomes.len(), 1, "{strategy:?}");
            assert!(
                report.outcomes[0].rank_after <= report.outcomes[0].rank_before,
                "{strategy:?} made the ranking worse"
            );
        }
    }

    #[test]
    fn split_merge_report_exposes_clusters() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        let report = fw.optimize_split_merge();
        assert_eq!(report.clusters.len(), 1);
    }

    #[test]
    fn incremental_batches_cover_all_votes() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        for _ in 0..3 {
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        }
        let reports = fw.optimize_incremental(Strategy::MultiVote, 2);
        assert_eq!(reports.len(), 2); // batches of 2 + 1
        let total: usize = reports.iter().map(|r| r.outcomes.len()).sum();
        assert_eq!(total, 3);
        assert!(fw.pending_votes().is_empty());
        // The repeated negative vote ends satisfied.
        assert_eq!(
            reports.last().unwrap().outcomes.last().unwrap().rank_after,
            1
        );
        // Revert undoes all batches at once.
        assert!(fw.revert_last_optimization());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn incremental_rejects_zero_batch() {
        let (g, _, _, _) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        fw.optimize_incremental(Strategy::MultiVote, 0);
    }

    #[test]
    fn optimize_with_no_votes_is_safe() {
        let (g, _, _, _) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        let report = fw.optimize(Strategy::MultiVote);
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn rank_is_cached_and_repaired_across_optimization() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        let first = fw.rank(q, &[a1, a2], 2);
        assert_eq!(fw.rank(q, &[a1, a2], 2), first);
        assert_eq!(fw.serve_stats().hits, 1);
        assert_eq!(fw.serve_stats().misses, 1);

        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        fw.optimize(Strategy::MultiVote);
        // The optimization changed weights on q's walks: the cached entry
        // is repaired in place through delta_phi, so serving it is a hit
        // that still matches an uncached evaluation bitwise.
        let after = fw.rank(q, &[a1, a2], 2);
        assert_eq!(
            after,
            kg_sim::rank_answers(fw.graph(), q, &[a1, a2], &fw.config().sim(), 2)
        );
        assert_eq!(after[0].node, a2);
        let stats = fw.serve_stats();
        assert_eq!(stats.misses, 1, "the repaired entry keeps serving");
        assert!(stats.repaired >= 1);
    }

    #[test]
    fn disabling_delta_repair_falls_back_to_eviction() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default())
            .with_delta_config(kg_sim::DeltaConfig::disabled());
        fw.rank(q, &[a1, a2], 2);
        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        fw.optimize(Strategy::MultiVote);
        let after = fw.rank(q, &[a1, a2], 2);
        assert_eq!(
            after,
            kg_sim::rank_answers(fw.graph(), q, &[a1, a2], &fw.config().sim(), 2)
        );
        let stats = fw.serve_stats();
        assert_eq!(stats.repaired, 0);
        assert!(stats.misses >= 2, "the evicted entry recomputes");
    }

    #[test]
    fn incremental_rerank_leaves_cache_warm() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default()).with_serve_workers(2);
        for _ in 0..3 {
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        }
        fw.optimize_incremental(Strategy::MultiVote, 1);
        // The between-batch re-rank already recomputed q's entry for the
        // final weights, so serving it now is a pure cache hit.
        let hits_before = fw.serve_stats().hits;
        let served = fw.rank(q, &[a1, a2], 2);
        assert_eq!(fw.serve_stats().hits, hits_before + 1);
        assert_eq!(
            served,
            kg_sim::rank_answers(fw.graph(), q, &[a1, a2], &fw.config().sim(), 2)
        );
    }

    #[test]
    fn clone_preserves_graph_and_serving_behavior() {
        let (g, q, a1, a2) = scene();
        let fw = Framework::new(g, FrameworkConfig::default());
        let reference = fw.rank(q, &[a1, a2], 2);
        let copy = fw.clone();
        assert_eq!(copy.rank(q, &[a1, a2], 2), reference);
    }

    #[test]
    fn handle_reads_race_optimization_and_stay_coherent() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        for _ in 0..6 {
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        }
        let handle = fw.handle();
        let sim = fw.config().sim();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let handle = handle.clone();
                s.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..50 {
                        let (snap, ranking) = handle.rank_snapshot(q, &[a1, a2], 2);
                        assert!(snap.epoch() >= last_epoch);
                        last_epoch = snap.epoch();
                        assert_eq!(ranking, kg_sim::rank_answers(&snap, q, &[a1, a2], &sim, 2));
                    }
                });
            }
            fw.optimize_incremental(Strategy::MultiVote, 1);
        });
        // Quiescent: the handle serves the final optimized graph.
        assert_eq!(handle.epoch(), fw.graph().version());
        assert_eq!(
            handle.rank(q, &[a1, a2], 2),
            kg_sim::rank_answers(fw.graph(), q, &[a1, a2], &sim, 2)
        );
    }

    #[test]
    fn graph_mut_edits_are_visible_to_the_next_rank() {
        let (g, q, a1, a2) = scene();
        let mut fw = Framework::new(g, FrameworkConfig::default());
        let before = fw.rank(q, &[a1, a2], 2);
        assert_eq!(before[0].node, a1);
        // Flip the hub weights by hand: a2's path now dominates.
        let (e_h1a1, e_h2a2) = {
            let g = fw.graph();
            let find = |w: f64| {
                g.edges()
                    .find(|e| (e.weight - w).abs() < 1e-9)
                    .unwrap()
                    .edge
            };
            (find(0.7), find(0.3))
        };
        fw.graph_mut().set_weight(e_h1a1, 0.05).unwrap();
        fw.graph_mut().set_weight(e_h2a2, 0.95).unwrap();
        let after = fw.rank(q, &[a1, a2], 2);
        assert_eq!(after[0].node, a2, "rank must see graph_mut edits");
        assert_eq!(
            after,
            kg_sim::rank_answers(fw.graph(), q, &[a1, a2], &fw.config().sim(), 2)
        );
    }

    #[test]
    fn rank_batch_matches_single_ranks() {
        let (g, q, a1, a2) = scene();
        let fw = Framework::new(g, FrameworkConfig::default());
        let answers = [a1, a2];
        let got = fw.rank_batch(&[kg_sim::BatchQuery {
            query: q,
            answers: &answers,
            k: 2,
        }]);
        assert_eq!(got[0], fw.rank(q, &answers, 2));
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;
    use crate::durable::DurableOptions;
    use kg_graph::{GraphBuilder, NodeKind};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let other = b.add_node("other", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h1, other, 0.3).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        b.add_edge(h2, other, 0.7).unwrap();
        (b.build(), q, a1, a2)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "votekg-durable-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn weight_bits(g: &KnowledgeGraph) -> Vec<u64> {
        g.weights().iter().map(|w| w.to_bits()).collect()
    }

    #[test]
    fn recovery_is_bit_identical_after_optimize() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("roundtrip");
        let (expected_bits, expected_version) = {
            let (mut fw, report) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            assert_eq!(report.recovered_version, 0);
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
            (weight_bits(fw.graph()), fw.graph().version())
        };
        let (fw2, report) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.recovered_version, expected_version);
        assert_eq!(report.rounds_applied, 1);
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        assert!(report.torn_tail.is_none());
        assert!(report.corrupt_snapshots.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_votes_survive_restart_without_optimize() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("pending");
        {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.record_vote(Vote::new(q, vec![a1, a2], a1));
            fw.sync_wal().unwrap();
        }
        let (mut fw2, report) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.votes_recovered, 2);
        assert_eq!(fw2.pending_votes().len(), 2);
        // The recovered votes optimize exactly like fresh ones.
        let report = fw2.optimize_durable(Strategy::MultiVote).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_compact_the_wal_and_recovery_uses_them() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("snapshot");
        let opts = DurableOptions {
            snapshot_every: 1, // checkpoint after every round
            keep_snapshots: 2,
        };
        let expected_bits = {
            let (mut fw, _) =
                Framework::open_durable(&dir, g.clone(), FrameworkConfig::default(), opts.clone())
                    .unwrap();
            for _ in 0..3 {
                fw.record_vote(Vote::new(q, vec![a1, a2], a2));
                fw.optimize_durable(Strategy::MultiVote).unwrap();
            }
            weight_bits(fw.graph())
        };
        let snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().to_string_lossy().into_owned();
                name.ends_with(".vkgs").then_some(name)
            })
            .collect();
        assert_eq!(snaps.len(), 2, "pruned to keep_snapshots: {snaps:?}");
        let (fw2, report) =
            Framework::open_durable(&dir, g, FrameworkConfig::default(), opts).unwrap();
        assert!(report.snapshot_version.is_some());
        assert_eq!(report.rounds_applied, 0, "snapshot already current");
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_falls_back_past_a_corrupt_snapshot() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("corrupt-snap");
        let opts = DurableOptions {
            snapshot_every: 1,
            keep_snapshots: 2,
        };
        let expected_bits = {
            let (mut fw, _) =
                Framework::open_durable(&dir, g.clone(), FrameworkConfig::default(), opts.clone())
                    .unwrap();
            for _ in 0..2 {
                fw.record_vote(Vote::new(q, vec![a1, a2], a2));
                fw.optimize_durable(Strategy::MultiVote).unwrap();
            }
            weight_bits(fw.graph())
        };
        // Corrupt the newest snapshot: flip one payload byte.
        let mut snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "vkgs"))
            .collect();
        snaps.sort();
        let newest = snaps.last().unwrap();
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(newest, &bytes).unwrap();
        // The WAL was compacted at the newest snapshot, so falling back to
        // the older snapshot alone cannot reach the final state — but the
        // graph is still recovered (without the last round) rather than
        // recovery failing outright, and the damage is reported.
        let (fw2, report) =
            Framework::open_durable(&dir, g, FrameworkConfig::default(), opts).unwrap();
        assert_eq!(report.corrupt_snapshots.len(), 1);
        assert!(
            report.corrupt_snapshots[0].1.contains("checksum")
                || report.corrupt_snapshots[0].1.contains("corrupt"),
            "{:?}",
            report.corrupt_snapshots
        );
        assert!(report.snapshot_version.is_some());
        assert!(fw2.graph().version() < expected_bits.len() as u64 * 100); // sanity
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_batches_commit_individually() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("incremental");
        let (expected_bits, expected_version) = {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            for _ in 0..3 {
                fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            }
            let reports = fw
                .optimize_incremental_durable(Strategy::MultiVote, 1)
                .unwrap();
            assert_eq!(reports.len(), 3);
            (weight_bits(fw.graph()), fw.graph().version())
        };
        let (fw2, report) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.rounds_applied, 3, "one WAL round per batch");
        assert_eq!(report.votes_recovered, 0);
        assert_eq!(report.recovered_version, expected_version);
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_graph_edits_fold_into_the_next_round() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("manual-edit");
        let (expected_bits, expected_version) = {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            // A manual out-of-band weight edit between rounds…
            let e = fw.graph().edges().next().unwrap().edge;
            fw.graph_mut().set_weight(e, 0.123456789).unwrap();
            // …is carried by the next committed round's delta.
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
            (weight_bits(fw.graph()), fw.graph().version())
        };
        let (fw2, report) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.recovered_version, expected_version);
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn revert_is_durable() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("revert");
        let (expected_bits, expected_version) = {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
            assert!(fw.revert_last_optimization());
            (weight_bits(fw.graph()), fw.graph().version())
        };
        let (fw2, report) = Framework::open_durable(
            &dir,
            g.clone(),
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.recovered_version, expected_version);
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        // The reverted weights equal the originals.
        assert_eq!(weight_bits(fw2.graph()), weight_bits(&g));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_tolerated_and_reported() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("torn");
        {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a1));
            fw.sync_wal().unwrap();
        }
        // Tear the final record (the second vote) mid-frame.
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let (fw2, report) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        assert!(report.torn_tail.is_some(), "{report:?}");
        assert_eq!(report.rounds_applied, 1, "committed round survives");
        assert_eq!(report.votes_recovered, 0, "torn vote dropped");
        assert!(fw2.pending_votes().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_wal_corruption_is_a_hard_error() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("interior");
        {
            let (mut fw, _) = Framework::open_durable(
                &dir,
                g.clone(),
                FrameworkConfig::default(),
                DurableOptions::default(),
            )
            .unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
        }
        // Flip a byte inside the header record (interior, not the tail).
        let wal = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(&wal, &bytes).unwrap();
        let err = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum") || msg.contains("corrupt") || msg.contains("mismatch"),
            "undescriptive error: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_framework_has_no_durability() {
        let (g, _, _, _) = scene();
        let fw = Framework::new(g, FrameworkConfig::default());
        assert!(!fw.is_durable());
        assert!(fw.durable_dir().is_none());
    }

    #[test]
    fn clone_of_durable_framework_is_in_memory_only() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("clone");
        let (mut fw, _) = Framework::open_durable(
            &dir,
            g,
            FrameworkConfig::default(),
            DurableOptions::default(),
        )
        .unwrap();
        fw.record_vote(Vote::new(q, vec![a1, a2], a2));
        let mut copy = fw.clone();
        assert!(!copy.is_durable());
        // The clone optimizes without touching fw's WAL.
        let wal_len_before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        copy.optimize(Strategy::MultiVote);
        assert_eq!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len(),
            wal_len_before
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_checkpoint_compacts_and_recovers() {
        let (g, q, a1, a2) = scene();
        let dir = temp_dir("checkpoint");
        let opts = DurableOptions {
            snapshot_every: 0, // manual checkpoints only
            keep_snapshots: 1,
        };
        let expected_bits = {
            let (mut fw, _) =
                Framework::open_durable(&dir, g.clone(), FrameworkConfig::default(), opts.clone())
                    .unwrap();
            fw.record_vote(Vote::new(q, vec![a1, a2], a2));
            fw.optimize_durable(Strategy::MultiVote).unwrap();
            let v = fw.checkpoint().unwrap();
            assert_eq!(v, Some(fw.graph().version()));
            weight_bits(fw.graph())
        };
        let (fw2, report) =
            Framework::open_durable(&dir, g, FrameworkConfig::default(), opts).unwrap();
        assert!(report.snapshot_version.is_some());
        assert_eq!(report.rounds_applied, 0, "WAL compacted at checkpoint");
        assert_eq!(weight_bits(fw2.graph()), expected_bits);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    #[test]
    fn aggregation_collapses_repeated_votes() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        let g = b.build();

        let mut fw = Framework::new(
            g,
            FrameworkConfig {
                aggregate: true,
                ..Default::default()
            },
        );
        // Three users: two want a2, one confirms a1 -> aggregated to one
        // negative vote for a2.
        for best in [a2, a2, a1] {
            fw.record_vote(Vote::new(q, vec![a1, a2], best));
        }
        let report = fw.optimize(Strategy::MultiVote);
        assert_eq!(report.outcomes.len(), 1, "{report:?}");
        assert_eq!(report.outcomes[0].rank_after, 1);
        // The majority's answer now wins.
        let ranked = fw.rank(q, &[a1, a2], 2);
        assert_eq!(ranked[0].node, a2);
    }
}
