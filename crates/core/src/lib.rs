//! # votekg — Optimizing Knowledge Graphs through Voting-based User Feedback
//!
//! A complete Rust implementation of the ICDE 2020 paper by Yang, Lin,
//! Xu, Yang and He: an interactive framework that refines the edge
//! weights of a knowledge graph from users' best-answer votes.
//!
//! The crates composing the system (all re-exported here):
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | weighted digraph substrate (CSR, augmentation, snapshots, I/O) |
//! | [`sim`] | PPR, extended inverse P-distance, top-k ranking, baselines |
//! | [`sgp`] | signomial geometric programming expressions and solvers |
//! | [`votes`] | vote model, SGP encoding, single-/multi-vote solutions |
//! | [`cluster`] | affinity propagation + split-and-merge scaling |
//! | [`qa`] | corpus → knowledge graph question answering, IR baseline |
//! | [`serve`] | versioned ranking cache with delta repair + invalidation |
//! | [`metrics`] | Ω, H@k, MRR, MAP, PD |
//! | [`telemetry`] | zero-dependency counters, spans, exporters, logging |
//!
//! The highest-level entry point is [`Framework`]:
//!
//! ```
//! use votekg::{Framework, FrameworkConfig, Strategy};
//! use votekg::graph::{GraphBuilder, NodeKind};
//! use votekg::votes::Vote;
//!
//! // A toy augmented graph: query -> hubs -> answers.
//! let mut b = GraphBuilder::new();
//! let q = b.add_node("q", NodeKind::Query);
//! let h1 = b.add_node("h1", NodeKind::Entity);
//! let h2 = b.add_node("h2", NodeKind::Entity);
//! let a1 = b.add_node("a1", NodeKind::Answer);
//! let a2 = b.add_node("a2", NodeKind::Answer);
//! b.add_edge(q, h1, 0.5).unwrap();
//! b.add_edge(q, h2, 0.5).unwrap();
//! b.add_edge(h1, a1, 0.7).unwrap();
//! b.add_edge(h2, a2, 0.3).unwrap();
//!
//! let mut fw = Framework::new(b.build(), FrameworkConfig::default());
//! let ranked = fw.rank(q, &[a1, a2], 2);
//! assert_eq!(ranked[0].node, a1); // a1 wins initially
//!
//! // The user votes a2 as the best answer -> negative vote.
//! fw.record_vote(Vote::new(q, vec![a1, a2], a2));
//! let report = fw.optimize(Strategy::MultiVote);
//! assert_eq!(report.outcomes[0].rank_after, 1); // a2 now on top
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod framework;

pub use durable::{DurableOptions, RecoveryReport};
pub use framework::{Framework, FrameworkConfig, Strategy};
pub use kg_graph::{GraphSnapshot, SharedGraph};
pub use kg_serve::{ServeHandle, SnapshotServer};
pub use kg_sim::DeltaConfig;
pub use kg_votes::wal::{TornTail, WalError};

pub use kg_cluster as cluster;
pub use kg_graph as graph;
pub use kg_metrics as metrics;
pub use kg_qa as qa;
pub use kg_serve as serve;
pub use kg_sim as sim;
pub use kg_telemetry as telemetry;
pub use kg_votes as votes;
pub use sgp;
