//! Durability layer for [`crate::Framework`]: vote WAL + periodic graph
//! snapshots + point-in-time recovery.
//!
//! A durable framework directory holds:
//!
//! * `wal.log` — the append-only [`kg_votes::wal`] record stream: one
//!   header, accepted votes, and one [`RoundRecord`] per committed
//!   optimization round (fsynced at commit).
//! * `snapshot-<version>.vkgs` — checksummed full-graph snapshots
//!   (`kg_graph::io` durable snapshot format), written every
//!   [`DurableOptions::snapshot_every`] commits. Each snapshot write
//!   compacts the WAL down to a fresh header plus the still-pending
//!   votes, bounding both recovery time and log growth.
//!
//! Recovery ([`crate::Framework::open_durable`]) loads the newest *valid*
//! snapshot — falling back to older ones when a snapshot fails its CRC —
//! and replays the WAL tail on top, reproducing the last committed weights
//! bit-identically (verified against the per-round weight checksum). A
//! torn final WAL record is truncated and reported; interior corruption
//! is a hard error.

use kg_graph::io::{read_snapshot_file, weights_crc, write_snapshot_file};
use kg_graph::KnowledgeGraph;
use kg_votes::log::GraphFingerprint;
use kg_votes::wal::{RoundRecord, TornTail, VoteWal, WalError};
use kg_votes::{Vote, VoteSet};
use std::path::{Path, PathBuf};

/// Tuning knobs for a durable framework directory.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Write a snapshot (and compact the WAL) every this many committed
    /// rounds. `0` disables automatic snapshots — the WAL then grows
    /// until [`crate::Framework::checkpoint`] is called explicitly.
    pub snapshot_every: usize,
    /// How many snapshot generations to keep on disk. Older snapshots
    /// are pruned best-effort after each checkpoint; at least one is
    /// always kept. Extra generations let recovery fall back when the
    /// newest snapshot file is damaged.
    pub keep_snapshots: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            snapshot_every: 8,
            keep_snapshots: 2,
        }
    }
}

/// What [`crate::Framework::open_durable`] found and reconstructed.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Version of the snapshot recovery started from (`None`: replayed
    /// the whole WAL onto the supplied base graph).
    pub snapshot_version: Option<u64>,
    /// Path of that snapshot.
    pub snapshot_path: Option<PathBuf>,
    /// WAL rounds whose deltas were applied on top of the snapshot.
    pub rounds_applied: usize,
    /// WAL rounds skipped because the snapshot already contained them.
    pub rounds_skipped: usize,
    /// Pending (accepted but not yet optimized) votes restored.
    pub votes_recovered: usize,
    /// Graph version after recovery — the last committed state.
    pub recovered_version: u64,
    /// CRC-32 over the recovered weight bits
    /// ([`kg_graph::io::weights_crc`]); every applied round re-verified
    /// its own committed checksum during replay.
    pub weights_crc: u32,
    /// Present when a torn final WAL record was dropped and truncated.
    pub torn_tail: Option<TornTail>,
    /// Snapshot files that failed validation and were skipped over
    /// (path, reason). Recovery only fails when the WAL itself is
    /// corrupt, not when a newer snapshot is.
    pub corrupt_snapshots: Vec<(PathBuf, String)>,
}

/// The open durability state a [`crate::Framework`] carries: the
/// append-ready WAL plus checkpoint bookkeeping. Crate-internal; the
/// framework drives it from its optimize entry points.
#[derive(Debug)]
pub(crate) struct Durability {
    wal: VoteWal,
    dir: PathBuf,
    opts: DurableOptions,
    commits_since_snapshot: usize,
    /// Graph version as of the last committed round record — the
    /// `version_before` the next round chains onto. Tracking it here
    /// (instead of per-call) folds manual `graph_mut` edits between
    /// rounds into the next round's delta, keeping the WAL chain gapless.
    last_committed_version: u64,
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Votes appended after the last commit are still buffered in the
        // OS; a clean shutdown should not lose them.
        let _ = self.wal.sync();
    }
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// Zero-padded so lexical file ordering equals version ordering.
fn snapshot_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("snapshot-{version:020}.vkgs"))
}

/// All `snapshot-*.vkgs` files in `dir`, newest version first.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = std::fs::read_dir(dir).map_err(|e| WalError::Io {
        path: dir.display().to_string(),
        message: format!("list snapshots: {e}"),
    })?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| WalError::Io {
            path: dir.display().to_string(),
            message: format!("list snapshots: {e}"),
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".vkgs"))
        else {
            continue;
        };
        let Ok(version) = stem.parse::<u64>() else {
            continue;
        };
        found.push((version, entry.path()));
    }
    found.sort_by_key(|&(version, _)| std::cmp::Reverse(version));
    Ok(found)
}

fn graph_io_to_wal(e: kg_graph::GraphError) -> WalError {
    match e {
        kg_graph::GraphError::Io { path, message } => WalError::Io { path, message },
        other => WalError::Io {
            path: String::new(),
            message: other.to_string(),
        },
    }
}

impl Durability {
    /// Opens (or initializes) the durable state in `dir`, restoring
    /// `graph` to the last committed state: newest valid snapshot, then
    /// the WAL tail replayed on top. Returns the durability handle, the
    /// recovery report, and the pending votes to resume with.
    pub(crate) fn open(
        dir: &Path,
        graph: &mut KnowledgeGraph,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport, VoteSet), WalError> {
        std::fs::create_dir_all(dir).map_err(|e| WalError::Io {
            path: dir.display().to_string(),
            message: format!("create durable dir: {e}"),
        })?;
        let base_fingerprint = GraphFingerprint::of(graph);
        let mut corrupt_snapshots = Vec::new();
        let mut snapshot_version = None;
        let mut snapshot_path_used = None;
        for (_, path) in list_snapshots(dir)? {
            match read_snapshot_file(&path) {
                Ok((snap_graph, epoch)) => {
                    if GraphFingerprint::of(&snap_graph) != base_fingerprint {
                        corrupt_snapshots.push((
                            path,
                            "snapshot topology does not match the supplied graph".to_string(),
                        ));
                        continue;
                    }
                    *graph = snap_graph;
                    snapshot_version = Some(epoch);
                    snapshot_path_used = Some(path);
                    break;
                }
                Err(e) => corrupt_snapshots.push((path, e.to_string())),
            }
        }
        let (wal, replay) = VoteWal::open(&wal_path(dir), graph)?;
        let report = RecoveryReport {
            snapshot_version,
            snapshot_path: snapshot_path_used,
            rounds_applied: replay.rounds_applied,
            rounds_skipped: replay.rounds_skipped,
            votes_recovered: replay.pending.len(),
            recovered_version: graph.version(),
            weights_crc: weights_crc(graph),
            torn_tail: replay.torn_tail,
            corrupt_snapshots,
        };
        let durability = Durability {
            wal,
            dir: dir.to_path_buf(),
            opts,
            commits_since_snapshot: 0,
            last_committed_version: graph.version(),
        };
        Ok((durability, report, replay.pending))
    }

    /// Appends an accepted vote (durable by the next commit).
    pub(crate) fn append_vote(&mut self, vote: &Vote) -> Result<(), WalError> {
        self.wal.append_vote(vote)
    }

    /// Commits one optimization round: everything the graph changed
    /// since the last committed version (including any manual edits in
    /// between), fsynced, then an automatic checkpoint when due.
    pub(crate) fn commit(
        &mut self,
        graph: &KnowledgeGraph,
        pending: &VoteSet,
        votes_consumed: usize,
    ) -> Result<(), WalError> {
        let delta = graph.changes_since(self.last_committed_version);
        let round = RoundRecord {
            version_before: self.last_committed_version,
            version_after: graph.version(),
            votes_consumed,
            deltas: delta
                .edges
                .iter()
                .map(|&e| (e.0, graph.weight(e).to_bits()))
                .collect(),
            weights_crc: weights_crc(graph),
        };
        self.wal.commit_round(&round)?;
        self.last_committed_version = graph.version();
        self.commits_since_snapshot += 1;
        if self.opts.snapshot_every > 0 && self.commits_since_snapshot >= self.opts.snapshot_every {
            self.checkpoint(graph, pending)?;
        }
        Ok(())
    }

    /// Writes a snapshot of the graph's current state, compacts the WAL
    /// down to a header + the pending votes, and prunes old snapshots.
    pub(crate) fn checkpoint(
        &mut self,
        graph: &KnowledgeGraph,
        pending: &VoteSet,
    ) -> Result<(), WalError> {
        let snap = snapshot_path(&self.dir, graph.version());
        write_snapshot_file(&snap, graph).map_err(graph_io_to_wal)?;
        self.wal = VoteWal::rewrite(&wal_path(&self.dir), graph, pending)?;
        self.commits_since_snapshot = 0;
        self.last_committed_version = graph.version();
        self.prune_snapshots();
        Ok(())
    }

    /// Best-effort deletion of snapshot generations beyond
    /// `keep_snapshots` (always keeps at least one).
    fn prune_snapshots(&self) {
        let keep = self.opts.keep_snapshots.max(1);
        let Ok(snaps) = list_snapshots(&self.dir) else {
            return;
        };
        for (_, path) in snaps.into_iter().skip(keep) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Forces buffered vote appends to disk without committing a round.
    pub(crate) fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    /// The durable directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }
}
