//! Split-and-merge optimization for large vote sets (Section VI of the
//! paper).
//!
//! Solving one SGP program over hundreds of votes blows up solver time
//! (and, in the paper's MATLAB setup, memory). The split-and-merge
//! strategy:
//!
//! 1. computes each vote's **edge footprint** — the edges on any walk
//!    used by its similarity constraints;
//! 2. measures vote similarity as Jaccard overlap of footprints (Eq. 20);
//! 3. clusters votes with **affinity propagation** (Frey & Dueck 2007),
//!    preference set to the median similarity, so the cluster count is
//!    chosen automatically;
//! 4. solves one multi-vote SGP per cluster — independently, hence
//!    optionally in parallel worker threads;
//! 5. **merges** per-cluster weight deltas: a variable changed by several
//!    clusters takes the sign of the vote-count-weighted delta sum, then
//!    the extremal delta of that sign (Fig. 4's voting mechanism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod merge;
pub mod pipeline;
pub mod similarity;

pub use ap::{affinity_propagation, ApOptions, ApResult};
pub use merge::{merge_deltas, ClusterDelta, MergeOutcome, MergeRule};
pub use pipeline::{solve_split_merge, SplitMergeOptions, SplitMergeReport};
pub use similarity::{vote_footprint, vote_similarity, vote_similarity_matrix};
