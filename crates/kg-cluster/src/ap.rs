//! Affinity propagation clustering (Frey & Dueck, *Science* 2007),
//! implemented from scratch — the paper uses it to split the vote set
//! because it chooses the number of clusters automatically via the
//! preference parameter.

use serde::{Deserialize, Serialize};

/// Affinity propagation controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApOptions {
    /// Message damping factor in `[0.5, 1)`; higher is more stable.
    pub damping: f64,
    /// Maximum message-passing iterations.
    pub max_iters: usize,
    /// Stop after the exemplar set is unchanged for this many iterations.
    pub convergence_window: usize,
    /// Preference (self-similarity) policy.
    pub preference: Preference,
}

/// How the diagonal of the similarity matrix is set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Preference {
    /// The median of the off-diagonal similarities — the paper's choice,
    /// yielding a moderate number of clusters.
    Median,
    /// The minimum off-diagonal similarity — yields few clusters.
    Min,
    /// A fixed value.
    Fixed(f64),
}

impl Default for ApOptions {
    fn default() -> Self {
        ApOptions {
            damping: 0.7,
            max_iters: 300,
            convergence_window: 20,
            preference: Preference::Median,
        }
    }
}

/// Clustering produced by [`affinity_propagation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApResult {
    /// For every item, the index of its exemplar.
    pub exemplar_of: Vec<usize>,
    /// Clusters as lists of item indices, each led by its exemplar;
    /// ordered by exemplar index.
    pub clusters: Vec<Vec<usize>>,
    /// Iterations executed.
    pub iterations: usize,
    /// True when the exemplar set stabilized before `max_iters`.
    pub converged: bool,
}

/// Runs affinity propagation on a symmetric similarity matrix.
///
/// Degenerate inputs are handled conservatively: an empty matrix yields
/// zero clusters; a single item is its own exemplar; if message passing
/// ends with no exemplar (possible with extreme preferences), the item
/// with the highest total similarity is promoted so at least one cluster
/// exists.
///
/// ```
/// use kg_cluster::{affinity_propagation, ApOptions};
///
/// // Two obvious groups: {0, 1} similar to each other, {2, 3} likewise.
/// let sim = vec![
///     vec![1.0, 0.9, 0.1, 0.1],
///     vec![0.9, 1.0, 0.1, 0.1],
///     vec![0.1, 0.1, 1.0, 0.9],
///     vec![0.1, 0.1, 0.9, 1.0],
/// ];
/// let result = affinity_propagation(&sim, &ApOptions::default());
/// assert_eq!(result.clusters.len(), 2);
/// assert_eq!(result.exemplar_of[0], result.exemplar_of[1]);
/// assert_ne!(result.exemplar_of[0], result.exemplar_of[2]);
/// ```
pub fn affinity_propagation(similarity: &[Vec<f64>], opts: &ApOptions) -> ApResult {
    let n = similarity.len();
    if n == 0 {
        return ApResult {
            exemplar_of: vec![],
            clusters: vec![],
            iterations: 0,
            converged: true,
        };
    }
    assert!(
        similarity.iter().all(|row| row.len() == n),
        "similarity matrix must be square"
    );
    assert!(
        (0.5..1.0).contains(&opts.damping),
        "damping must lie in [0.5, 1)"
    );
    if n == 1 {
        return ApResult {
            exemplar_of: vec![0],
            clusters: vec![vec![0]],
            iterations: 0,
            converged: true,
        };
    }

    // Build the working similarity matrix with the preference diagonal and
    // tiny deterministic jitter to break symmetry ties (a standard AP
    // trick; deterministic here so runs are reproducible).
    let mut off: Vec<f64> = Vec::with_capacity(n * (n - 1));
    for (i, row) in similarity.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                off.push(v);
            }
        }
    }
    off.sort_by(f64::total_cmp);
    let mut pref = match opts.preference {
        Preference::Median => {
            let m = off.len();
            if m == 0 {
                0.0
            } else if m % 2 == 1 {
                off[m / 2]
            } else {
                0.5 * (off[m / 2 - 1] + off[m / 2])
            }
        }
        Preference::Min => off.first().copied().unwrap_or(0.0),
        Preference::Fixed(v) => v,
    };
    // Auto preferences must sit strictly below the highest similarity, or
    // AP degenerates into all-singletons on near-uniform matrices (e.g. a
    // batch of identical votes). Fixed preferences are taken literally.
    if !matches!(opts.preference, Preference::Fixed(_)) {
        if let Some(&max_off) = off.last() {
            let eps = 1e-9 * (1.0 + max_off.abs());
            pref = pref.min(max_off - eps);
        }
    }

    let mut s = vec![vec![0.0f64; n]; n];
    for (i, row) in s.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            // Deterministic tie-breaking jitter, far below similarity scale.
            *cell = if i == j { pref } else { similarity[i][j] }
                + 1e-12 * ((i * 31 + j * 17) % 101) as f64;
        }
    }

    let mut r = vec![vec![0.0f64; n]; n];
    let mut a = vec![vec![0.0f64; n]; n];
    let lambda = opts.damping;
    let mut last_exemplars: Vec<bool> = vec![false; n];
    let mut stable_for = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    for it in 0..opts.max_iters {
        iterations = it + 1;
        // Responsibilities: r(i,k) = s(i,k) - max_{k'!=k} (a(i,k')+s(i,k')).
        for i in 0..n {
            // Find the top two values of a(i,k)+s(i,k) in one pass.
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            let mut best_k = 0usize;
            for k in 0..n {
                let v = a[i][k] + s[i][k];
                if v > best {
                    second = best;
                    best = v;
                    best_k = k;
                } else if v > second {
                    second = v;
                }
            }
            for k in 0..n {
                let competing = if k == best_k { second } else { best };
                let new_r = s[i][k] - competing;
                r[i][k] = lambda * r[i][k] + (1.0 - lambda) * new_r;
            }
        }
        // Availabilities.
        for k in 0..n {
            let mut pos_sum = 0.0;
            for (i, row) in r.iter().enumerate() {
                if i != k {
                    pos_sum += row[k].max(0.0);
                }
            }
            for i in 0..n {
                let new_a = if i == k {
                    pos_sum
                } else {
                    (r[k][k] + pos_sum - r[i][k].max(0.0)).min(0.0)
                };
                a[i][k] = lambda * a[i][k] + (1.0 - lambda) * new_a;
            }
        }
        // Convergence: exemplar set stable for `convergence_window` iters.
        let exemplars: Vec<bool> = (0..n).map(|k| a[k][k] + r[k][k] > 0.0).collect();
        if exemplars == last_exemplars {
            stable_for += 1;
            if stable_for >= opts.convergence_window && exemplars.iter().any(|&e| e) {
                converged = true;
                break;
            }
        } else {
            stable_for = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars: Vec<usize> = (0..n).filter(|&k| a[k][k] + r[k][k] > 0.0).collect();
    if exemplars.is_empty() {
        // Promote the item with the highest total similarity.
        let best = (0..n)
            .max_by(|&x, &y| {
                let sx: f64 = (0..n).filter(|&j| j != x).map(|j| similarity[x][j]).sum();
                let sy: f64 = (0..n).filter(|&j| j != y).map(|j| similarity[y][j]).sum();
                sx.total_cmp(&sy)
            })
            .expect("n >= 1");
        exemplars.push(best);
    }

    // Assignment: each item joins its most similar exemplar; exemplars
    // join themselves. An item with zero (or negative) similarity to every
    // exemplar becomes its own singleton — votes sharing no edges must not
    // co-cluster (their constraints are independent; merging them only
    // grows the SGP program).
    let mut exemplar_of = vec![0usize; n];
    for i in 0..n {
        if exemplars.contains(&i) {
            exemplar_of[i] = i;
        } else {
            let best = *exemplars
                .iter()
                .max_by(|&&k1, &&k2| s[i][k1].total_cmp(&s[i][k2]))
                .expect("at least one exemplar");
            exemplar_of[i] = if similarity[i][best] > 0.0 { best } else { i };
        }
    }
    let mut exemplars: Vec<usize> = {
        let mut ex: Vec<usize> = exemplar_of.to_vec();
        ex.sort_unstable();
        ex.dedup();
        ex
    };
    exemplars.sort_unstable();

    let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(exemplars.len());
    for &k in &exemplars {
        let mut members: Vec<usize> = (0..n).filter(|&i| exemplar_of[i] == k).collect();
        members.sort_unstable();
        if !members.is_empty() {
            clusters.push(members);
        }
    }

    ApResult {
        exemplar_of,
        clusters,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal similarity: two obvious clusters {0,1,2}, {3,4}.
    fn two_blocks() -> Vec<Vec<f64>> {
        let n = 5;
        let high = 0.9;
        let low = 0.05;
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            1.0
                        } else if (i < 3) == (j < 3) {
                            high
                        } else {
                            low
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_block_structure() {
        let res = affinity_propagation(&two_blocks(), &ApOptions::default());
        assert_eq!(res.clusters.len(), 2, "{res:?}");
        let mut sizes: Vec<usize> = res.clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, [2, 3]);
        // Items 0..3 share an exemplar; 3..5 share another.
        assert_eq!(res.exemplar_of[0], res.exemplar_of[1]);
        assert_eq!(res.exemplar_of[3], res.exemplar_of[4]);
        assert_ne!(res.exemplar_of[0], res.exemplar_of[3]);
    }

    #[test]
    fn every_item_is_assigned_exactly_once() {
        let res = affinity_propagation(&two_blocks(), &ApOptions::default());
        let mut seen = [false; 5];
        for c in &res.clusters {
            for &i in c {
                assert!(!seen[i], "item {i} in two clusters");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exemplars_belong_to_their_clusters() {
        let res = affinity_propagation(&two_blocks(), &ApOptions::default());
        for c in &res.clusters {
            let k = res.exemplar_of[c[0]];
            assert!(c.contains(&k));
            assert_eq!(res.exemplar_of[k], k, "exemplar must self-assign");
        }
    }

    #[test]
    fn single_item_is_its_own_cluster() {
        let res = affinity_propagation(&[vec![1.0]], &ApOptions::default());
        assert_eq!(res.clusters, vec![vec![0]]);
        assert!(res.converged);
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        let res = affinity_propagation(&[], &ApOptions::default());
        assert!(res.clusters.is_empty());
    }

    #[test]
    fn identical_items_form_one_cluster() {
        let n = 4;
        let m = vec![vec![1.0; n]; n];
        let res = affinity_propagation(&m, &ApOptions::default());
        assert_eq!(res.clusters.len(), 1, "{res:?}");
        assert_eq!(res.clusters[0].len(), n);
    }

    #[test]
    fn all_dissimilar_items_form_singletons_with_high_preference() {
        let n = 4;
        let mut m = vec![vec![0.0; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let opts = ApOptions {
            preference: Preference::Fixed(0.9),
            ..Default::default()
        };
        let res = affinity_propagation(&m, &opts);
        assert_eq!(res.clusters.len(), n, "{res:?}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        affinity_propagation(&[vec![1.0, 0.5]], &ApOptions::default());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_panics() {
        let opts = ApOptions {
            damping: 0.2,
            ..Default::default()
        };
        affinity_propagation(&[vec![1.0]], &opts);
    }
}
