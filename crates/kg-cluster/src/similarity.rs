//! Vote similarity: Jaccard overlap of edge footprints (Eq. 20).

use kg_graph::{EdgeId, KnowledgeGraph};
use kg_sim::pdist::enumerate_paths;
use kg_sim::SimilarityConfig;
use kg_votes::Vote;

/// The set of edges associated with a vote: every edge on any walk of
/// length ≤ `L` from the vote's query to any of its listed answers —
/// exactly the variables its constraints would touch. Returned sorted and
/// deduplicated.
pub fn vote_footprint(
    graph: &KnowledgeGraph,
    vote: &Vote,
    cfg: &SimilarityConfig,
    max_expansions: usize,
) -> Vec<EdgeId> {
    enumerate_paths(graph, vote.query, &vote.answers, cfg, max_expansions).edge_footprint()
}

/// Jaccard similarity `|E(t_i) ∩ E(t_j)| / |E(t_i) ∪ E(t_j)|` between two
/// sorted footprints. Two empty footprints are defined as similarity 0
/// (they share no evidence, so co-clustering them has no benefit).
pub fn vote_similarity(a: &[EdgeId], b: &[EdgeId]) -> f64 {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]),
        "footprint must be sorted"
    );
    debug_assert!(
        b.windows(2).all(|w| w[0] < w[1]),
        "footprint must be sorted"
    );
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Full pairwise similarity matrix over a list of footprints.
pub fn vote_similarity_matrix(footprints: &[Vec<EdgeId>]) -> Vec<Vec<f64>> {
    let n = footprints.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let s = vote_similarity(&footprints[i], &footprints[j]);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};

    fn e(ids: &[u32]) -> Vec<EdgeId> {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(vote_similarity(&e(&[0, 1, 2]), &e(&[0, 1, 2])), 1.0);
        assert_eq!(vote_similarity(&e(&[0, 1]), &e(&[2, 3])), 0.0);
        assert!((vote_similarity(&e(&[0, 1, 2]), &e(&[1, 2, 3])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_footprints_are_dissimilar() {
        assert_eq!(vote_similarity(&[], &[]), 0.0);
        assert_eq!(vote_similarity(&e(&[1]), &[]), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let fps = vec![e(&[0, 1]), e(&[1, 2]), e(&[5])];
        let m = vote_similarity_matrix(&fps);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!((m[0][1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m[0][2], 0.0);
    }

    #[test]
    fn footprint_covers_all_answer_paths() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h = b.add_node("h", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h, 1.0).unwrap();
        b.add_edge(h, a1, 0.6).unwrap();
        b.add_edge(h, a2, 0.4).unwrap();
        let g = b.build();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let fp = vote_footprint(&g, &vote, &SimilarityConfig::default(), 100_000);
        assert_eq!(fp.len(), 3);
    }

    #[test]
    fn votes_in_disjoint_regions_have_zero_similarity() {
        let mut b = GraphBuilder::new();
        let q1 = b.add_node("q1", NodeKind::Query);
        let q2 = b.add_node("q2", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q1, h1, 1.0).unwrap();
        b.add_edge(h1, a1, 1.0).unwrap();
        b.add_edge(q2, h2, 1.0).unwrap();
        b.add_edge(h2, a2, 1.0).unwrap();
        let g = b.build();
        let cfg = SimilarityConfig::default();
        let f1 = vote_footprint(&g, &Vote::new(q1, vec![a1], a1), &cfg, 100_000);
        let f2 = vote_footprint(&g, &Vote::new(q2, vec![a2], a2), &cfg, 100_000);
        assert_eq!(vote_similarity(&f1, &f2), 0.0);
    }
}
