//! The merge strategy (Section VI, Fig. 4): combining per-cluster weight
//! deltas into one update.

use kg_graph::{EdgeId, KnowledgeGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One cluster's optimization output: its vote count `n_C` and the weight
/// deltas `Δx` it proposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDelta {
    /// Number of votes in the cluster (the merge weight `n_C`).
    pub votes: usize,
    /// Proposed weight changes, keyed by edge.
    pub deltas: HashMap<EdgeId, f64>,
}

/// How conflicting deltas on a shared edge are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeRule {
    /// The paper's rule: sign of `Σ_C n_C·Δx_C`, then the max delta when
    /// positive, else the min.
    VotingExtremal,
    /// Vote-count-weighted mean — ablation alternative.
    WeightedMean,
    /// Last cluster wins — models the single-vote solution's order bias;
    /// ablation alternative.
    LastWriter,
}

/// Result of merging cluster deltas.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MergeOutcome {
    /// Final per-edge deltas after conflict resolution.
    pub merged: HashMap<EdgeId, f64>,
    /// Edges proposed by more than one cluster.
    pub conflicted_edges: usize,
    /// Non-finite per-cluster proposals rejected before resolution. A
    /// NaN delta would otherwise survive the clamp in [`apply_merged`]
    /// (`f64::clamp` propagates NaN) and poison the graph.
    pub skipped_non_finite: usize,
}

/// Merges per-cluster deltas according to `rule` (Section VI).
///
/// Edges changed by a single cluster pass through unchanged; edges changed
/// by several clusters are resolved per the rule. Non-finite proposals are
/// dropped (counted in [`MergeOutcome::skipped_non_finite`]) so one bad
/// cluster cannot poison a shared edge.
pub fn merge_deltas(clusters: &[ClusterDelta], rule: MergeRule) -> MergeOutcome {
    let mut out = MergeOutcome::default();
    // Gather every finite proposal per edge, in cluster order.
    let mut proposals: HashMap<EdgeId, Vec<(usize, f64)>> = HashMap::new();
    for c in clusters {
        for (&e, &d) in &c.deltas {
            if !d.is_finite() {
                out.skipped_non_finite += 1;
                continue;
            }
            proposals.entry(e).or_default().push((c.votes, d));
        }
    }

    for (e, ps) in proposals {
        let d = if ps.len() == 1 {
            ps[0].1
        } else {
            out.conflicted_edges += 1;
            match rule {
                MergeRule::VotingExtremal => {
                    let weighted_sum: f64 = ps.iter().map(|&(n, d)| n as f64 * d).sum();
                    if weighted_sum >= 0.0 {
                        ps.iter().map(|&(_, d)| d).fold(f64::NEG_INFINITY, f64::max)
                    } else {
                        ps.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min)
                    }
                }
                MergeRule::WeightedMean => {
                    let total: usize = ps.iter().map(|&(n, _)| n).sum();
                    ps.iter().map(|&(n, d)| n as f64 * d).sum::<f64>() / total.max(1) as f64
                }
                MergeRule::LastWriter => ps[ps.len() - 1].1,
            }
        };
        out.merged.insert(e, d);
    }
    out
}

/// Applies merged deltas to the graph, clamping the resulting weights into
/// `[lo, hi]`. Returns the edges actually changed. Deltas that still
/// produce a non-finite weight are skipped rather than applied — the
/// clamp does not catch NaN.
pub fn apply_merged(
    graph: &mut KnowledgeGraph,
    outcome: &MergeOutcome,
    lo: f64,
    hi: f64,
) -> Vec<EdgeId> {
    let mut changed: Vec<EdgeId> = Vec::with_capacity(outcome.merged.len());
    for (&e, &d) in &outcome.merged {
        if d == 0.0 {
            continue;
        }
        let w = (graph.weight(e) + d).clamp(lo, hi);
        if !w.is_finite() {
            continue;
        }
        if (graph.weight(e) - w).abs() > 0.0 && graph.set_weight(e, w).is_ok() {
            changed.push(e);
        }
    }
    changed.sort_unstable();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(votes: usize, deltas: &[(u32, f64)]) -> ClusterDelta {
        ClusterDelta {
            votes,
            deltas: deltas.iter().map(|&(e, d)| (EdgeId(e), d)).collect(),
        }
    }

    #[test]
    fn paper_example_fig4() {
        // Deltas (-0.01, +0.03, +0.07) with vote counts (10, 8, 9):
        // weighted sum = -0.1 + 0.24 + 0.63 >= 0 -> take max = 0.07.
        let clusters = vec![
            cluster(10, &[(5, -0.01)]),
            cluster(8, &[(5, 0.03)]),
            cluster(9, &[(5, 0.07)]),
        ];
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        assert!((out.merged[&EdgeId(5)] - 0.07).abs() < 1e-12);
        assert_eq!(out.conflicted_edges, 1);
    }

    #[test]
    fn negative_majority_takes_min() {
        let clusters = vec![cluster(10, &[(1, -0.05)]), cluster(2, &[(1, 0.03)])];
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        assert!((out.merged[&EdgeId(1)] + 0.05).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_edges_pass_through() {
        let clusters = vec![cluster(3, &[(0, 0.1), (1, -0.2)]), cluster(5, &[(2, 0.3)])];
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        assert_eq!(out.conflicted_edges, 0);
        assert_eq!(out.merged.len(), 3);
        assert!((out.merged[&EdgeId(1)] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_rule() {
        let clusters = vec![cluster(1, &[(0, 0.1)]), cluster(3, &[(0, -0.1)])];
        let out = merge_deltas(&clusters, MergeRule::WeightedMean);
        // (1*0.1 + 3*(-0.1)) / 4 = -0.05
        assert!((out.merged[&EdgeId(0)] + 0.05).abs() < 1e-12);
    }

    #[test]
    fn last_writer_rule() {
        let clusters = vec![cluster(10, &[(0, 0.5)]), cluster(1, &[(0, -0.5)])];
        let out = merge_deltas(&clusters, MergeRule::LastWriter);
        assert!((out.merged[&EdgeId(0)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn tie_counts_as_positive() {
        // Weighted sum exactly zero -> paper's ">= 0" branch -> max.
        let clusters = vec![cluster(1, &[(0, -0.1)]), cluster(1, &[(0, 0.1)])];
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        assert!((out.merged[&EdgeId(0)] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn apply_merged_clamps_into_bounds() {
        use kg_graph::{GraphBuilder, NodeKind};
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let e = b.add_edge(x, y, 0.9).unwrap();
        let mut g = b.build();
        let mut out = MergeOutcome::default();
        out.merged.insert(e, 0.5); // would exceed 1.0
        let changed = apply_merged(&mut g, &out, 1e-4, 1.0);
        assert_eq!(changed, vec![e]);
        assert_eq!(g.weight(e), 1.0);
    }

    #[test]
    fn non_finite_proposals_are_skipped_with_a_count() {
        // A NaN delta from a poisoned cluster must not reach the merged
        // map — and must not drag down a healthy proposal on the same
        // edge.
        let clusters = vec![
            cluster(3, &[(0, f64::NAN), (1, 0.2)]),
            cluster(2, &[(0, 0.1), (2, f64::INFINITY)]),
        ];
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        assert_eq!(out.skipped_non_finite, 2);
        assert_eq!(out.conflicted_edges, 0);
        assert!((out.merged[&EdgeId(0)] - 0.1).abs() < 1e-12);
        assert!((out.merged[&EdgeId(1)] - 0.2).abs() < 1e-12);
        assert!(!out.merged.contains_key(&EdgeId(2)));
    }

    #[test]
    fn apply_merged_refuses_non_finite_weights() {
        use kg_graph::{GraphBuilder, NodeKind};
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let e = b.add_edge(x, y, 0.5).unwrap();
        let mut g = b.build();
        // Bypass merge_deltas' filter to exercise apply_merged's own
        // guard: clamp(NaN) is NaN, so without the check the graph would
        // be poisoned (or set_weight would panic via the old expect).
        let mut out = MergeOutcome::default();
        out.merged.insert(e, f64::NAN);
        assert!(apply_merged(&mut g, &out, 1e-4, 1.0).is_empty());
        assert_eq!(g.weight(e), 0.5);
    }

    #[test]
    fn apply_merged_skips_zero_deltas() {
        use kg_graph::{GraphBuilder, NodeKind};
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let e = b.add_edge(x, y, 0.5).unwrap();
        let mut g = b.build();
        let mut out = MergeOutcome::default();
        out.merged.insert(e, 0.0);
        assert!(apply_merged(&mut g, &out, 1e-4, 1.0).is_empty());
    }
}
