//! The end-to-end split-and-merge pipeline: footprint → similarity → AP
//! clustering → per-cluster multi-vote solves (optionally parallel) →
//! voting merge → normalization.

use crate::ap::{affinity_propagation, ApOptions};
use crate::merge::{apply_merged, merge_deltas, ClusterDelta, MergeRule};
use crate::similarity::{vote_footprint, vote_similarity_matrix};
use kg_graph::{KnowledgeGraph, WeightSnapshot};
use kg_sim::topk::rank_of;
use kg_votes::report::{
    DiscardedVote, NormalizeMode, OptimizationReport, SolveOutcome, VoteOutcome,
};
use kg_votes::single::{normalize_after, validate_votes};
use kg_votes::{solve_multi_votes, MultiVoteOptions, VoteSet};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Controls for [`solve_split_merge`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMergeOptions {
    /// The per-cluster multi-vote configuration (encoding, objective,
    /// solver). Its `normalize` field is ignored inside clusters —
    /// normalization happens once, after the merge.
    pub multi: MultiVoteOptions,
    /// Affinity propagation controls.
    pub ap: ApOptions,
    /// Conflict-resolution rule for shared edges.
    pub merge_rule: MergeRule,
    /// Worker threads for per-cluster solves; 1 = sequential. The paper's
    /// "distributed" variant maps to >1 (cluster solves are independent).
    pub workers: usize,
    /// Post-merge weight normalization. Defaults to `None`, matching the
    /// multi-vote solution it accelerates (Section VI does not
    /// re-normalize either).
    pub normalize: NormalizeMode,
}

impl Default for SplitMergeOptions {
    fn default() -> Self {
        SplitMergeOptions {
            multi: MultiVoteOptions::default(),
            ap: ApOptions::default(),
            merge_rule: MergeRule::VotingExtremal,
            workers: 1,
            normalize: NormalizeMode::None,
        }
    }
}

/// Result of a split-and-merge run.
///
/// Per-phase wall-clock timing (clustering, per-cluster solves, merge)
/// is no longer carried here — it is reported through `kg-telemetry`
/// spans (`votekg.cluster.*`), which attribute each cluster solve to its
/// worker thread. Enable collection with `kg_telemetry::enable()` and
/// read the spans from `kg_telemetry::recent_spans()` or the exporters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMergeReport {
    /// Rank outcomes and aggregate stats (Ω etc.).
    pub report: OptimizationReport,
    /// The vote clusters produced by affinity propagation (indices into
    /// the input vote set).
    pub clusters: Vec<Vec<usize>>,
    /// Edges proposed by more than one cluster during the merge.
    pub merge_conflicts: usize,
    /// Mean vote similarity within clusters (1.0 when every cluster is a
    /// singleton; higher is better-separated clustering).
    pub intra_similarity: f64,
    /// Mean vote similarity across different clusters (lower is better).
    pub inter_similarity: f64,
    /// Clusters whose solve panicked or died: each contributed an identity
    /// delta (no weight changes) and the merge proceeded over survivors.
    pub failed_clusters: usize,
}

impl SplitMergeReport {
    /// Average cluster size (votes per cluster).
    pub fn avg_cluster_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            let total: usize = self.clusters.iter().map(Vec::len).sum();
            total as f64 / self.clusters.len() as f64
        }
    }
}

/// Runs split-and-merge over the vote set, mutating `graph` in place.
pub fn solve_split_merge(
    graph: &mut KnowledgeGraph,
    votes: &VoteSet,
    opts: &SplitMergeOptions,
) -> SplitMergeReport {
    assert!(opts.workers >= 1, "need at least one worker");
    let mut round_span = kg_telemetry::span!("votekg.cluster.round", {
        votes: votes.len(),
        workers: opts.workers,
    });
    let started = Instant::now();
    let sim_cfg = opts.multi.encode.sim;

    // Validation pass: votes whose best answer cannot be ranked are
    // recorded as discarded and never clustered or solved.
    let mut report = OptimizationReport::default();
    let ranks_before = validate_votes(graph, votes, &opts.multi.encode, &mut report);
    let valid_idx: Vec<usize> = (0..votes.len())
        .filter(|&i| ranks_before[i].is_some())
        .collect();

    // --- Split (over valid votes only) ---
    let footprints: Vec<_> = {
        let _span = kg_telemetry::span!("votekg.cluster.footprint", { votes: valid_idx.len() });
        valid_idx
            .iter()
            .map(|&i| {
                vote_footprint(
                    graph,
                    &votes.votes[i],
                    &sim_cfg,
                    opts.multi.encode.max_expansions,
                )
            })
            .collect()
    };
    let sim_matrix = {
        let _span = kg_telemetry::span!("votekg.cluster.similarity");
        vote_similarity_matrix(&footprints)
    };
    let ap = {
        let _span = kg_telemetry::span!("votekg.cluster.ap");
        affinity_propagation(&sim_matrix, &opts.ap)
    };
    // AP clustered the valid subset; remap its indices back to positions
    // in the input vote set.
    let clusters: Vec<Vec<usize>> = ap
        .clusters
        .into_iter()
        .map(|c| c.into_iter().map(|local| valid_idx[local]).collect())
        .collect();
    let (intra_similarity, inter_similarity) = cluster_quality(&sim_matrix, &ap.exemplar_of);
    round_span.field("clusters", clusters.len());

    // --- Per-cluster solves ---
    // Each cluster solves against a private copy of the *original* graph;
    // deltas are extracted against the shared snapshot.
    let baseline = WeightSnapshot::capture(graph);
    let mut cluster_opts = opts.multi.clone();
    cluster_opts.normalize = NormalizeMode::None;

    let n_clusters = clusters.len();
    type ClusterSolve = Result<(ClusterDelta, OptimizationReport), String>;
    let results: Mutex<Vec<Option<ClusterSolve>>> =
        Mutex::new((0..n_clusters).map(|_| None).collect());

    {
        // Scope the immutable borrow of `graph` held by the solver closure
        // so the merge below can borrow it mutably. Cluster solves are
        // coarse tasks, so the shared worker loop claims them one at a
        // time (chunk = 1) to keep load balanced.
        //
        // The main-thread `solve_all` span brackets the parallel section:
        // worker-thread `solve` spans land inside its time window, so
        // timeline reports attribute the round's parallel phase instead
        // of counting it as unattributed self time.
        let _solve_all = kg_telemetry::span!("votekg.cluster.solve_all", {
            clusters: n_clusters,
            workers: opts.workers,
        });
        let graph_ref: &KnowledgeGraph = graph;
        kg_sim::run_worker_loop(
            opts.workers,
            n_clusters,
            1,
            || (),
            |(), ci| {
                let _span = kg_telemetry::span!("votekg.cluster.solve", {
                    cluster: ci,
                    votes: clusters[ci].len(),
                });
                // A panicking cluster must not take down the round (or the
                // worker pool): catch it and let the merge proceed over
                // the surviving clusters.
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    let mut local = graph_ref.clone();
                    let cluster_votes = VoteSet::from_votes(
                        clusters[ci]
                            .iter()
                            .map(|&vi| votes.votes[vi].clone())
                            .collect(),
                    );
                    let rep = solve_multi_votes(&mut local, &cluster_votes, &cluster_opts);
                    let deltas = baseline.diff(&local, 1e-12).into_iter().collect();
                    let delta = ClusterDelta {
                        votes: cluster_votes.len(),
                        deltas,
                    };
                    (delta, rep)
                }));
                if solved.is_err() {
                    // Crash evidence while the rings are still fresh: dump
                    // every thread's retained events (no-op unless a crash
                    // dir is configured).
                    kg_telemetry::dump_crash("cluster-solve-panic");
                }
                results.lock()[ci] = Some(solved.map_err(panic_message));
            },
        );
    }

    let results = results.into_inner();
    let mut cluster_deltas = Vec::with_capacity(n_clusters);
    let mut failed_clusters = 0usize;
    let mut cluster_ok = vec![true; n_clusters];
    let mut excluded = vec![false; votes.len()];
    for (ci, r) in results.into_iter().enumerate() {
        match r {
            Some(Ok((delta, rep))) => {
                cluster_deltas.push(delta);
                report.discarded_votes += rep.discarded_votes;
                report.quarantined_votes += rep.quarantined_votes;
                report.solver_inner_iterations += rep.solver_inner_iterations;
                report.solver_elapsed += rep.solver_elapsed;
                // The inner report indexes votes within the cluster;
                // remap to positions in the input vote set.
                for d in rep.discards {
                    let global = clusters[ci][d.vote_index];
                    excluded[global] = true;
                    report.discards.push(DiscardedVote {
                        vote_index: global,
                        reason: d.reason,
                    });
                }
                report.solves.extend(rep.solves);
            }
            other => {
                // A worker died (None) or its solve panicked (Some(Err)).
                let error = match other {
                    Some(Err(msg)) => msg,
                    _ => "cluster solve did not complete".to_string(),
                };
                failed_clusters += 1;
                cluster_ok[ci] = false;
                kg_telemetry::tevent!(
                    kg_telemetry::Level::Warn,
                    "votekg.cluster",
                    "cluster {ci} solve failed; merging without it: {error}"
                );
                report.solves.push(SolveOutcome::Failed { error });
                // Identity delta: the failed cluster proposes no weight
                // changes, so the merge sees only the survivors.
                cluster_deltas.push(ClusterDelta {
                    votes: clusters[ci].len(),
                    deltas: HashMap::new(),
                });
            }
        }
    }

    // --- Merge ---
    let merged = {
        let _span = kg_telemetry::span!("votekg.cluster.merge", { clusters: n_clusters });
        merge_deltas(&cluster_deltas, opts.merge_rule)
    };
    let changed = apply_merged(
        graph,
        &merged,
        opts.multi.encode.weight_lo,
        opts.multi.encode.weight_hi,
    );
    report.edges_changed = changed.len();
    normalize_after(graph, &changed, opts.normalize);

    // --- Final ranks (valid votes only) ---
    let mut owner_of: Vec<Option<usize>> = vec![None; votes.len()];
    for (ci, members) in clusters.iter().enumerate() {
        for &vi in members {
            owner_of[vi] = Some(ci);
        }
    }
    for (idx, vote) in votes.votes.iter().enumerate() {
        let Some(rank_before) = ranks_before[idx] else {
            continue;
        };
        let rank_after =
            rank_of(graph, vote.query, &vote.answers, &sim_cfg, vote.best).unwrap_or(rank_before);
        let encoded = !excluded[idx] && owner_of[idx].map(|ci| cluster_ok[ci]).unwrap_or(false);
        report.outcomes.push(VoteOutcome {
            vote_index: idx,
            kind: vote.kind(),
            rank_before,
            rank_after,
            encoded,
            feasible: None,
        });
    }
    report.total_elapsed = started.elapsed();
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.cluster.rounds").incr();
        kg_telemetry::counter("votekg.cluster.merge_conflicts").add(merged.conflicted_edges as u64);
        kg_telemetry::histogram("votekg.cluster.clusters_per_round").record(clusters.len() as u64);
        if failed_clusters > 0 {
            kg_telemetry::counter("votekg.cluster.failed_clusters").add(failed_clusters as u64);
        }
        if merged.skipped_non_finite > 0 {
            kg_telemetry::counter("votekg.cluster.merge_skipped_non_finite")
                .add(merged.skipped_non_finite as u64);
        }
    }
    round_span.field("merge_conflicts", merged.conflicted_edges);
    round_span.field("failed_clusters", failed_clusters);

    SplitMergeReport {
        report,
        clusters,
        merge_conflicts: merged.conflicted_edges,
        intra_similarity,
        inter_similarity,
        failed_clusters,
    }
}

/// Renders a `catch_unwind` payload: panics raised via `panic!("...")`
/// carry a `&str` or `String`; anything else is opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("cluster solve panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("cluster solve panicked: {s}")
    } else {
        "cluster solve panicked: non-string panic payload".to_string()
    }
}

/// Mean pairwise vote similarity within and across clusters. Pairs-free
/// degenerate cases default to (1.0, 0.0): all-singleton clusterings have
/// no intra pairs ("perfectly tight"), single-cluster ones no inter pairs.
fn cluster_quality(sim: &[Vec<f64>], exemplar_of: &[usize]) -> (f64, f64) {
    let n = exemplar_of.len();
    let mut intra = (0.0, 0usize);
    let mut inter = (0.0, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            if exemplar_of[i] == exemplar_of[j] {
                intra = (intra.0 + sim[i][j], intra.1 + 1);
            } else {
                inter = (inter.0 + sim[i][j], inter.1 + 1);
            }
        }
    }
    (
        if intra.1 == 0 {
            1.0
        } else {
            intra.0 / intra.1 as f64
        },
        if inter.1 == 0 {
            0.0
        } else {
            inter.0 / inter.1 as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};
    use kg_votes::Vote;

    /// Two disjoint regions, each with its own negative vote — AP should
    /// split them into two clusters and both votes should be satisfied.
    fn two_regions() -> (KnowledgeGraph, Vec<Vote>) {
        let mut b = GraphBuilder::new();
        let mut votes = Vec::new();
        for r in 0..2 {
            let q = b.add_node(format!("q{r}"), NodeKind::Query);
            let h1 = b.add_node(format!("h1_{r}"), NodeKind::Entity);
            let h2 = b.add_node(format!("h2_{r}"), NodeKind::Entity);
            let a1 = b.add_node(format!("a1_{r}"), NodeKind::Answer);
            let a2 = b.add_node(format!("a2_{r}"), NodeKind::Answer);
            b.add_edge(q, h1, 0.5).unwrap();
            b.add_edge(q, h2, 0.5).unwrap();
            b.add_edge(h1, a1, 0.7).unwrap();
            b.add_edge(h2, a2, 0.3).unwrap();
            votes.push(Vote::new(q, vec![a1, a2], a2));
        }
        (b.build(), votes)
    }

    fn fast_opts(workers: usize) -> SplitMergeOptions {
        SplitMergeOptions {
            workers,
            normalize: NormalizeMode::None,
            ..Default::default()
        }
    }

    #[test]
    fn disjoint_votes_form_separate_clusters() {
        let (mut g, votes) = two_regions();
        let report = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &fast_opts(1));
        assert_eq!(report.clusters.len(), 2, "{:?}", report.clusters);
        assert_eq!(report.merge_conflicts, 0);
        assert_eq!(report.report.omega(), 2, "{:?}", report.report);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (mut g1, votes) = two_regions();
        let r1 = solve_split_merge(&mut g1, &VoteSet::from_votes(votes.clone()), &fast_opts(1));
        let (mut g2, votes2) = two_regions();
        let r2 = solve_split_merge(&mut g2, &VoteSet::from_votes(votes2), &fast_opts(4));
        assert_eq!(r1.report.omega(), r2.report.omega());
        // Same final weights regardless of parallelism.
        for e in g1.edges() {
            assert!(
                (g2.weight(e.edge) - e.weight).abs() < 1e-12,
                "edge {:?} differs",
                e.edge
            );
        }
        assert_eq!(votes.len(), 2);
    }

    #[test]
    fn overlapping_votes_share_a_cluster() {
        // Two votes over the same region: similarity 1 -> one cluster.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        let mut g = b.build();
        let votes = VoteSet::from_votes(vec![
            Vote::new(q, vec![a1, a2], a2),
            Vote::new(q, vec![a1, a2], a2),
        ]);
        let report = solve_split_merge(&mut g, &votes, &fast_opts(1));
        assert_eq!(report.clusters.len(), 1, "{:?}", report.clusters);
        assert!((report.avg_cluster_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vote_set_is_a_noop() {
        let (mut g, _) = two_regions();
        let snap = WeightSnapshot::capture(&g);
        let report = solve_split_merge(&mut g, &VoteSet::new(), &fast_opts(1));
        assert!(report.clusters.is_empty());
        assert_eq!(snap.squared_distance(&g), 0.0);
    }

    #[test]
    fn telemetry_records_per_phase_spans() {
        // Successor of the old `report_contains_cluster_timings`: timing
        // moved from ad-hoc report fields into telemetry spans. With one
        // worker everything runs on this test's thread, so filtering the
        // global span ring by thread id isolates this test from others
        // running concurrently in the same process.
        kg_telemetry::enable();
        let me = kg_telemetry::current_thread_id();
        let (mut g, votes) = two_regions();
        let report = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &fast_opts(1));

        let mine: Vec<_> = kg_telemetry::recent_spans()
            .into_iter()
            .filter(|s| s.thread == me)
            .collect();
        for phase in [
            "votekg.cluster.round",
            "votekg.cluster.footprint",
            "votekg.cluster.similarity",
            "votekg.cluster.ap",
            "votekg.cluster.solve_all",
            "votekg.cluster.merge",
        ] {
            assert_eq!(
                mine.iter().filter(|s| s.name == phase).count(),
                1,
                "expected exactly one {phase} span"
            );
        }
        // One solve span per cluster, nested inside the round span.
        let solves: Vec<_> = mine
            .iter()
            .filter(|s| s.name == "votekg.cluster.solve")
            .collect();
        assert_eq!(solves.len(), report.clusters.len());
        for s in &solves {
            assert!(s.path.starts_with("votekg.cluster.round"), "{}", s.path);
        }
    }
}

#[cfg(test)]
mod quality_tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeKind};
    use kg_votes::Vote;

    #[test]
    fn cluster_quality_separates_intra_and_inter() {
        // Two disjoint vote regions -> intra high (identical footprints
        // within a region would be 1.0; singletons default to 1.0), inter 0.
        let mut b = GraphBuilder::new();
        let mut votes = Vec::new();
        for r in 0..2 {
            let q1 = b.add_node(format!("q1_{r}"), NodeKind::Query);
            let q2 = b.add_node(format!("q2_{r}"), NodeKind::Query);
            let h = b.add_node(format!("h_{r}"), NodeKind::Entity);
            let a1 = b.add_node(format!("a1_{r}"), NodeKind::Answer);
            let a2 = b.add_node(format!("a2_{r}"), NodeKind::Answer);
            b.add_edge(q1, h, 1.0).unwrap();
            b.add_edge(q2, h, 1.0).unwrap();
            b.add_edge(h, a1, 0.7).unwrap();
            b.add_edge(h, a2, 0.3).unwrap();
            votes.push(Vote::new(q1, vec![a1, a2], a2));
            votes.push(Vote::new(q2, vec![a1, a2], a2));
        }
        let mut g = b.build();
        let report = solve_split_merge(
            &mut g,
            &kg_votes::VoteSet::from_votes(votes),
            &SplitMergeOptions::default(),
        );
        assert_eq!(report.clusters.len(), 2, "{:?}", report.clusters);
        // Votes within a region share the 2 answer edges of their 3-edge
        // footprints (distinct query edges): Jaccard = 2/4 = 0.5.
        assert!(
            (report.intra_similarity - 0.5).abs() < 1e-12,
            "{}",
            report.intra_similarity
        );
        assert_eq!(report.inter_similarity, 0.0);
    }
}
