//! Cluster-level fault isolation: a panicking or failing cluster solve
//! must never take down the round (or the worker pool). The merge
//! proceeds over the surviving clusters and the failed cluster's region
//! of the graph stays bitwise untouched.
//!
//! Every test installs a global fault plan via [`sgp::fault::inject`]
//! (or an empty one), whose guard also serializes the tests: the plan's
//! call counter is process-wide, so unguarded concurrent solves would
//! race. This binary is the only kg-cluster test process that injects.

use kg_cluster::{solve_split_merge, SplitMergeOptions};
use kg_graph::NodeKind;
use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, WeightSnapshot};
use kg_votes::report::SolveOutcome;
use kg_votes::{Vote, VoteSet};
use sgp::fault::{inject, FaultAction, FaultPlan};

/// Three disjoint regions, each with its own negative vote: AP splits
/// them into three singleton clusters. Returns the graph, the votes, and
/// each region's node set (for locating a region's edges afterwards).
fn three_regions() -> (KnowledgeGraph, Vec<Vote>, Vec<Vec<NodeId>>) {
    let mut b = GraphBuilder::new();
    let mut votes = Vec::new();
    let mut regions = Vec::new();
    for r in 0..3 {
        let q = b.add_node(format!("q{r}"), NodeKind::Query);
        let h1 = b.add_node(format!("h1_{r}"), NodeKind::Entity);
        let h2 = b.add_node(format!("h2_{r}"), NodeKind::Entity);
        let a1 = b.add_node(format!("a1_{r}"), NodeKind::Answer);
        let a2 = b.add_node(format!("a2_{r}"), NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        votes.push(Vote::new(q, vec![a1, a2], a2));
        regions.push(vec![q, h1, h2, a1, a2]);
    }
    (b.build(), votes, regions)
}

/// The explicit-deviation form issues exactly one solver call per
/// cluster, which makes the global call-indexed fault plan deterministic
/// with sequential workers: call `i` belongs to cluster `i`.
fn opts(workers: usize) -> SplitMergeOptions {
    let mut o = SplitMergeOptions {
        workers,
        ..Default::default()
    };
    o.multi.params.deviation_vars = true;
    // A panic consumes the whole attempt chain's budget anyway; retries
    // would shift later clusters' call indices, so disable them.
    o.multi.retry.max_retries = 0;
    o
}

#[test]
fn all_clusters_succeed_without_injection() {
    let _guard = inject(FaultPlan::new());
    let (mut g, votes, _) = three_regions();
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(1));
    assert_eq!(r.clusters.len(), 3, "{:?}", r.clusters);
    assert_eq!(r.failed_clusters, 0);
    assert_eq!(r.report.omega(), 3, "{:?}", r.report);
}

#[test]
fn panicking_cluster_is_isolated_and_survivors_merge() {
    kg_telemetry::enable();
    let failed_before = kg_telemetry::counter("votekg.cluster.failed_clusters").get();
    let _guard = inject(FaultPlan::new().at(1, FaultAction::Panic));
    let (mut g, votes, regions) = three_regions();
    let baseline = WeightSnapshot::capture(&g);
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(1));

    assert_eq!(r.failed_clusters, 1, "{:?}", r.report.solves);
    let failures: Vec<_> = r
        .report
        .solves
        .iter()
        .filter_map(|s| match s {
            SolveOutcome::Failed { error } => Some(error.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(failures.len(), 1, "{:?}", r.report.solves);
    assert!(failures[0].contains("panicked"), "{}", failures[0]);

    // Sequential workers solve clusters in order, so call 1 = cluster 1 =
    // vote 1: the survivors are satisfied, the failed vote keeps its
    // pre-round rank and is reported as not encoded.
    assert_eq!(r.report.outcomes[0].rank_after, 1, "{:?}", r.report);
    assert_eq!(r.report.outcomes[2].rank_after, 1, "{:?}", r.report);
    assert!(!r.report.outcomes[1].encoded);
    assert_eq!(
        r.report.outcomes[1].rank_after,
        r.report.outcomes[1].rank_before
    );

    // The failed cluster contributed an identity delta: none of the
    // weight changes touch its region.
    let changed: Vec<_> = baseline.diff(&g, 1e-12).into_iter().collect();
    assert!(!changed.is_empty(), "survivors must still be applied");
    for (e, _) in &changed {
        let (src, dst) = g.endpoints(*e);
        assert!(
            !regions[1].contains(&src) && !regions[1].contains(&dst),
            "failed cluster's region was modified at edge {e:?}"
        );
    }
    let failed_after = kg_telemetry::counter("votekg.cluster.failed_clusters").get();
    assert!(failed_after > failed_before, "failure counter must tick");
}

#[test]
fn panicking_cluster_dumps_crash_trace() {
    // When a crash dir is configured, the catch_unwind boundary dumps
    // every thread's retained flight-recorder events to disk.
    kg_telemetry::enable();
    let dir = std::env::temp_dir().join(format!("votekg-crash-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    kg_telemetry::set_crash_dir(Some(dir.clone()));
    let _guard = inject(FaultPlan::new().at(1, FaultAction::Panic));
    let (mut g, votes, _) = three_regions();
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(1));
    kg_telemetry::set_crash_dir(None);
    assert_eq!(r.failed_clusters, 1, "{:?}", r.report.solves);

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("votekg-crash-") && name.ends_with(".trace.json")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "{dumps:?}");
    let body = std::fs::read_to_string(&dumps[0]).unwrap();
    assert!(body.contains(kg_telemetry::TRACE_SCHEMA), "missing schema");
    assert!(
        body.contains("cluster-solve-panic"),
        "missing crash tag in dump"
    );
    assert!(
        body.contains("votekg.cluster.round"),
        "dump must retain the round's events"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_pool_survives_a_panicking_cluster() {
    // With concurrent workers the panicking call lands on an arbitrary
    // cluster, but exactly one fails, the pool keeps draining, and the
    // survivors' deltas still merge.
    let _guard = inject(FaultPlan::new().at(1, FaultAction::Panic));
    let (mut g, votes, _) = three_regions();
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(3));
    assert_eq!(r.failed_clusters, 1, "{:?}", r.report.solves);
    assert_eq!(r.report.omega(), 2, "{:?}", r.report);
    assert_eq!(
        r.report.outcomes.iter().filter(|o| !o.encoded).count(),
        1,
        "{:?}",
        r.report
    );
    for e in g.edges() {
        assert!(e.weight.is_finite());
    }
}

#[test]
fn solver_errors_stay_inside_the_cluster() {
    // An erroring solver (as opposed to a panicking one) is handled by
    // the per-solve retry/quarantine machinery inside the cluster: the
    // cluster itself completes, contributing an identity delta — no
    // failed_clusters, graph untouched, every vote quarantined.
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
    let (mut g, votes, _) = three_regions();
    let baseline = WeightSnapshot::capture(&g);
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(1));
    assert_eq!(r.failed_clusters, 0, "{:?}", r.report.solves);
    assert_eq!(r.report.quarantined_votes, 3, "{:?}", r.report);
    assert_eq!(baseline.squared_distance(&g), 0.0);
    assert_eq!(r.report.edges_changed, 0);
}

#[test]
fn poisoned_cluster_solution_is_quarantined_not_merged() {
    // A cluster whose solver returns NaN weights: the snapshot guard
    // rejects the application inside the cluster, so its delta is empty
    // and the other clusters merge normally.
    let _guard = inject(FaultPlan::new().at(1, FaultAction::NonFiniteSolution));
    let (mut g, votes, _) = three_regions();
    let r = solve_split_merge(&mut g, &VoteSet::from_votes(votes), &opts(1));
    assert_eq!(r.failed_clusters, 0, "{:?}", r.report.solves);
    assert_eq!(r.report.quarantined_votes, 1, "{:?}", r.report);
    assert_eq!(r.report.omega(), 2, "{:?}", r.report);
    for e in g.edges() {
        assert!(e.weight.is_finite());
    }
}
