//! Property-based tests for clustering and merging: affinity propagation
//! must always produce a valid partition, and the merge rules must obey
//! their algebraic contracts on arbitrary delta sets.

use kg_cluster::{
    affinity_propagation, merge_deltas, vote_similarity, ApOptions, ClusterDelta, MergeRule,
};
use kg_graph::EdgeId;
use proptest::prelude::*;
use std::collections::HashMap;

/// Random symmetric similarity matrix with unit diagonal.
fn arb_similarity() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..14).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..1.0, n * n).prop_map(move |vals| {
            let mut m = vec![vec![0.0; n]; n];
            for i in 0..n {
                m[i][i] = 1.0;
                for j in (i + 1)..n {
                    let v = vals[i * n + j];
                    m[i][j] = v;
                    m[j][i] = v;
                }
            }
            m
        })
    })
}

/// Random sorted edge-id footprints.
fn arb_footprint() -> impl Strategy<Value = Vec<EdgeId>> {
    proptest::collection::btree_set(0u32..60, 0..25)
        .prop_map(|s| s.into_iter().map(EdgeId).collect())
}

fn arb_clusters() -> impl Strategy<Value = Vec<ClusterDelta>> {
    proptest::collection::vec(
        (
            1usize..20,
            proptest::collection::hash_map(0u32..30, -0.5f64..0.5, 0..12),
        ),
        1..6,
    )
    .prop_map(|cs| {
        cs.into_iter()
            .map(|(votes, deltas)| ClusterDelta {
                votes,
                deltas: deltas.into_iter().map(|(e, d)| (EdgeId(e), d)).collect(),
            })
            .collect()
    })
}

proptest! {
    /// AP always yields a partition: every item in exactly one cluster,
    /// every cluster non-empty, exemplars self-assigned.
    #[test]
    fn ap_produces_a_partition(sim in arb_similarity()) {
        let n = sim.len();
        let res = affinity_propagation(&sim, &ApOptions::default());
        let mut seen = vec![false; n];
        for cluster in &res.clusters {
            prop_assert!(!cluster.is_empty());
            for &i in cluster {
                prop_assert!(!seen[i], "item {i} appears twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "unassigned items");
        for (i, &k) in res.exemplar_of.iter().enumerate() {
            prop_assert!(k < n);
            prop_assert_eq!(res.exemplar_of[k], k, "exemplar of {} not self-assigned", i);
        }
    }

    /// Vote similarity is a symmetric Jaccard in [0, 1], with
    /// self-similarity 1 for non-empty footprints.
    #[test]
    fn vote_similarity_is_jaccard(a in arb_footprint(), b in arb_footprint()) {
        let s = vote_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, vote_similarity(&b, &a));
        if !a.is_empty() {
            prop_assert_eq!(vote_similarity(&a, &a), 1.0);
        }
        if s == 1.0 && !a.is_empty() {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Merge invariants: the merged delta for each edge equals one of the
    /// proposed deltas (extremal / last-writer rules), conflict counting
    /// is exact, and single-proposer edges pass through unchanged.
    #[test]
    fn merge_respects_proposals(clusters in arb_clusters()) {
        for rule in [MergeRule::VotingExtremal, MergeRule::LastWriter] {
            let out = merge_deltas(&clusters, rule);
            let mut proposals: HashMap<EdgeId, Vec<f64>> = HashMap::new();
            for c in &clusters {
                for (&e, &d) in &c.deltas {
                    proposals.entry(e).or_default().push(d);
                }
            }
            prop_assert_eq!(out.merged.len(), proposals.len());
            let conflicted = proposals.values().filter(|v| v.len() > 1).count();
            prop_assert_eq!(out.conflicted_edges, conflicted);
            for (e, ds) in &proposals {
                let merged = out.merged[e];
                prop_assert!(
                    ds.iter().any(|d| (d - merged).abs() < 1e-12),
                    "merged {merged} not among proposals {ds:?}"
                );
                if ds.len() == 1 {
                    prop_assert_eq!(merged, ds[0]);
                }
            }
        }
    }

    /// The weighted-mean rule stays inside the convex hull of proposals.
    #[test]
    fn weighted_mean_is_in_hull(clusters in arb_clusters()) {
        let out = merge_deltas(&clusters, MergeRule::WeightedMean);
        let mut proposals: HashMap<EdgeId, Vec<f64>> = HashMap::new();
        for c in &clusters {
            for (&e, &d) in &c.deltas {
                proposals.entry(e).or_default().push(d);
            }
        }
        for (e, ds) in proposals {
            let merged = out.merged[&e];
            let lo = ds.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(merged >= lo - 1e-12 && merged <= hi + 1e-12);
        }
    }

    /// The extremal rule picks the max for positive-majority edges and
    /// the min otherwise (the paper's Fig. 4 semantics).
    #[test]
    fn extremal_rule_follows_weighted_sign(clusters in arb_clusters()) {
        let out = merge_deltas(&clusters, MergeRule::VotingExtremal);
        let mut proposals: HashMap<EdgeId, Vec<(usize, f64)>> = HashMap::new();
        for c in &clusters {
            for (&e, &d) in &c.deltas {
                proposals.entry(e).or_default().push((c.votes, d));
            }
        }
        for (e, ds) in proposals {
            if ds.len() < 2 {
                continue;
            }
            let weighted: f64 = ds.iter().map(|&(n, d)| n as f64 * d).sum();
            let merged = out.merged[&e];
            let expect = if weighted >= 0.0 {
                ds.iter().map(|&(_, d)| d).fold(f64::NEG_INFINITY, f64::max)
            } else {
                ds.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min)
            };
            prop_assert!((merged - expect).abs() < 1e-12);
        }
    }
}
