//! Knowledge-graph question answering (the application layer of the
//! paper's Section VII-B experiments).
//!
//! Pipeline: a corpus of HELP documents is tokenized; frequent terms form
//! the entity vocabulary; entity co-occurrence inside documents yields the
//! conditional-probability edge weights `w(v_i, v_j) = #(v_i,v_j)/#(v_i)`
//! of Section III-A; each document becomes an answer node linked from the
//! entities it mentions. Questions become query nodes linked to the
//! entities they mention, and answers are ranked by extended inverse
//! P-distance.
//!
//! The [`ir`] module provides the information-retrieval baseline of
//! Table V: rank documents by entity-overlap coincidence with the
//! question, no graph involved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod extract;
pub mod ir;
pub mod system;

pub use corpus::{Corpus, Document};
pub use extract::{extract_entity_counts, tokenize, Vocabulary, VocabularyOptions};
pub use ir::ir_rank;
pub use system::{QaSystem, QaSystemOptions};
