//! The information-retrieval baseline of Table V: rank documents by the
//! coincidence rate of their entities with the question's — no knowledge
//! graph involved.

use crate::corpus::Corpus;
use crate::extract::{extract_entity_counts, Vocabulary};

/// Ranks documents for a question by Jaccard coincidence of entity sets,
/// returning `(document ordinal, score)` sorted by decreasing score with
/// the ordinal as tie-break. Documents sharing no entity score 0 but are
/// still listed (after all scored ones), matching a real IR system that
/// always returns `k` results.
pub fn ir_rank(question: &str, corpus: &Corpus, vocab: &Vocabulary, k: usize) -> Vec<(usize, f64)> {
    let q_entities: std::collections::HashSet<usize> = extract_entity_counts(question, vocab)
        .into_iter()
        .map(|(e, _)| e)
        .collect();

    let mut scored: Vec<(usize, f64)> = corpus
        .docs
        .iter()
        .enumerate()
        .map(|(d, doc)| {
            let d_entities: std::collections::HashSet<usize> =
                extract_entity_counts(&doc.full_text(), vocab)
                    .into_iter()
                    .map(|(e, _)| e)
                    .collect();
            let inter = q_entities.intersection(&d_entities).count();
            let union = q_entities.union(&d_entities).count();
            let score = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            (d, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Document;

    fn fixture() -> (Corpus, Vocabulary) {
        let mut c = Corpus::new();
        c.push(Document::new("a", "email outbox", "email outlook outbox"));
        c.push(Document::new("b", "refund order", "refund order rules"));
        c.push(Document::new("c", "cart", "cart order"));
        let vocab = Vocabulary::from_terms(
            [
                "email", "outlook", "outbox", "refund", "order", "rules", "cart",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        (c, vocab)
    }

    #[test]
    fn ranks_by_overlap() {
        let (c, v) = fixture();
        let ranked = ir_rank("email outbox problem", &c, &v, 3);
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn returns_k_results_even_with_zero_scores() {
        let (c, v) = fixture();
        let ranked = ir_rank("zebra", &c, &v, 3);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.iter().all(|&(_, s)| s == 0.0));
    }

    #[test]
    fn truncates_to_k() {
        let (c, v) = fixture();
        assert_eq!(ir_rank("order", &c, &v, 2).len(), 2);
    }

    #[test]
    fn shared_order_entity_scores_both_docs() {
        let (c, v) = fixture();
        let ranked = ir_rank("order", &c, &v, 3);
        // Docs b and c both contain "order"; doc a does not.
        let scores: std::collections::HashMap<usize, f64> = ranked.into_iter().collect();
        assert!(scores[&1] > 0.0);
        assert!(scores[&2] > 0.0);
        assert_eq!(scores[&0], 0.0);
        // Doc c ("cart order": 2 entities) has higher Jaccard than doc b (3 entities).
        assert!(scores[&2] > scores[&1]);
    }
}
