//! The Q&A system: corpus → knowledge graph → ranked answers.

use crate::corpus::Corpus;
use crate::extract::{extract_entity_counts, Vocabulary, VocabularyOptions};
use kg_graph::{AugmentSpec, Augmented, GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use kg_sim::topk::{rank_answers, RankedAnswer};
use kg_sim::SimilarityConfig;
use serde::{Deserialize, Serialize};

/// Construction options for [`QaSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QaSystemOptions {
    /// Vocabulary filtering.
    pub vocab: VocabularyOptions,
    /// Similarity parameters used for ranking.
    pub sim: SimilarityConfig,
}

/// A knowledge-graph-backed question-answering system.
///
/// Holds the augmented graph (entities + one answer node per document +
/// any registered query nodes). The graph is public so the vote-based
/// optimizers can adjust its weights in place.
#[derive(Debug, Clone)]
pub struct QaSystem {
    /// The augmented knowledge graph.
    pub graph: KnowledgeGraph,
    /// The entity lexicon (entity index == entity node id).
    pub vocab: Vocabulary,
    /// Answer node per corpus document, in document order.
    pub answers: Vec<NodeId>,
    /// Query nodes registered so far.
    pub queries: Vec<NodeId>,
    /// Similarity parameters.
    pub sim: SimilarityConfig,
}

impl QaSystem {
    /// Builds the system from a corpus: frequency-filtered vocabulary,
    /// document-level co-occurrence weights
    /// `w(v_i, v_j) = #(v_i, v_j) / #(v_i)` (counts over documents), and
    /// one answer node per document linked from its entities.
    pub fn build(corpus: &Corpus, opts: &QaSystemOptions) -> Self {
        let vocab = Vocabulary::build(corpus, &opts.vocab);
        let n = vocab.len();

        // Document-level occurrence and co-occurrence counts.
        let mut occ = vec![0u64; n];
        let mut cooc: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let mut doc_entities: Vec<Vec<(usize, f64)>> = Vec::with_capacity(corpus.len());
        for doc in &corpus.docs {
            let counts = extract_entity_counts(&doc.full_text(), &vocab);
            let present: Vec<usize> = counts.iter().map(|&(e, _)| e).collect();
            for &e in &present {
                occ[e] += 1;
            }
            for (ai, &a) in present.iter().enumerate() {
                for &b in present.iter().skip(ai + 1) {
                    *cooc.entry((a, b)).or_insert(0) += 1;
                    *cooc.entry((b, a)).or_insert(0) += 1;
                }
            }
            doc_entities.push(counts);
        }

        // Entity graph.
        let mut b = GraphBuilder::with_capacity(n, cooc.len());
        for i in 0..n {
            b.add_node(vocab.term(i), NodeKind::Entity);
        }
        let mut pairs: Vec<((usize, usize), u64)> = cooc.into_iter().collect();
        pairs.sort_unstable(); // deterministic edge ids
        for ((i, j), count) in pairs {
            if occ[i] > 0 {
                b.add_edge(
                    NodeId(i as u32),
                    NodeId(j as u32),
                    count as f64 / occ[i] as f64,
                )
                .expect("counts produce valid weights");
            }
        }
        let base = b.build();

        // Answer nodes.
        let mut spec = AugmentSpec::new();
        for (d, counts) in doc_entities.iter().enumerate() {
            spec.add_answer(
                format!("doc:{}", corpus.docs[d].id),
                counts.iter().map(|&(e, c)| (NodeId(e as u32), c)).collect(),
            );
        }
        let aug = Augmented::build(&base, &spec).expect("entity ids are in range");

        QaSystem {
            graph: aug.graph,
            vocab,
            answers: aug.answer_nodes,
            queries: Vec::new(),
            sim: opts.sim,
        }
    }

    /// Registers a batch of questions as query nodes (rebuilding the
    /// augmented graph once; current edge weights are preserved). Returns
    /// the new query nodes, in question order.
    pub fn register_queries(&mut self, questions: &[String]) -> Vec<NodeId> {
        let mut spec = AugmentSpec::new();
        for (i, q) in questions.iter().enumerate() {
            let counts = extract_entity_counts(q, &self.vocab);
            spec.add_query(
                format!("q{}:{}", self.queries.len() + i, truncate(q, 40)),
                counts.iter().map(|&(e, c)| (NodeId(e as u32), c)).collect(),
            );
        }
        let aug = Augmented::build(&self.graph, &spec).expect("entity ids are in range");
        self.graph = aug.graph;
        self.queries.extend(aug.query_nodes.iter().copied());
        aug.query_nodes
    }

    /// Ranks all documents for a registered query node.
    pub fn rank(&self, query: NodeId, k: usize) -> Vec<RankedAnswer> {
        rank_answers(&self.graph, query, &self.answers, &self.sim, k)
    }

    /// Convenience: register a single question and rank the documents.
    pub fn ask(&mut self, question: &str, k: usize) -> (NodeId, Vec<RankedAnswer>) {
        let q = self.register_queries(std::slice::from_ref(&question.to_string()))[0];
        let ranked = self.rank(q, k);
        (q, ranked)
    }

    /// The corpus ordinal of an answer node, if it is one.
    pub fn document_of(&self, node: NodeId) -> Option<usize> {
        self.answers.iter().position(|&a| a == node)
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Document;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.push(Document::new(
            "outbox",
            "Email stuck in outbox",
            "When an email message is stuck in the outbox, outlook cannot send the email message",
        ));
        c.push(Document::new(
            "send-fail",
            "Outlook cannot send message",
            "outlook send message failure email account settings",
        ));
        c.push(Document::new(
            "refund",
            "Order refund rules",
            "refund an order refund rules apply order",
        ));
        c.push(Document::new(
            "cart",
            "Shopping cart help",
            "add an order to the cart, cart rules",
        ));
        c
    }

    fn build() -> QaSystem {
        let opts = QaSystemOptions {
            vocab: VocabularyOptions {
                min_doc_count: 2,
                max_doc_fraction: 0.9,
                min_token_len: 3,
            },
            sim: SimilarityConfig::default(),
        };
        QaSystem::build(&corpus(), &opts)
    }

    #[test]
    fn build_creates_answer_per_document() {
        let qa = build();
        assert_eq!(qa.answers.len(), 4);
        for (&a, label) in qa
            .answers
            .iter()
            .zip(["outbox", "send-fail", "refund", "cart"])
        {
            assert_eq!(qa.graph.kind(a), NodeKind::Answer);
            assert_eq!(qa.graph.label(a), format!("doc:{label}"));
        }
    }

    #[test]
    fn cooccurrence_weights_are_conditional_probabilities() {
        let qa = build();
        // "email" and "outlook" co-occur in 2 docs; each occurs in 2 docs
        // => w = 1.0 both ways.
        let e = qa.graph.find_node("email").unwrap();
        let o = qa.graph.find_node("outlook").unwrap();
        assert!((qa.graph.weight_between(e, o) - 1.0).abs() < 1e-12);
        assert!((qa.graph.weight_between(o, e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relevant_question_ranks_relevant_doc_first() {
        let mut qa = build();
        let (_, ranked) = qa.ask("email stuck outlook outbox", 4);
        assert!(!ranked.is_empty());
        let top_doc = qa.document_of(ranked[0].node).unwrap();
        // Expect one of the two email docs, not refund/cart.
        assert!(top_doc <= 1, "ranked {ranked:?}");
        assert!(ranked[0].score > 0.0);
    }

    #[test]
    fn off_topic_question_scores_zero() {
        let mut qa = build();
        let (_, ranked) = qa.ask("completely unrelated zebra talk", 4);
        assert!(ranked.iter().all(|r| r.score == 0.0));
    }

    #[test]
    fn register_queries_preserves_weights() {
        let mut qa = build();
        let before: Vec<f64> = qa.graph.weights().to_vec();
        qa.register_queries(&["refund order".to_string()]);
        // All pre-existing edge weights unchanged (ids preserved).
        assert_eq!(&qa.graph.weights()[..before.len()], before.as_slice());
    }

    #[test]
    fn multiple_queries_register_in_order() {
        let mut qa = build();
        let qs = qa.register_queries(&["email outbox".to_string(), "refund order".to_string()]);
        assert_eq!(qs.len(), 2);
        assert_eq!(qa.queries, qs);
        assert!(qs[0] < qs[1]);
    }

    #[test]
    fn ranking_shifts_after_weight_change() {
        let mut qa = build();
        let (q, ranked) = qa.ask("refund order rules", 4);
        let refund_doc = qa.answers[2];
        let cart_doc = qa.answers[3];
        let r_refund = ranked.iter().find(|r| r.node == refund_doc).unwrap().rank;
        let r_cart = ranked.iter().find(|r| r.node == cart_doc).unwrap().rank;
        assert!(r_refund < r_cart, "{ranked:?}");
        // Crush every edge into the refund doc; cart should overtake.
        let weak: Vec<_> = qa.graph.in_edges(refund_doc).map(|e| e.edge).collect();
        for e in weak {
            qa.graph.set_weight(e, 1e-6).unwrap();
        }
        let ranked2 = qa.rank(q, 4);
        let r_refund2 = ranked2.iter().find(|r| r.node == refund_doc).unwrap().rank;
        assert!(r_refund2 > r_refund, "{ranked2:?}");
    }
}
