//! Entity extraction: tokenizer + corpus-derived vocabulary.
//!
//! The paper extracts technical-term entities with a sequential labelling
//! model; offline, the closest faithful substitute is a frequency-filtered
//! term vocabulary — it produces the same *shape* of data (a set of
//! entities per text with occurrence counts) that every downstream stage
//! consumes.

use crate::corpus::Corpus;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lowercases and splits text into alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|ch: char| !ch.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Vocabulary construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VocabularyOptions {
    /// A term must occur in at least this many documents.
    pub min_doc_count: usize,
    /// A term occurring in more than this fraction of documents is
    /// treated as a stop word.
    pub max_doc_fraction: f64,
    /// Minimum token length in characters.
    pub min_token_len: usize,
}

impl Default for VocabularyOptions {
    fn default() -> Self {
        VocabularyOptions {
            min_doc_count: 2,
            max_doc_fraction: 0.5,
            min_token_len: 2,
        }
    }
}

/// The entity lexicon: term → dense entity index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocabulary {
    /// Builds the vocabulary from a corpus by document frequency.
    pub fn build(corpus: &Corpus, opts: &VocabularyOptions) -> Self {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for doc in &corpus.docs {
            let mut seen: Vec<String> = tokenize(&doc.full_text());
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *doc_freq.entry(t).or_insert(0) += 1;
            }
        }
        let max_docs = (corpus.len() as f64 * opts.max_doc_fraction).ceil() as usize;
        let mut terms: Vec<String> = doc_freq
            .into_iter()
            .filter(|(t, df)| {
                t.len() >= opts.min_token_len && *df >= opts.min_doc_count && *df <= max_docs
            })
            .map(|(t, _)| t)
            .collect();
        terms.sort_unstable(); // deterministic entity ids
        let index = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocabulary { terms, index }
    }

    /// Builds a vocabulary from an explicit term list (used by synthetic
    /// datasets where the lexicon is known).
    pub fn from_terms(terms: Vec<String>) -> Self {
        let index = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocabulary { terms, index }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term of an entity index.
    pub fn term(&self, idx: usize) -> &str {
        &self.terms[idx]
    }

    /// Entity index of a term, if in vocabulary.
    pub fn entity(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// All terms in index order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }
}

/// Extracts `(entity index, occurrence count)` pairs from a text — the
/// `#(q, v_i)` counts of Section III-A. Order follows first occurrence.
pub fn extract_entity_counts(text: &str, vocab: &Vocabulary) -> Vec<(usize, f64)> {
    let mut counts: HashMap<usize, f64> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for token in tokenize(text) {
        if let Some(e) = vocab.entity(&token) {
            let c = counts.entry(e).or_insert(0.0);
            if *c == 0.0 {
                order.push(e);
            }
            *c += 1.0;
        }
    }
    order.into_iter().map(|e| (e, counts[&e])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Document;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.push(Document::new(
            "d0",
            "Outlook email",
            "email stuck in outbox",
        ));
        c.push(Document::new(
            "d1",
            "Send message",
            "outlook cannot send email",
        ));
        c.push(Document::new("d2", "Refund rules", "refund of the order"));
        c.push(Document::new(
            "d3",
            "Order refund",
            "how to refund an order",
        ));
        (0..4).for_each(|_| {}); // keep clippy quiet about unused range
        c
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Can't send E-Mail!"),
            vec!["can", "t", "send", "e", "mail"]
        );
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn vocabulary_filters_by_doc_frequency() {
        let opts = VocabularyOptions {
            min_doc_count: 2,
            max_doc_fraction: 0.75,
            min_token_len: 2,
        };
        let v = Vocabulary::build(&corpus(), &opts);
        // "email" (d0, d1), "outlook" (d0, d1), "refund" (d2, d3),
        // "order" (d2, d3) survive; "stuck" (1 doc) and "to" (1 doc) do not.
        assert!(v.entity("email").is_some());
        assert!(v.entity("outlook").is_some());
        assert!(v.entity("refund").is_some());
        assert!(v.entity("stuck").is_none());
    }

    #[test]
    fn vocabulary_drops_near_stopwords() {
        let mut c = Corpus::new();
        for i in 0..10 {
            c.push(Document::new(
                format!("d{i}"),
                "the",
                format!("the common word plus rare{i} rare{i}"),
            ));
        }
        let opts = VocabularyOptions {
            min_doc_count: 2,
            max_doc_fraction: 0.5,
            min_token_len: 2,
        };
        let v = Vocabulary::build(&c, &opts);
        // "the", "common", "word", "plus" appear in all 10 docs (> 50%).
        assert!(v.entity("the").is_none());
        assert!(v.entity("common").is_none());
    }

    #[test]
    fn entity_ids_are_deterministic_and_sorted() {
        let v = Vocabulary::build(&corpus(), &VocabularyOptions::default());
        let mut sorted = v.terms().to_vec();
        sorted.sort_unstable();
        assert_eq!(v.terms(), sorted.as_slice());
        for (i, t) in v.terms().iter().enumerate() {
            assert_eq!(v.entity(t), Some(i));
            assert_eq!(v.term(i), t);
        }
    }

    #[test]
    fn extract_counts_occurrences() {
        let v = Vocabulary::from_terms(vec!["email".into(), "outlook".into()]);
        let counts = extract_entity_counts("Email email OUTLOOK unknown", &v);
        assert_eq!(counts, vec![(0, 2.0), (1, 1.0)]);
    }

    #[test]
    fn extract_on_no_match_is_empty() {
        let v = Vocabulary::from_terms(vec!["email".into()]);
        assert!(extract_entity_counts("nothing relevant here", &v).is_empty());
    }
}
