//! Corpus model: the HELP documents a Q&A system answers with.

use serde::{Deserialize, Serialize};

/// One answer document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Stable identifier (also used as the answer-node label).
    pub id: String,
    /// Short title.
    pub title: String,
    /// Body text.
    pub text: String,
}

impl Document {
    /// Creates a document.
    pub fn new(id: impl Into<String>, title: impl Into<String>, text: impl Into<String>) -> Self {
        Document {
            id: id.into(),
            title: title.into(),
            text: text.into(),
        }
    }

    /// Title and body concatenated — the text entities are extracted from.
    pub fn full_text(&self) -> String {
        format!("{} {}", self.title, self.text)
    }
}

/// An ordered collection of documents.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// The documents; the index in this vector is the document's ordinal.
    pub docs: Vec<Document>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document and returns its ordinal.
    pub fn push(&mut self, doc: Document) -> usize {
        self.docs.push(doc);
        self.docs.len() - 1
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Looks up a document by id.
    pub fn find(&self, id: &str) -> Option<usize> {
        self.docs.iter().position(|d| d.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_find() {
        let mut c = Corpus::new();
        let i = c.push(Document::new(
            "doc-1",
            "Stuck email",
            "Outbox message stuck",
        ));
        assert_eq!(i, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.find("doc-1"), Some(0));
        assert_eq!(c.find("nope"), None);
    }

    #[test]
    fn full_text_includes_title() {
        let d = Document::new("d", "Title words", "body words");
        assert_eq!(d.full_text(), "Title words body words");
    }
}
