//! Property-based tests for the Q&A layer: tokenizer and vocabulary
//! invariants, graph-construction contracts, and ranking determinism on
//! random corpora.

use kg_qa::{
    extract_entity_counts, ir_rank, tokenize, Corpus, Document, QaSystem, QaSystemOptions,
    Vocabulary, VocabularyOptions,
};
use proptest::prelude::*;

/// Random corpora built from a closed word pool (so vocabularies are
/// non-trivial and deterministic).
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    let word = prop_oneof![
        Just("email"),
        Just("outbox"),
        Just("outlook"),
        Just("refund"),
        Just("order"),
        Just("cart"),
        Just("account"),
        Just("login"),
        Just("delivery"),
        Just("package"),
        Just("password"),
        Just("invoice"),
    ];
    proptest::collection::vec(proptest::collection::vec(word, 3..15), 2..12).prop_map(|docs| {
        let mut c = Corpus::new();
        for (i, words) in docs.into_iter().enumerate() {
            c.push(Document::new(
                format!("d{i}"),
                format!("doc {i}"),
                words.join(" "),
            ));
        }
        c
    })
}

fn opts() -> QaSystemOptions {
    QaSystemOptions {
        vocab: VocabularyOptions {
            min_doc_count: 1,
            max_doc_fraction: 1.0,
            min_token_len: 2,
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tokenization is idempotent through re-joining: tokens contain only
    /// lowercase alphanumerics and no empties.
    #[test]
    fn tokenize_normalizes(text in ".{0,80}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
    }

    /// Entity extraction counts match a naive recount, and every reported
    /// entity is in vocabulary.
    #[test]
    fn extraction_counts_are_exact(corpus in arb_corpus()) {
        let vocab = Vocabulary::build(&corpus, &opts().vocab);
        for doc in &corpus.docs {
            let counts = extract_entity_counts(&doc.full_text(), &vocab);
            for &(e, c) in &counts {
                prop_assert!(e < vocab.len());
                let term = vocab.term(e);
                let naive = tokenize(&doc.full_text())
                    .iter()
                    .filter(|t| t == &term)
                    .count() as f64;
                prop_assert_eq!(c, naive, "count mismatch for {}", term);
            }
            // No duplicate entities in the report.
            let mut ids: Vec<usize> = counts.iter().map(|&(e, _)| e).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), counts.len());
        }
    }

    /// The built QA graph has one answer per document, every edge weight
    /// is a valid conditional probability, and construction is
    /// deterministic.
    #[test]
    fn qa_system_construction_invariants(corpus in arb_corpus()) {
        let qa = QaSystem::build(&corpus, &opts());
        prop_assert_eq!(qa.answers.len(), corpus.len());
        for e in qa.graph.edges() {
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0 + 1e-12, "w = {}", e.weight);
        }
        let qa2 = QaSystem::build(&corpus, &opts());
        prop_assert_eq!(
            kg_graph::io::to_json(&qa.graph),
            kg_graph::io::to_json(&qa2.graph)
        );
    }

    /// Asking the text of an existing document ranks that document (or a
    /// doc with identical entity set) at the top, for both KG and IR.
    #[test]
    fn self_query_ranks_self_first(corpus in arb_corpus(), pick in 0usize..12) {
        let d = pick % corpus.len();
        let mut qa = QaSystem::build(&corpus, &opts());
        let text = corpus.docs[d].text.clone();
        let vocab = qa.vocab.clone();
        prop_assume!(!extract_entity_counts(&text, &vocab).is_empty());

        let (_, ranked) = qa.ask(&text, corpus.len());
        prop_assume!(!ranked.is_empty() && ranked[0].score > 0.0);
        // Scores are non-increasing and the queried document itself gets a
        // positive score (it is reachable in two hops via its own
        // entities). Note the *top* answer may share no direct entity —
        // KG similarity legitimately flows through co-occurrence paths.
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        let self_entry = ranked
            .iter()
            .find(|r| qa.document_of(r.node) == Some(d))
            .expect("own document is ranked");
        prop_assert!(self_entry.score > 0.0);

        // IR's top answer must share entities with the query by definition.
        let ir = ir_rank(&text, &corpus, &vocab, corpus.len());
        prop_assert!(ir[0].1 > 0.0);
    }
}
