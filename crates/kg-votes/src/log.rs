//! Append-only vote log persistence (JSON-lines).
//!
//! A deployed system collects votes continuously and optimizes in
//! batches; the log is the durable buffer in between. One JSON object per
//! line keeps appends atomic-ish and the file greppable; node ids are
//! only meaningful relative to the graph whose `graph_fingerprint` is
//! recorded in the header line.

use crate::vote::{Vote, VoteSet};
use kg_graph::KnowledgeGraph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufReader, Read, Write};

/// First line of every log: which graph the node ids refer to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHeader {
    /// Format version.
    pub version: u32,
    /// Fingerprint of the graph the votes were recorded against.
    pub graph_fingerprint: GraphFingerprint,
}

/// A cheap structural fingerprint: counts plus a weight checksum. Not
/// cryptographic — it guards against accidentally replaying a log onto
/// the wrong graph, not against adversaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphFingerprint {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Order-sensitive checksum over the edge topology.
    pub topology_hash: u64,
}

impl GraphFingerprint {
    /// Computes the fingerprint of a graph. Weights are excluded on
    /// purpose: optimization changes them, and a log must stay replayable
    /// onto the optimized graph.
    pub fn of(graph: &KnowledgeGraph) -> Self {
        // FNV-1a over the edge endpoint list.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for e in graph.edges() {
            mix(e.from.0 as u64);
            mix(e.to.0 as u64);
        }
        GraphFingerprint {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            topology_hash: h,
        }
    }
}

/// Errors from reading a vote log.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The log header references a different graph.
    GraphMismatch {
        /// Fingerprint stored in the log.
        expected: GraphFingerprint,
        /// Fingerprint of the supplied graph.
        actual: GraphFingerprint,
    },
    /// The log is empty (missing header).
    Empty,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "vote log I/O error: {e}"),
            LogError::Malformed { line, message } => {
                write!(f, "vote log line {line} malformed: {message}")
            }
            LogError::GraphMismatch { expected, actual } => write!(
                f,
                "vote log was recorded against a different graph: the log header \
                 says {} nodes, {} edges (topology hash {:#018x}) but the supplied \
                 graph has {} nodes, {} edges (topology hash {:#018x}); replaying \
                 node ids onto the wrong graph would corrupt it",
                expected.nodes,
                expected.edges,
                expected.topology_hash,
                actual.nodes,
                actual.edges,
                actual.topology_hash
            ),
            LogError::Empty => write!(f, "vote log is empty"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Writes a header plus votes as JSON lines.
pub fn write_log(
    mut w: impl Write,
    graph: &KnowledgeGraph,
    votes: &VoteSet,
) -> Result<(), LogError> {
    let header = LogHeader {
        version: 1,
        graph_fingerprint: GraphFingerprint::of(graph),
    };
    writeln!(
        w,
        "{}",
        serde_json::to_string(&header).expect("header serializes")
    )?;
    for vote in &votes.votes {
        writeln!(
            w,
            "{}",
            serde_json::to_string(vote).expect("votes serialize")
        )?;
    }
    Ok(())
}

/// A trailing partial line that was dropped during recovery: the write
/// was torn mid-append (crash or full disk before the final `\n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornLine {
    /// 1-based line number of the dropped partial line.
    pub line: usize,
    /// Bytes of partial content dropped.
    pub bytes: usize,
}

/// Reads a log, validating the header against `graph`. Equivalent to
/// [`read_log_reporting`] with the torn-tail report discarded.
pub fn read_log(r: impl Read, graph: &KnowledgeGraph) -> Result<VoteSet, LogError> {
    read_log_reporting(r, graph).map(|(votes, _)| votes)
}

/// Reads a log, tolerating a torn final line.
///
/// A crash mid-append leaves the file's last line without its terminating
/// newline. Every *newline-terminated* line was fully written, so a
/// malformed one is real corruption and stays a hard
/// [`LogError::Malformed`]; an *unterminated* final line that fails to
/// parse is the expected torn-write signature and is dropped and reported
/// instead of making the whole log unreadable. An unterminated line that
/// still parses is kept (some writers simply omit the final newline). A
/// file holding only a torn header has no committed content and reads as
/// [`LogError::Empty`].
pub fn read_log_reporting(
    r: impl Read,
    graph: &KnowledgeGraph,
) -> Result<(VoteSet, Option<TornLine>), LogError> {
    let mut raw = Vec::new();
    BufReader::new(r).read_to_end(&mut raw)?;
    if raw.is_empty() {
        return Err(LogError::Empty);
    }
    let terminated = raw.last() == Some(&b'\n');
    let mut lines: Vec<&[u8]> = raw.split(|&b| b == b'\n').collect();
    if terminated {
        // Drop the empty piece after the final newline; every remaining
        // line is complete.
        lines.pop();
    }
    let last_idx = lines.len() - 1;
    // Decode one line; `complete` decides whether failure is corruption
    // (Err) or a tolerable torn tail (Ok(None)).
    let decode = |idx: usize, complete: bool| -> Result<Option<&str>, LogError> {
        match std::str::from_utf8(lines[idx]) {
            Ok(s) => Ok(Some(s.strip_suffix('\r').unwrap_or(s))),
            Err(e) if complete => Err(LogError::Malformed {
                line: idx + 1,
                message: format!("invalid UTF-8: {e}"),
            }),
            Err(_) => Ok(None),
        }
    };
    let torn_report = |idx: usize| TornLine {
        line: idx + 1,
        bytes: lines[idx].len(),
    };

    let header_complete = terminated || last_idx > 0;
    let header: LogHeader = match decode(0, header_complete)? {
        Some(s) => match serde_json::from_str(s) {
            Ok(h) => h,
            Err(_) if !header_complete => return Err(LogError::Empty),
            Err(e) => {
                return Err(LogError::Malformed {
                    line: 1,
                    message: e.to_string(),
                })
            }
        },
        // Torn, non-UTF-8 header: nothing was ever committed.
        None => return Err(LogError::Empty),
    };
    let actual = GraphFingerprint::of(graph);
    if header.graph_fingerprint != actual {
        return Err(LogError::GraphMismatch {
            expected: header.graph_fingerprint,
            actual,
        });
    }

    let mut votes = VoteSet::new();
    let mut torn = None;
    for idx in 1..lines.len() {
        let complete = terminated || idx < last_idx;
        let Some(s) = decode(idx, complete)? else {
            torn = Some(torn_report(idx));
            continue;
        };
        if s.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Vote>(s) {
            Ok(vote) => votes.push(vote),
            Err(_) if !complete => torn = Some(torn_report(idx)),
            Err(e) => {
                return Err(LogError::Malformed {
                    line: idx + 1,
                    message: e.to_string(),
                })
            }
        }
    }
    Ok((votes, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId, NodeKind};

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        let c = b.add_node("c", NodeKind::Answer);
        b.add_edge(q, a, 0.6).unwrap();
        b.add_edge(q, c, 0.4).unwrap();
        b.build()
    }

    fn votes() -> VoteSet {
        VoteSet::from_votes(vec![
            Vote::new(NodeId(0), vec![NodeId(1), NodeId(2)], NodeId(2)),
            Vote::new(NodeId(0), vec![NodeId(1), NodeId(2)], NodeId(1)),
        ])
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let g = graph();
        let v = votes();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &v).unwrap();
        let back = read_log(buf.as_slice(), &g).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn fingerprint_ignores_weights_but_not_topology() {
        let mut g = graph();
        let f1 = GraphFingerprint::of(&g);
        g.set_weight(kg_graph::EdgeId(0), 0.9).unwrap();
        assert_eq!(GraphFingerprint::of(&g), f1);

        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, a, 0.6).unwrap();
        assert_ne!(GraphFingerprint::of(&b.build()), f1);
    }

    #[test]
    fn mismatched_graph_is_rejected() {
        let g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        let other = {
            let mut b = GraphBuilder::new();
            let q = b.add_node("q", NodeKind::Query);
            let a = b.add_node("a", NodeKind::Answer);
            b.add_edge(q, a, 1.0).unwrap();
            b.build()
        };
        assert!(matches!(
            read_log(buf.as_slice(), &other),
            Err(LogError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn malformed_line_reports_position() {
        let g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        buf.extend_from_slice(b"not json\n");
        match read_log(buf.as_slice(), &g) {
            Err(LogError::Malformed { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_log_is_an_error() {
        let g = graph();
        assert!(matches!(read_log(&b""[..], &g), Err(LogError::Empty)));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_log(buf.as_slice(), &g).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_reported() {
        // Crash mid-append: the last vote line has no terminating newline
        // and is cut mid-JSON. The committed prefix must still read.
        let g = graph();
        let v = votes();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &v).unwrap();
        buf.extend_from_slice(br#"{"query":0,"answers":[1,"#);
        let (back, torn) = read_log_reporting(buf.as_slice(), &g).unwrap();
        assert_eq!(back, v);
        assert_eq!(torn, Some(TornLine { line: 4, bytes: 24 }));
    }

    #[test]
    fn torn_final_line_with_garbage_bytes_is_tolerated() {
        // Torn tails can carry arbitrary bytes (preallocated blocks,
        // partial sector writes), including invalid UTF-8.
        let g = graph();
        let v = votes();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &v).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE, 0x00]);
        let (back, torn) = read_log_reporting(buf.as_slice(), &g).unwrap();
        assert_eq!(back, v);
        assert_eq!(torn, Some(TornLine { line: 4, bytes: 3 }));
    }

    #[test]
    fn unterminated_but_complete_final_vote_is_kept() {
        let g = graph();
        let v = votes();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &v).unwrap();
        // Strip the final newline only.
        assert_eq!(buf.pop(), Some(b'\n'));
        let (back, torn) = read_log_reporting(buf.as_slice(), &g).unwrap();
        assert_eq!(back, v);
        assert_eq!(torn, None);
    }

    #[test]
    fn interior_corruption_stays_a_hard_error() {
        // A newline-terminated malformed line was fully written — that is
        // corruption, not a torn append, even via the tolerant reader.
        let g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        let mid = buf.len() / 2;
        buf[mid] = b'#';
        assert!(matches!(
            read_log_reporting(buf.as_slice(), &g),
            Err(LogError::Malformed { .. }) | Err(LogError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn torn_header_only_file_reads_as_empty() {
        let g = graph();
        let torn_header = br#"{"version":1,"graph_fing"#;
        assert!(matches!(
            read_log_reporting(&torn_header[..], &g),
            Err(LogError::Empty)
        ));
    }

    #[test]
    fn log_survives_weight_optimization() {
        // Votes recorded before optimization must replay after weights
        // change (fingerprint is topology-only).
        let mut g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        g.set_weight(kg_graph::EdgeId(1), 0.95).unwrap();
        assert!(read_log(buf.as_slice(), &g).is_ok());
    }

    #[test]
    fn mismatch_error_describes_both_graphs() {
        // The error must tell the operator *which* two graphs disagree,
        // not just that they do.
        let g = graph();
        let mut buf = Vec::new();
        write_log(&mut buf, &g, &votes()).unwrap();
        let other = {
            let mut b = GraphBuilder::new();
            let q = b.add_node("q", NodeKind::Query);
            let a = b.add_node("a", NodeKind::Answer);
            b.add_edge(q, a, 1.0).unwrap();
            b.build()
        };
        let err = read_log(buf.as_slice(), &other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("different graph"), "{msg}");
        assert!(msg.contains("3 nodes, 2 edges"), "missing log side: {msg}");
        assert!(
            msg.contains("2 nodes, 1 edges"),
            "missing supplied side: {msg}"
        );
        assert!(msg.contains("topology hash"), "{msg}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId, NodeKind};
    use proptest::prelude::*;

    /// An arbitrary valid vote: distinct answer ids, best drawn from the
    /// list. Node ids need not exist in any graph — the log stores them
    /// verbatim.
    fn arb_vote() -> impl Strategy<Value = Vote> {
        (
            0u32..64,
            proptest::collection::btree_set(0u32..64, 1..8),
            0usize..8,
        )
            .prop_map(|(q, answers, best_idx)| {
                let answers: Vec<NodeId> = answers.into_iter().map(NodeId).collect();
                let best = answers[best_idx % answers.len()];
                Vote::new(NodeId(q), answers, best)
            })
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, a, 1.0).unwrap();
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every vote set — any size, any mix of positive/negative, any
        /// node ids — survives `write_log` → `read_log` exactly.
        #[test]
        fn random_vote_sets_roundtrip(raw in proptest::collection::vec(arb_vote(), 0..12)) {
            let g = graph();
            let set = VoteSet::from_votes(raw);
            let mut buf = Vec::new();
            write_log(&mut buf, &g, &set).unwrap();
            let back = read_log(buf.as_slice(), &g).unwrap();
            prop_assert_eq!(back, set);
        }
    }
}
