//! The vote model (Definition 2 of the paper).

use kg_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Whether a vote confirms or contradicts the current ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoteKind {
    /// The voted best answer was already ranked first.
    Positive,
    /// The voted best answer was ranked below first.
    Negative,
}

/// One user vote on a returned top-k answer list.
///
/// `answers` is the ranked list the system returned (rank 1 first);
/// `best` is the answer the user voted for and must be an element of
/// `answers`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vote {
    /// The query node the list was computed for.
    pub query: NodeId,
    /// The returned ranked answer list (best-first at vote time).
    pub answers: Vec<NodeId>,
    /// The answer the user voted as best.
    pub best: NodeId,
}

impl Vote {
    /// Creates a vote, validating that `best` appears in `answers` and the
    /// list contains no duplicates.
    pub fn new(query: NodeId, answers: Vec<NodeId>, best: NodeId) -> Self {
        assert!(
            answers.contains(&best),
            "voted best answer {best} not in the returned list"
        );
        let mut sorted = answers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            answers.len(),
            "answer list contains duplicates"
        );
        Vote {
            query,
            answers,
            best,
        }
    }

    /// Positive or negative (Definition 2).
    pub fn kind(&self) -> VoteKind {
        if self.answers.first() == Some(&self.best) {
            VoteKind::Positive
        } else {
            VoteKind::Negative
        }
    }

    /// True for positive votes.
    pub fn is_positive(&self) -> bool {
        self.kind() == VoteKind::Positive
    }

    /// 1-based rank of the voted best answer in the list at vote time
    /// (`rank_t` of Definition 3).
    pub fn best_rank(&self) -> usize {
        self.answers
            .iter()
            .position(|&a| a == self.best)
            .expect("validated at construction")
            + 1
    }

    /// The competitors the best answer must outscore: every other answer
    /// in the list (Eq. 10/13).
    pub fn competitors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.answers
            .iter()
            .copied()
            .filter(move |&a| a != self.best)
    }

    /// The answer ranked immediately above the best one — the comparison
    /// target of the extreme-condition judgment (Section V). `None` for
    /// positive votes (the best answer is already first).
    pub fn answer_above_best(&self) -> Option<NodeId> {
        let r = self.best_rank();
        if r <= 1 {
            None
        } else {
            Some(self.answers[r - 2])
        }
    }
}

/// A batch of votes, partitioned on demand into `T⁻` and `T⁺`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VoteSet {
    /// All votes, in arrival order.
    pub votes: Vec<Vote>,
}

impl VoteSet {
    /// Creates an empty vote set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a vector of votes.
    pub fn from_votes(votes: Vec<Vote>) -> Self {
        VoteSet { votes }
    }

    /// Adds a vote.
    pub fn push(&mut self, vote: Vote) {
        self.votes.push(vote);
    }

    /// Number of votes.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// The negative votes `T⁻`, with their indices in the set.
    pub fn negatives(&self) -> impl Iterator<Item = (usize, &Vote)> + '_ {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_positive())
    }

    /// The positive votes `T⁺`, with their indices in the set.
    pub fn positives(&self) -> impl Iterator<Item = (usize, &Vote)> + '_ {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_positive())
    }

    /// Counts `(negatives, positives)`.
    pub fn counts(&self) -> (usize, usize) {
        let neg = self.negatives().count();
        (neg, self.votes.len() - neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn negative_vote_kind_and_rank() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(11));
        assert_eq!(v.kind(), VoteKind::Negative);
        assert!(!v.is_positive());
        assert_eq!(v.best_rank(), 2);
        assert_eq!(v.answer_above_best(), Some(NodeId(10)));
    }

    #[test]
    fn positive_vote_kind() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(10));
        assert_eq!(v.kind(), VoteKind::Positive);
        assert_eq!(v.best_rank(), 1);
        assert_eq!(v.answer_above_best(), None);
    }

    #[test]
    fn competitors_excludes_best() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(11));
        let comp: Vec<NodeId> = v.competitors().collect();
        assert_eq!(comp, nodes(&[10, 12]));
    }

    #[test]
    #[should_panic(expected = "not in the returned list")]
    fn best_must_be_listed() {
        Vote::new(NodeId(0), nodes(&[10, 11]), NodeId(99));
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_answers_rejected() {
        Vote::new(NodeId(0), nodes(&[10, 10, 11]), NodeId(10));
    }

    #[test]
    fn voteset_partitions() {
        let mut s = VoteSet::new();
        s.push(Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2))); // negative
        s.push(Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(1))); // positive
        s.push(Vote::new(NodeId(0), nodes(&[3, 4]), NodeId(4))); // negative
        assert_eq!(s.counts(), (2, 1));
        let neg: Vec<usize> = s.negatives().map(|(i, _)| i).collect();
        assert_eq!(neg, vec![0, 2]);
        let pos: Vec<usize> = s.positives().map(|(i, _)| i).collect();
        assert_eq!(pos, vec![1]);
    }

    #[test]
    fn vote_serde_roundtrip() {
        let v = Vote::new(NodeId(7), nodes(&[1, 2, 3]), NodeId(3));
        let j = serde_json::to_string(&v).unwrap();
        let v2: Vote = serde_json::from_str(&j).unwrap();
        assert_eq!(v, v2);
    }
}
