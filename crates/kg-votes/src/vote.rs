//! The vote model (Definition 2 of the paper).

use kg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a candidate vote violates the model's invariants (Definition 2).
///
/// The `Display` strings deliberately match the panic messages
/// [`Vote::new`] has always produced, so callers that grew up matching on
/// those messages keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteError {
    /// The voted best answer does not appear in the returned list.
    BestNotListed {
        /// The missing best answer.
        best: NodeId,
    },
    /// The returned answer list contains the same answer twice.
    DuplicateAnswers,
}

impl fmt::Display for VoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteError::BestNotListed { best } => {
                write!(f, "voted best answer {best} not in the returned list")
            }
            VoteError::DuplicateAnswers => write!(f, "answer list contains duplicates"),
        }
    }
}

impl std::error::Error for VoteError {}

/// Whether a vote confirms or contradicts the current ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoteKind {
    /// The voted best answer was already ranked first.
    Positive,
    /// The voted best answer was ranked below first.
    Negative,
}

/// One user vote on a returned top-k answer list.
///
/// `answers` is the ranked list the system returned (rank 1 first);
/// `best` is the answer the user voted for and must be an element of
/// `answers`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Vote {
    /// The query node the list was computed for.
    pub query: NodeId,
    /// The returned ranked answer list (best-first at vote time).
    pub answers: Vec<NodeId>,
    /// The answer the user voted as best.
    pub best: NodeId,
}

impl Vote {
    /// Creates a vote, validating that `best` appears in `answers` and the
    /// list contains no duplicates.
    ///
    /// # Panics
    /// Panics when the invariants are violated; use [`Vote::try_new`] for
    /// untrusted input (on-disk logs, the network).
    pub fn new(query: NodeId, answers: Vec<NodeId>, best: NodeId) -> Self {
        match Vote::try_new(query, answers, best) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: the single validation path every route into a
    /// `Vote` — including deserialization — goes through.
    pub fn try_new(query: NodeId, answers: Vec<NodeId>, best: NodeId) -> Result<Self, VoteError> {
        if !answers.contains(&best) {
            return Err(VoteError::BestNotListed { best });
        }
        let mut sorted = answers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != answers.len() {
            return Err(VoteError::DuplicateAnswers);
        }
        Ok(Vote {
            query,
            answers,
            best,
        })
    }

    /// Positive or negative (Definition 2).
    pub fn kind(&self) -> VoteKind {
        if self.answers.first() == Some(&self.best) {
            VoteKind::Positive
        } else {
            VoteKind::Negative
        }
    }

    /// True for positive votes.
    pub fn is_positive(&self) -> bool {
        self.kind() == VoteKind::Positive
    }

    /// 1-based rank of the voted best answer in the list at vote time
    /// (`rank_t` of Definition 3).
    pub fn best_rank(&self) -> usize {
        match self.answers.iter().position(|&a| a == self.best) {
            Some(i) => i + 1,
            // Both constructors and the `Deserialize` impl funnel through
            // `try_new`, so a `Vote` with `best ∉ answers` cannot exist
            // short of in-crate struct-literal abuse.
            None => unreachable!("vote invariant violated: best not in answers"),
        }
    }

    /// The competitors the best answer must outscore: every other answer
    /// in the list (Eq. 10/13).
    pub fn competitors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.answers
            .iter()
            .copied()
            .filter(move |&a| a != self.best)
    }

    /// The answer ranked immediately above the best one — the comparison
    /// target of the extreme-condition judgment (Section V). `None` for
    /// positive votes (the best answer is already first).
    pub fn answer_above_best(&self) -> Option<NodeId> {
        let r = self.best_rank();
        if r <= 1 {
            None
        } else {
            Some(self.answers[r - 2])
        }
    }
}

/// Hand-written so deserialization routes through [`Vote::try_new`]: a
/// hand-edited or corrupted log line that names a `best` answer outside
/// the list (or duplicates an answer) becomes a deserialization error
/// here instead of a panic later in [`Vote::best_rank`]. With real serde
/// this would be `#[serde(try_from = "VoteDoc")]`; the stub's `Value`
/// model makes the direct impl shorter.
impl Deserialize for Vote {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!("expected object for Vote, found {}", v.kind()))
        })?;
        let query: NodeId = serde::__field(obj, "query", "Vote")?;
        let answers: Vec<NodeId> = serde::__field(obj, "answers", "Vote")?;
        let best: NodeId = serde::__field(obj, "best", "Vote")?;
        Vote::try_new(query, answers, best)
            .map_err(|e| serde::Error::custom(format!("invalid vote: {e}")))
    }
}

/// A batch of votes, partitioned on demand into `T⁻` and `T⁺`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VoteSet {
    /// All votes, in arrival order.
    pub votes: Vec<Vote>,
}

impl VoteSet {
    /// Creates an empty vote set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a vector of votes.
    pub fn from_votes(votes: Vec<Vote>) -> Self {
        VoteSet { votes }
    }

    /// Adds a vote.
    pub fn push(&mut self, vote: Vote) {
        self.votes.push(vote);
    }

    /// Number of votes.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// The negative votes `T⁻`, with their indices in the set.
    pub fn negatives(&self) -> impl Iterator<Item = (usize, &Vote)> + '_ {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_positive())
    }

    /// The positive votes `T⁺`, with their indices in the set.
    pub fn positives(&self) -> impl Iterator<Item = (usize, &Vote)> + '_ {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_positive())
    }

    /// Counts `(negatives, positives)`.
    pub fn counts(&self) -> (usize, usize) {
        let neg = self.negatives().count();
        (neg, self.votes.len() - neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn negative_vote_kind_and_rank() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(11));
        assert_eq!(v.kind(), VoteKind::Negative);
        assert!(!v.is_positive());
        assert_eq!(v.best_rank(), 2);
        assert_eq!(v.answer_above_best(), Some(NodeId(10)));
    }

    #[test]
    fn positive_vote_kind() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(10));
        assert_eq!(v.kind(), VoteKind::Positive);
        assert_eq!(v.best_rank(), 1);
        assert_eq!(v.answer_above_best(), None);
    }

    #[test]
    fn competitors_excludes_best() {
        let v = Vote::new(NodeId(0), nodes(&[10, 11, 12]), NodeId(11));
        let comp: Vec<NodeId> = v.competitors().collect();
        assert_eq!(comp, nodes(&[10, 12]));
    }

    #[test]
    #[should_panic(expected = "not in the returned list")]
    fn best_must_be_listed() {
        Vote::new(NodeId(0), nodes(&[10, 11]), NodeId(99));
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_answers_rejected() {
        Vote::new(NodeId(0), nodes(&[10, 10, 11]), NodeId(10));
    }

    #[test]
    fn voteset_partitions() {
        let mut s = VoteSet::new();
        s.push(Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2))); // negative
        s.push(Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(1))); // positive
        s.push(Vote::new(NodeId(0), nodes(&[3, 4]), NodeId(4))); // negative
        assert_eq!(s.counts(), (2, 1));
        let neg: Vec<usize> = s.negatives().map(|(i, _)| i).collect();
        assert_eq!(neg, vec![0, 2]);
        let pos: Vec<usize> = s.positives().map(|(i, _)| i).collect();
        assert_eq!(pos, vec![1]);
    }

    #[test]
    fn vote_serde_roundtrip() {
        let v = Vote::new(NodeId(7), nodes(&[1, 2, 3]), NodeId(3));
        let j = serde_json::to_string(&v).unwrap();
        let v2: Vote = serde_json::from_str(&j).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn try_new_reports_violations() {
        assert_eq!(
            Vote::try_new(NodeId(0), nodes(&[10, 11]), NodeId(99)),
            Err(VoteError::BestNotListed { best: NodeId(99) })
        );
        assert_eq!(
            Vote::try_new(NodeId(0), nodes(&[10, 10, 11]), NodeId(10)),
            Err(VoteError::DuplicateAnswers)
        );
    }

    #[test]
    fn deserialize_rejects_best_outside_list() {
        // A hand-edited log line voting for an answer the system never
        // returned: must be a deserialization error, not a later panic in
        // `best_rank`.
        let j = r#"{"query":0,"answers":[10,11],"best":99}"#;
        let err = serde_json::from_str::<Vote>(j).unwrap_err();
        assert!(
            err.to_string().contains("not in the returned list"),
            "{err}"
        );
    }

    #[test]
    fn deserialize_rejects_duplicate_answers() {
        let j = r#"{"query":0,"answers":[10,10,11],"best":10}"#;
        let err = serde_json::from_str::<Vote>(j).unwrap_err();
        assert!(err.to_string().contains("duplicates"), "{err}");
    }

    #[test]
    fn deserialize_rejects_missing_field() {
        let j = r#"{"query":0,"answers":[10,11]}"#;
        let err = serde_json::from_str::<Vote>(j).unwrap_err();
        assert!(err.to_string().contains("best"), "{err}");
    }
}
