//! Durable write-ahead log of accepted votes and applied weight deltas.
//!
//! The JSON-lines log in [`crate::log`] is a *transport* format: it
//! records what users said, not what the optimizer did, and it has no
//! integrity protection beyond line framing. This module is the
//! *durability* layer underneath `core::Framework`: an append-only file
//! of length-prefixed, CRC-checked records that captures both accepted
//! votes and the weight deltas each optimization round applied, keyed by
//! [`KnowledgeGraph::version`]. Recovery loads the latest valid graph
//! snapshot (see `kg_graph::io::read_snapshot_file`) and replays the WAL
//! tail on top, reproducing the pre-crash weights *bit-identically*
//! (deltas store raw `f64::to_bits`, and every round carries a CRC over
//! the full weight vector that replay re-verifies).
//!
//! ## On-disk format
//!
//! ```text
//! record   := len:u32be  crc:u32be  payload[len]
//! payload  := JSON of WalRecord (Header | Vote | Round)
//! file     := record*          (first record MUST be a Header)
//! ```
//!
//! ## Failure policy
//!
//! *Torn tail* — the final record is incomplete (frame or payload cut
//! short at EOF, the signature of a crash mid-append): tolerated. The
//! partial bytes are reported and truncated away on open; the log
//! remains usable and contains exactly the records whose write
//! completed. *Interior corruption* — a complete record whose CRC or
//! JSON does not check out, anywhere in the file: a hard, descriptive
//! error. That data was fully written and then damaged; silently
//! dropping it could resurrect stale weights.
//!
//! ## Commit semantics
//!
//! [`VoteWal::append_vote`] buffers through the OS (no fsync) — an
//! accepted vote is made durable *at the latest* by the next round
//! commit. [`VoteWal::commit_round`] writes the round record and then
//! `fsync`s, so one fsync per optimization round covers the round and
//! every vote before it (fsync-on-commit batching).

use crate::log::GraphFingerprint;
use crate::vote::{Vote, VoteSet};
use kg_graph::io::{crc32, weights_crc};
use kg_graph::{EdgeId, KnowledgeGraph};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// WAL format version written into the header record.
pub const WAL_FORMAT: u32 = 1;

/// Errors from writing, reading, or replaying a WAL.
#[derive(Debug)]
pub enum WalError {
    /// A filesystem operation failed.
    Io {
        /// Path of the WAL file involved.
        path: String,
        /// Rendered OS error, prefixed with the failing stage.
        message: String,
    },
    /// A complete record failed its integrity checks (CRC, JSON, or
    /// semantic validation). This is interior corruption: a hard error.
    Corrupt {
        /// Byte offset of the damaged record's frame.
        offset: u64,
        /// 0-based index of the damaged record.
        record: usize,
        /// What failed to check out.
        message: String,
    },
    /// The WAL header references a different graph topology.
    GraphMismatch {
        /// Fingerprint stored in the WAL header.
        expected: GraphFingerprint,
        /// Fingerprint of the supplied graph.
        actual: GraphFingerprint,
    },
    /// A round record does not chain onto the current graph version:
    /// neither already-incorporated nor applicable next.
    Lineage {
        /// 0-based index of the offending round record.
        record: usize,
        /// Graph version replay had reached.
        reached: u64,
        /// The `version_before` the record demands.
        expected: u64,
    },
    /// Replayed weights do not match the checksum the writer recorded at
    /// commit time — the recovered state would not be bit-identical.
    ChecksumMismatch {
        /// Graph version of the round whose verification failed.
        version: u64,
        /// Checksum recorded at commit time.
        expected: u32,
        /// Checksum of the replayed weight vector.
        actual: u32,
    },
    /// The file has records but does not start with a header record.
    MissingHeader,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, message } => write!(f, "WAL I/O error on {path}: {message}"),
            WalError::Corrupt {
                offset,
                record,
                message,
            } => write!(
                f,
                "WAL corrupt at record {record} (byte offset {offset}): {message}; this is \
                 interior corruption, not a torn append — refusing to recover past it"
            ),
            WalError::GraphMismatch { expected, actual } => write!(
                f,
                "WAL was recorded against a different graph: header says {} nodes, {} edges \
                 (topology hash {:#018x}) but the supplied graph has {} nodes, {} edges \
                 (topology hash {:#018x})",
                expected.nodes,
                expected.edges,
                expected.topology_hash,
                actual.nodes,
                actual.edges,
                actual.topology_hash
            ),
            WalError::Lineage {
                record,
                reached,
                expected,
            } => write!(
                f,
                "WAL round record {record} expects graph version {expected} but replay reached \
                 version {reached}; the log does not chain onto this graph/snapshot"
            ),
            WalError::ChecksumMismatch {
                version,
                expected,
                actual,
            } => write!(
                f,
                "replayed weights at version {version} fail verification: writer recorded \
                 weight checksum {expected:#010x}, replay produced {actual:#010x}"
            ),
            WalError::MissingHeader => {
                write!(f, "WAL does not start with a header record")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, stage: &str, e: std::io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        message: format!("{stage}: {e}"),
    }
}

/// First record of every WAL: format version, which graph topology the
/// edge ids refer to, and the graph version the log starts from (the
/// version of the snapshot it was compacted against, or 0 for a fresh
/// log on a pristine graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalHeader {
    /// WAL format version ([`WAL_FORMAT`]).
    pub format: u32,
    /// Fingerprint of the graph topology the records refer to.
    pub fingerprint: GraphFingerprint,
    /// Graph version the log's first round chains onto.
    pub base_version: u64,
}

/// One committed optimization round: the version transition, how many
/// previously-appended votes it consumed, and the exact weight changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Graph version before the round was applied.
    pub version_before: u64,
    /// Graph version after the round was applied.
    pub version_after: u64,
    /// How many pending votes (appended since the previous round) this
    /// round consumed.
    pub votes_consumed: usize,
    /// Applied weight changes as `(edge id, f64::to_bits(weight))`. Bits,
    /// not floats, so replay is bit-identical by construction.
    pub deltas: Vec<(u32, u64)>,
    /// CRC-32 over the *entire* post-round weight vector
    /// (`kg_graph::io::weights_crc`), re-verified during replay.
    pub weights_crc: u32,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// File header; must be the first record and appear exactly once.
    Header(WalHeader),
    /// An accepted vote, durable by the next commit's fsync.
    Vote(Vote),
    /// A committed optimization round (written + fsynced atomically from
    /// the caller's perspective).
    Round(RoundRecord),
}

/// A torn final record dropped (and truncated) during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the torn record started (the new file length).
    pub offset: u64,
    /// Partial bytes dropped.
    pub bytes_dropped: u64,
}

/// What replaying a WAL onto a graph produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Votes appended after the last committed round (or never
    /// consumed): the pending queue the framework should resume with.
    pub pending: VoteSet,
    /// Rounds whose deltas were applied to the graph.
    pub rounds_applied: usize,
    /// Rounds skipped because the graph (snapshot) was already at or
    /// past their `version_after`.
    pub rounds_skipped: usize,
    /// Graph version after replay — the last committed state.
    pub committed_version: u64,
    /// Present when a torn final record was dropped.
    pub torn_tail: Option<TornTail>,
    /// Total complete records read (including the header).
    pub records: usize,
}

/// Replays WAL bytes onto `graph`, enforcing the failure policy
/// described in the module docs. The graph must already be at the
/// version the log chains onto (freshly built, or loaded from a
/// snapshot whose version falls inside the log's round sequence).
pub fn replay_wal_bytes(data: &[u8], graph: &mut KnowledgeGraph) -> Result<WalReplay, WalError> {
    let mut replay = WalReplay {
        pending: VoteSet::new(),
        rounds_applied: 0,
        rounds_skipped: 0,
        committed_version: graph.version(),
        torn_tail: None,
        records: 0,
    };
    let mut offset: usize = 0;
    let mut record_idx: usize = 0;
    let mut saw_header = false;

    while offset < data.len() {
        let remaining = data.len() - offset;
        if remaining < 8 {
            // Not even a complete frame header: crash before the length
            // and CRC were fully written.
            replay.torn_tail = Some(TornTail {
                offset: offset as u64,
                bytes_dropped: remaining as u64,
            });
            break;
        }
        let len = u32::from_be_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ]) as usize;
        let stored_crc = u32::from_be_bytes([
            data[offset + 4],
            data[offset + 5],
            data[offset + 6],
            data[offset + 7],
        ]);
        if remaining - 8 < len {
            // Payload cut short at EOF: crash mid-append. (A bit flip in
            // the length field of the final record lands here too — the
            // two are indistinguishable, and dropping back to the last
            // committed prefix is correct for both.)
            replay.torn_tail = Some(TornTail {
                offset: offset as u64,
                bytes_dropped: remaining as u64,
            });
            break;
        }
        let payload = &data[offset + 8..offset + 8 + len];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return Err(WalError::Corrupt {
                offset: offset as u64,
                record: record_idx,
                message: format!(
                    "record checksum mismatch: stored {stored_crc:#010x}, computed \
                     {actual_crc:#010x}"
                ),
            });
        }
        let corrupt = |message: String| WalError::Corrupt {
            offset: offset as u64,
            record: record_idx,
            message,
        };
        let text = std::str::from_utf8(payload)
            .map_err(|e| corrupt(format!("payload is not UTF-8: {e}")))?;
        let record: WalRecord = serde_json::from_str(text)
            .map_err(|e| corrupt(format!("payload does not parse as a WAL record: {e}")))?;

        match record {
            WalRecord::Header(h) => {
                if saw_header {
                    return Err(corrupt("duplicate header record".to_string()));
                }
                if record_idx != 0 {
                    return Err(WalError::MissingHeader);
                }
                if h.format != WAL_FORMAT {
                    return Err(corrupt(format!(
                        "unsupported WAL format {} (expected {WAL_FORMAT})",
                        h.format
                    )));
                }
                let actual = GraphFingerprint::of(graph);
                if h.fingerprint != actual {
                    return Err(WalError::GraphMismatch {
                        expected: h.fingerprint,
                        actual,
                    });
                }
                saw_header = true;
            }
            WalRecord::Vote(v) => {
                if !saw_header {
                    return Err(WalError::MissingHeader);
                }
                replay.pending.push(v);
            }
            WalRecord::Round(r) => {
                if !saw_header {
                    return Err(WalError::MissingHeader);
                }
                apply_round(graph, &r, record_idx, offset as u64, &mut replay)?;
            }
        }
        replay.records += 1;
        record_idx += 1;
        offset += 8 + len;
    }
    if replay.records == 0 && replay.torn_tail.is_none() && !data.is_empty() {
        return Err(WalError::MissingHeader);
    }
    replay.committed_version = graph.version();
    Ok(replay)
}

fn apply_round(
    graph: &mut KnowledgeGraph,
    r: &RoundRecord,
    record: usize,
    offset: u64,
    replay: &mut WalReplay,
) -> Result<(), WalError> {
    let corrupt = |message: String| WalError::Corrupt {
        offset,
        record,
        message,
    };
    if r.votes_consumed > replay.pending.len() {
        return Err(corrupt(format!(
            "round consumed {} votes but only {} were appended before it",
            r.votes_consumed,
            replay.pending.len()
        )));
    }
    if r.version_after < r.version_before {
        return Err(corrupt(format!(
            "round runs versions backwards: {} -> {}",
            r.version_before, r.version_after
        )));
    }
    if r.version_before == graph.version() {
        // The round chains onto the replayed state: apply its deltas.
        for &(edge, bits) in &r.deltas {
            let w = f64::from_bits(bits);
            graph
                .set_weight(EdgeId(edge), w)
                .map_err(|e| corrupt(format!("delta on edge {edge} rejected: {e}")))?;
        }
        if graph.version() > r.version_after {
            return Err(corrupt(format!(
                "round claims version_after {} but applying its deltas already moved the \
                 graph to {}",
                r.version_after,
                graph.version()
            )));
        }
        graph.fast_forward_version(r.version_after);
        let actual = weights_crc(graph);
        if actual != r.weights_crc {
            return Err(WalError::ChecksumMismatch {
                version: r.version_after,
                expected: r.weights_crc,
                actual,
            });
        }
        replay.rounds_applied += 1;
    } else if r.version_after <= graph.version() {
        // Already incorporated in the snapshot the graph was loaded
        // from; account for its votes but leave the weights alone.
        replay.rounds_skipped += 1;
    } else {
        return Err(WalError::Lineage {
            record,
            reached: graph.version(),
            expected: r.version_before,
        });
    }
    replay.pending.votes.drain(..r.votes_consumed);
    Ok(())
}

/// An open, append-ready WAL file.
///
/// Created by [`VoteWal::create`] (fresh file) or [`VoteWal::open`]
/// (recovery: replay + torn-tail truncation + reopen for append).
#[derive(Debug)]
pub struct VoteWal {
    file: File,
    path: PathBuf,
    offset: u64,
}

impl VoteWal {
    /// Creates a fresh WAL at `path` (truncating any existing file),
    /// writes the header record, and fsyncs it.
    pub fn create(path: &Path, graph: &KnowledgeGraph) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", e))?;
        let mut wal = VoteWal {
            file,
            path: path.to_path_buf(),
            offset: 0,
        };
        wal.write_record(&WalRecord::Header(WalHeader {
            format: WAL_FORMAT,
            fingerprint: GraphFingerprint::of(graph),
            base_version: graph.version(),
        }))?;
        wal.sync()?;
        Ok(wal)
    }

    /// Opens the WAL at `path`, replaying it onto `graph`. A missing or
    /// empty file becomes a fresh WAL ([`VoteWal::create`] semantics); a
    /// torn final record is truncated away before the file is reopened
    /// for append, so the next write lands on a clean record boundary.
    pub fn open(path: &Path, graph: &mut KnowledgeGraph) -> Result<(Self, WalReplay), WalError> {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(path, "read", e)),
        };
        if data.is_empty() {
            let wal = VoteWal::create(path, graph)?;
            let replay = WalReplay {
                pending: VoteSet::new(),
                rounds_applied: 0,
                rounds_skipped: 0,
                committed_version: graph.version(),
                torn_tail: None,
                records: 1,
            };
            return Ok((wal, replay));
        }
        let replay = replay_wal_bytes(&data, graph)?;
        let valid_len = match replay.torn_tail {
            Some(t) => t.offset,
            None => data.len() as u64,
        };
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "reopen", e))?;
        if valid_len < data.len() as u64 {
            file.set_len(valid_len)
                .map_err(|e| io_err(path, "truncate torn tail", e))?;
            file.sync_all()
                .map_err(|e| io_err(path, "fsync after truncate", e))?;
        }
        let wal = VoteWal {
            file,
            path: path.to_path_buf(),
            offset: valid_len,
        };
        Ok((wal, replay))
    }

    /// Atomically replaces the WAL at `path` with a compacted log: a
    /// fresh header chaining onto the graph's *current* version (the
    /// version of the snapshot just written beside it) plus the
    /// still-pending votes carried forward. The new log is built at
    /// `<path>.tmp`, fsynced, and renamed over `path`, so a crash at any
    /// point leaves either the old complete log or the new complete log.
    pub fn rewrite(
        path: &Path,
        graph: &KnowledgeGraph,
        pending: &VoteSet,
    ) -> Result<Self, WalError> {
        let tmp = path.with_extension("log.tmp");
        {
            let mut w = VoteWal::create(&tmp, graph)?;
            for v in &pending.votes {
                w.append_vote(v)?;
            }
            w.sync()?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename compacted log", e))?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "reopen compacted log", e))?;
        let offset = file
            .metadata()
            .map_err(|e| io_err(path, "stat compacted log", e))?
            .len();
        Ok(VoteWal {
            file,
            path: path.to_path_buf(),
            offset,
        })
    }

    /// Appends an accepted vote. Buffered by the OS: durable at the
    /// latest with the next [`VoteWal::commit_round`] (or an explicit
    /// [`VoteWal::sync`]).
    pub fn append_vote(&mut self, vote: &Vote) -> Result<(), WalError> {
        self.write_record(&WalRecord::Vote(vote.clone()))
    }

    /// Commits an optimization round: writes the round record, fsyncs
    /// the file (making the round *and* every vote appended before it
    /// durable), and honors the `VOTEKG_WAL_CRASH_AFTER_COMMITS` fault
    /// hook.
    pub fn commit_round(&mut self, round: &RoundRecord) -> Result<(), WalError> {
        self.write_record(&WalRecord::Round(round.clone()))?;
        self.sync()?;
        crash_hook_after_commit();
        Ok(())
    }

    /// Forces everything written so far to disk.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file
            .sync_all()
            .map_err(|e| io_err(&self.path, "fsync", e))
    }

    /// Current end-of-log byte offset.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Path of the WAL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_record(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let json = serde_json::to_string(record).map_err(|e| WalError::Io {
            path: self.path.display().to_string(),
            message: format!("serialize record: {e}"),
        })?;
        let payload = json.as_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(payload).to_be_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.offset += frame.len() as u64;
        Ok(())
    }
}

/// Deterministic crash injection for the recovery smoke gate: when
/// `VOTEKG_WAL_CRASH_AFTER_COMMITS=<n>` is set, the process aborts
/// immediately after the `n`-th successful commit fsync — the moment a
/// real crash is most interesting (state durable, process gone).
fn crash_hook_after_commit() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    static COMMITS: AtomicU64 = AtomicU64::new(0);
    let limit = *LIMIT.get_or_init(|| {
        std::env::var("VOTEKG_WAL_CRASH_AFTER_COMMITS")
            .ok()
            .and_then(|s| s.parse().ok())
    });
    let Some(n) = limit else { return };
    let done = COMMITS.fetch_add(1, Ordering::SeqCst) + 1;
    if done >= n {
        eprintln!("VOTEKG_WAL_CRASH_AFTER_COMMITS={n}: simulating crash after commit {done}");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId, NodeKind};

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Answer);
        let c = b.add_node("c", NodeKind::Answer);
        b.add_edge(q, a, 0.6).unwrap();
        b.add_edge(q, c, 0.4).unwrap();
        b.build()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "votekg-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn vote() -> Vote {
        Vote::new(NodeId(0), vec![NodeId(1), NodeId(2)], NodeId(2))
    }

    /// Writes a vote + committed round through the WAL, mutating `g` the
    /// way the framework would, and returns the round record.
    fn run_round(wal: &mut VoteWal, g: &mut KnowledgeGraph, w: f64) -> RoundRecord {
        wal.append_vote(&vote()).unwrap();
        let before = g.version();
        g.set_weight(EdgeId(1), w).unwrap();
        let round = RoundRecord {
            version_before: before,
            version_after: g.version(),
            votes_consumed: 1,
            deltas: vec![(1, w.to_bits())],
            weights_crc: weights_crc(g),
        };
        wal.commit_round(&round).unwrap();
        round
    }

    #[test]
    fn fresh_wal_replays_to_identical_state() {
        let dir = tmp_dir("fresh");
        let path = dir.join("wal.log");
        let mut g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        run_round(&mut wal, &mut g, 0.77);
        run_round(&mut wal, &mut g, 0.51);
        wal.append_vote(&vote()).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let mut g2 = graph();
        let (_wal2, replay) = VoteWal::open(&path, &mut g2).unwrap();
        assert_eq!(replay.rounds_applied, 2);
        assert_eq!(replay.rounds_skipped, 0);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.torn_tail, None);
        assert_eq!(replay.committed_version, g.version());
        assert_eq!(g2.version(), g.version());
        for (a, b) in g.weights().iter().zip(g2.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        run_round(&mut wal, &mut g, 0.9);
        let committed_len = wal.offset();
        drop(wal);
        // Simulate a crash mid-append: half a vote record.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&[0, 0, 0, 50, 1, 2, 3, 4, b'{', b'"']);
        std::fs::write(&path, &data).unwrap();

        let mut g2 = graph();
        let (wal2, replay) = VoteWal::open(&path, &mut g2).unwrap();
        let torn = replay.torn_tail.expect("torn tail detected");
        assert_eq!(torn.offset, committed_len);
        assert_eq!(torn.bytes_dropped, 10);
        assert_eq!(replay.rounds_applied, 1);
        assert_eq!(wal2.offset(), committed_len);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            committed_len,
            "torn bytes must be truncated away"
        );
        assert_eq!(g2.version(), g.version());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_bit_flip_is_a_hard_error() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.log");
        let mut g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        run_round(&mut wal, &mut g, 0.9);
        run_round(&mut wal, &mut g, 0.3);
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a bit inside record 1's payload (the first vote), a
        // complete interior record well before EOF.
        let len0 = u32::from_be_bytes(data[0..4].try_into().unwrap()) as usize;
        let target = 8 + len0 + 8 + 2;
        data[target] ^= 0x04;
        std::fs::write(&path, &data).unwrap();

        let mut g2 = graph();
        let err = VoteWal::open(&path, &mut g2).unwrap_err();
        match err {
            WalError::Corrupt { .. } | WalError::ChecksumMismatch { .. } => {}
            other => panic!("expected corruption error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_graph_is_rejected() {
        let dir = tmp_dir("mismatch");
        let path = dir.join("wal.log");
        let g = graph();
        VoteWal::create(&path, &g).unwrap();
        let mut other = {
            let mut b = GraphBuilder::new();
            let q = b.add_node("q", NodeKind::Query);
            let a = b.add_node("a", NodeKind::Answer);
            b.add_edge(q, a, 1.0).unwrap();
            b.build()
        };
        assert!(matches!(
            VoteWal::open(&path, &mut other),
            Err(WalError::GraphMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_newer_than_rounds_skips_them() {
        let dir = tmp_dir("skip");
        let path = dir.join("wal.log");
        let mut g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        run_round(&mut wal, &mut g, 0.9);
        let r2 = run_round(&mut wal, &mut g, 0.3);
        drop(wal);

        // Recover onto a graph already at the final committed state, as
        // if a snapshot was taken after round 2.
        let mut g2 = graph();
        g2.set_weight(EdgeId(1), 0.9).unwrap();
        g2.set_weight(EdgeId(1), 0.3).unwrap();
        g2.fast_forward_version(r2.version_after);
        let (_w, replay) = VoteWal::open(&path, &mut g2).unwrap();
        assert_eq!(replay.rounds_applied, 0);
        assert_eq!(replay.rounds_skipped, 2);
        assert_eq!(replay.pending.len(), 0, "consumed votes stay consumed");
        assert_eq!(g2.version(), r2.version_after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_version_is_a_lineage_error() {
        let dir = tmp_dir("lineage");
        let path = dir.join("wal.log");
        let g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        // A round that chains onto version 5 of some other lineage: on a
        // fresh graph (version 0) it is neither already-incorporated
        // (version_after 7 > 0) nor applicable next (version_before 5 != 0).
        wal.commit_round(&RoundRecord {
            version_before: 5,
            version_after: 7,
            votes_consumed: 0,
            deltas: vec![],
            weights_crc: 0,
        })
        .unwrap();
        drop(wal);

        let mut g2 = graph();
        let err = VoteWal::open(&path, &mut g2).unwrap_err();
        assert!(matches!(err, WalError::Lineage { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_becomes_a_fresh_wal() {
        let dir = tmp_dir("missing");
        let path = dir.join("wal.log");
        let mut g = graph();
        let (wal, replay) = VoteWal::open(&path, &mut g).unwrap();
        assert_eq!(replay.records, 1);
        assert!(wal.offset() > 0);
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_round_trips_weight_bits_exactly() {
        // Weights chosen to exercise non-representable decimals.
        let dir = tmp_dir("bits");
        let path = dir.join("wal.log");
        let mut g = graph();
        let mut wal = VoteWal::create(&path, &g).unwrap();
        run_round(&mut wal, &mut g, 0.1 + 0.2); // 0.30000000000000004
        run_round(&mut wal, &mut g, f64::MIN_POSITIVE);
        drop(wal);
        let mut g2 = graph();
        VoteWal::open(&path, &mut g2).unwrap();
        assert_eq!(g2.weights()[1].to_bits(), (f64::MIN_POSITIVE).to_bits());
        assert_eq!(weights_crc(&g2), weights_crc(&g));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_is_missing_header_or_corrupt() {
        let dir = tmp_dir("garbage");
        let path = dir.join("wal.log");
        // A complete, CRC-valid frame whose payload is a Vote, not a
        // Header: the file is structurally fine but semantically headless.
        let payload = serde_json::to_string(&WalRecord::Vote(vote())).unwrap();
        let mut data = Vec::new();
        data.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        data.extend_from_slice(&crc32(payload.as_bytes()).to_be_bytes());
        data.extend_from_slice(payload.as_bytes());
        std::fs::write(&path, &data).unwrap();
        let mut g = graph();
        assert!(matches!(
            VoteWal::open(&path, &mut g),
            Err(WalError::MissingHeader)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
