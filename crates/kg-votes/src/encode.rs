//! Encoding votes as SGP programs (Sections IV-B and V of the paper).
//!
//! Every walk of length ≤ `L` from the vote's query node to a listed
//! answer becomes a monomial `c(1-c)^{|z|}·Π_e x_e`; the similarity
//! `S(v_q, v_a)` is the signomial summing the walks to `a`; and the vote
//! yields one constraint per competing answer:
//!
//! ```text
//! S(v_q, a) − S(v_q, a*) + margin ≤ 0        (Eq. 11 / 13)
//! ```
//!
//! The multi-vote form optionally introduces a (shifted) deviation
//! variable per constraint (Eq. 15) and counts violations with the
//! sigmoid objective (Eq. 18); by default it uses the equivalent
//! *eliminated* smooth form — at the optimum each deviation variable
//! equals its constraint margin, so `σ(w·d_i)` can be applied directly to
//! the margin expression (see DESIGN.md).

use crate::vote::Vote;
use kg_graph::{EdgeId, KnowledgeGraph, NodeKind};
use kg_sim::pdist::{enumerate_paths, Path};
use kg_sim::SimilarityConfig;
use serde::{Deserialize, Serialize};
use sgp::{CompositeObjective, Monomial, ObjectiveTerm, SgpProblem, Signomial, VarId, VarSpace};
use std::collections::HashMap;

/// Shift applied to deviation variables so they fit the SGP positivity
/// requirement: the paper's `d ∈ (−1, 1)` becomes `d' = d + 1 ∈ (0, 2)`.
pub const DEVIATION_SHIFT: f64 = 1.0;

/// Controls for vote encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodeOptions {
    /// Similarity parameters (restart `c`, path bound `L`).
    pub sim: SimilarityConfig,
    /// Strictness margin for the `<` constraints: the best answer must
    /// beat each competitor by at least this much.
    pub margin: f64,
    /// Lower box bound `x_l` for edge-weight variables (must be > 0).
    pub weight_lo: f64,
    /// Upper box bound `x_u` for edge-weight variables.
    pub weight_hi: f64,
    /// Treat edges leaving query nodes as constants. Query nodes are
    /// transient (built per question), so optimizing their weights does
    /// not transfer to future queries.
    pub freeze_query_edges: bool,
    /// Treat edges entering answer nodes as constants.
    pub freeze_answer_edges: bool,
    /// Cap on walk-enumeration work per vote (see
    /// [`kg_sim::enumerate_paths`]).
    pub max_expansions: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            sim: SimilarityConfig::default(),
            margin: 1e-7,
            weight_lo: 1e-4,
            weight_hi: 1.0,
            freeze_query_edges: true,
            freeze_answer_edges: false,
            max_expansions: 500_000,
        }
    }
}

/// Parameters specific to the multi-vote objective (Eq. 19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiParams {
    /// Preference on weight drift (`λ1`).
    pub lambda1: f64,
    /// Preference on vote satisfaction (`λ2`).
    pub lambda2: f64,
    /// Sigmoid steepness `w` (the paper uses 300).
    pub steepness: f64,
    /// Encode explicit deviation variables (Eq. 15) instead of the
    /// eliminated smooth form.
    pub deviation_vars: bool,
}

impl Default for MultiParams {
    fn default() -> Self {
        MultiParams {
            lambda1: 0.5,
            lambda2: 0.5,
            steepness: 300.0,
            deviation_vars: false,
        }
    }
}

/// A solver solution rejected by [`VoteProgram::apply_solution`]: it
/// proposed a weight the graph cannot hold (non-finite or negative).
/// Nothing was written.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyError {
    /// The edge whose proposed weight was rejected.
    pub edge: EdgeId,
    /// The rejected weight.
    pub weight: f64,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solution proposed invalid weight {} for edge {:?}; not applied",
            self.weight, self.edge
        )
    }
}

impl std::error::Error for ApplyError {}

/// An encoded SGP program plus the bookkeeping to map the solution back
/// onto the graph.
#[derive(Debug, Clone)]
pub struct VoteProgram {
    /// The SGP program.
    pub problem: SgpProblem,
    /// Maps each *edge* variable index to its graph edge. Deviation
    /// variables (multi-vote explicit form) come after all edge variables
    /// and have no entry here.
    pub edge_of_var: Vec<EdgeId>,
    /// For each encoded constraint, the index (into the encoding's vote
    /// slice) of the vote that produced it.
    pub constraint_vote: Vec<usize>,
    /// Per-vote margin expressions `S(q,a) − S(q,a*)` kept for
    /// diagnostics (violation counting) in the eliminated form, where the
    /// problem itself carries no constraints.
    pub vote_margins: Vec<(usize, Signomial)>,
    /// True when any vote's walk enumeration hit the expansion cap.
    pub truncated: bool,
}

impl VoteProgram {
    /// Number of edge-weight variables (excludes deviation variables).
    pub fn n_edge_vars(&self) -> usize {
        self.edge_of_var.len()
    }

    /// Writes a solver solution back onto the graph and returns the edges
    /// whose weight changed by more than `tol`.
    ///
    /// All-or-nothing: every proposed weight is validated (finite,
    /// non-negative) *before* any write, so a poisoned solution — e.g. a
    /// solve that diverged to NaN — leaves the graph untouched.
    pub fn apply_solution(
        &self,
        x: &[f64],
        graph: &mut KnowledgeGraph,
        tol: f64,
    ) -> Result<Vec<EdgeId>, ApplyError> {
        for (i, &edge) in self.edge_of_var.iter().enumerate() {
            let w = x[i];
            if !w.is_finite() || w < 0.0 {
                return Err(ApplyError { edge, weight: w });
            }
        }
        let mut changed = Vec::new();
        for (i, &edge) in self.edge_of_var.iter().enumerate() {
            let new_w = x[i];
            // set_weight cannot fail after the validation pass; checking
            // instead of unwrapping keeps this path panic-free regardless.
            if (graph.weight(edge) - new_w).abs() > tol && graph.set_weight(edge, new_w).is_ok() {
                changed.push(edge);
            }
        }
        Ok(changed)
    }

    /// Number of vote-margin expressions violated (`> 0`) at `x` — the
    /// quantity the sigmoid objective (Eq. 18) relaxes.
    pub fn violated_margins(&self, x: &[f64]) -> usize {
        self.vote_margins
            .iter()
            .filter(|(_, m)| m.eval(x) > 0.0)
            .count()
    }
}

/// Incremental symbolic builder shared by all votes of one encoding:
/// assigns one variable per distinct non-frozen edge.
struct SymbolicBuilder<'g> {
    graph: &'g KnowledgeGraph,
    opts: EncodeOptions,
    vars: VarSpace,
    var_of_edge: HashMap<EdgeId, VarId>,
    edge_of_var: Vec<EdgeId>,
}

impl<'g> SymbolicBuilder<'g> {
    fn new(graph: &'g KnowledgeGraph, opts: EncodeOptions) -> Self {
        SymbolicBuilder {
            graph,
            opts,
            vars: VarSpace::new(),
            var_of_edge: HashMap::new(),
            edge_of_var: Vec::new(),
        }
    }

    /// True when the edge's weight is held constant rather than optimized.
    fn frozen(&self, edge: EdgeId) -> bool {
        let (from, to) = self.graph.endpoints(edge);
        (self.opts.freeze_query_edges && self.graph.kind(from) == NodeKind::Query)
            || (self.opts.freeze_answer_edges && self.graph.kind(to) == NodeKind::Answer)
    }

    fn var_for(&mut self, edge: EdgeId) -> VarId {
        if let Some(&v) = self.var_of_edge.get(&edge) {
            return v;
        }
        let (from, to) = self.graph.endpoints(edge);
        let init = self
            .graph
            .weight(edge)
            .clamp(self.opts.weight_lo, self.opts.weight_hi);
        let v = self.vars.add(
            format!("w[{from}->{to}]"),
            init,
            self.opts.weight_lo,
            self.opts.weight_hi,
        );
        self.var_of_edge.insert(edge, v);
        self.edge_of_var.push(edge);
        v
    }

    /// Builds the signomial `S(v_q, v_a) = Σ_z P[z]·c·(1−c)^{|z|}` from the
    /// walks to one answer. Frozen edges fold their current weight into
    /// the coefficient.
    fn similarity_expr(&mut self, paths: &[Path]) -> Signomial {
        let c = self.opts.sim.restart;
        let mut expr = Signomial::zero();
        for path in paths {
            let mut coeff = c * (1.0 - c).powi(path.len() as i32);
            let mut vars = Vec::with_capacity(path.edges.len());
            for &e in &path.edges {
                if self.frozen(e) {
                    coeff *= self.graph.weight(e);
                } else {
                    vars.push(self.var_for(e));
                }
            }
            if coeff != 0.0 {
                expr.push(Monomial::from_path(coeff, vars));
            }
        }
        expr
    }
}

/// Encodes one **negative** vote as the paper's single-vote SGP program
/// (Eq. 11 constraints + the Eq. 12 drift objective).
pub fn encode_single(graph: &KnowledgeGraph, vote: &Vote, opts: &EncodeOptions) -> VoteProgram {
    let mut b = SymbolicBuilder::new(graph, *opts);
    let paths = enumerate_paths(
        graph,
        vote.query,
        &vote.answers,
        &opts.sim,
        opts.max_expansions,
    );
    let truncated = paths.truncated;

    let best_expr = b.similarity_expr(paths.paths_to(vote.best));
    let mut constraints = Vec::new();
    for a in vote.competitors() {
        let a_expr = b.similarity_expr(paths.paths_to(a));
        let margin_expr =
            (a_expr - best_expr.clone() + Signomial::constant(opts.margin)).simplified();
        constraints.push((margin_expr, format!("S({}) < S(best {})", a, vote.best)));
    }

    let mut objective = CompositeObjective::new();
    objective.push(ObjectiveTerm::QuadraticProximal {
        weight: 1.0,
        anchors: b
            .edge_of_var
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                (
                    VarId(i as u32),
                    graph.weight(e).clamp(opts.weight_lo, opts.weight_hi),
                )
            })
            .collect(),
    });

    let mut problem = SgpProblem::new(b.vars, objective);
    let mut constraint_vote = Vec::new();
    let mut vote_margins = Vec::new();
    for (expr, name) in constraints {
        vote_margins.push((0usize, expr.clone()));
        problem.add_constraint_leq_zero(expr, name);
        constraint_vote.push(0);
    }

    VoteProgram {
        problem,
        edge_of_var: b.edge_of_var,
        constraint_vote,
        vote_margins,
        truncated,
    }
}

/// Encodes a batch of votes (negative **and** positive) as one SGP
/// program — the multi-vote solution of Section V.
///
/// With `params.deviation_vars == false` (default) the eliminated smooth
/// form is produced: no constraints, objective
/// `λ1‖x−x0‖² + λ2 Σ σ(w·(S(q,a)−S(q,a*)))`. With explicit deviation
/// variables, each margin gets a shifted variable `d'` with constraint
/// `S(q,a) − S(q,a*) − d' + 1 ≤ 0` and objective term `σ(w·(d'−1))`.
pub fn encode_multi(
    graph: &KnowledgeGraph,
    votes: &[Vote],
    opts: &EncodeOptions,
    params: &MultiParams,
) -> VoteProgram {
    let mut b = SymbolicBuilder::new(graph, *opts);
    let mut truncated = false;
    // (vote index, margin expression) for every competitor of every vote.
    let mut margins: Vec<(usize, Signomial)> = Vec::new();

    for (vi, vote) in votes.iter().enumerate() {
        let paths = enumerate_paths(
            graph,
            vote.query,
            &vote.answers,
            &opts.sim,
            opts.max_expansions,
        );
        truncated |= paths.truncated;
        let best_expr = b.similarity_expr(paths.paths_to(vote.best));
        for a in vote.competitors() {
            let a_expr = b.similarity_expr(paths.paths_to(a));
            margins.push((vi, (a_expr - best_expr.clone()).simplified()));
        }
    }

    let n_edge_vars = b.edge_of_var.len();
    let mut objective = CompositeObjective::new();
    objective.push(ObjectiveTerm::QuadraticProximal {
        weight: params.lambda1,
        anchors: b
            .edge_of_var
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                (
                    VarId(i as u32),
                    graph.weight(e).clamp(opts.weight_lo, opts.weight_hi),
                )
            })
            .collect(),
    });

    let mut constraint_vote = Vec::new();
    let mut vote_margins = Vec::new();

    if params.deviation_vars {
        // Explicit Eq. 15 form with shifted deviation variables.
        let mut problem_constraints = Vec::new();
        for (ci, (vi, margin)) in margins.iter().enumerate() {
            let d = b.vars.add(
                format!("dev[{ci}]"),
                DEVIATION_SHIFT,
                1e-6,
                2.0 * DEVIATION_SHIFT,
            );
            // margin − d' + SHIFT ≤ 0
            let cexpr =
                margin.clone() - Signomial::linear(d, 1.0) + Signomial::constant(DEVIATION_SHIFT);
            problem_constraints.push((cexpr, format!("vote {vi} margin {ci}")));
            objective.push(ObjectiveTerm::SigmoidPenalty {
                weight: params.lambda2,
                steepness: params.steepness,
                inner: Signomial::linear(d, 1.0) - Signomial::constant(DEVIATION_SHIFT),
            });
            vote_margins.push((*vi, margin.clone()));
            constraint_vote.push(*vi);
        }
        let mut problem = SgpProblem::new(b.vars, objective);
        for (expr, name) in problem_constraints {
            problem.add_constraint_leq_zero(expr, name);
        }
        VoteProgram {
            problem,
            edge_of_var: b.edge_of_var,
            constraint_vote,
            vote_margins,
            truncated,
        }
    } else {
        // Eliminated form: sigmoid applied directly to the margins.
        for (vi, margin) in margins {
            objective.push(ObjectiveTerm::SigmoidPenalty {
                weight: params.lambda2,
                steepness: params.steepness,
                inner: margin.clone(),
            });
            vote_margins.push((vi, margin));
        }
        let problem = SgpProblem::new(b.vars, objective);
        debug_assert_eq!(problem.n_vars(), n_edge_vars);
        VoteProgram {
            problem,
            edge_of_var: b.edge_of_var,
            constraint_vote,
            vote_margins,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId};

    /// q -> h1 -> a1, q -> h2 -> a2; a1 currently wins.
    fn two_answer_graph() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.8).unwrap();
        b.add_edge(h2, a2, 0.4).unwrap();
        (b.build(), q, a1, a2)
    }

    #[test]
    fn single_encoding_has_expected_shape() {
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2); // negative: wants a2 first
        let prog = encode_single(&g, &vote, &EncodeOptions::default());
        // One competitor (a1) -> one constraint.
        assert_eq!(prog.problem.n_constraints(), 1);
        // Frozen query edges: only h1->a1 and h2->a2 are variables.
        assert_eq!(prog.n_edge_vars(), 2);
        assert!(!prog.truncated);
    }

    #[test]
    fn constraint_is_violated_at_initial_point() {
        // a1 wins initially, so "S(a1) < S(a2)" must start violated.
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let prog = encode_single(&g, &vote, &EncodeOptions::default());
        let x0 = prog.problem.vars.initial_point();
        assert!(prog.problem.max_violation(&x0) > 0.0);
    }

    #[test]
    fn constraint_matches_numeric_similarity() {
        // The symbolic margin at the initial point equals the numeric
        // similarity difference computed by the DP engine.
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let opts = EncodeOptions::default();
        let prog = encode_single(&g, &vote, &opts);
        let x0 = prog.problem.vars.initial_point();
        let sym_margin = prog.problem.constraints[0].expr.eval(&x0) - opts.margin;
        let phi = kg_sim::phi_vector(&g, q, &opts.sim);
        let num_margin = phi[a1.index()] - phi[a2.index()];
        assert!(
            (sym_margin - num_margin).abs() < 1e-12,
            "{sym_margin} vs {num_margin}"
        );
    }

    #[test]
    fn unfreezing_query_edges_adds_variables() {
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let opts = EncodeOptions {
            freeze_query_edges: false,
            ..Default::default()
        };
        let prog = encode_single(&g, &vote, &opts);
        assert_eq!(prog.n_edge_vars(), 4);
    }

    #[test]
    fn freezing_answer_edges_folds_them_into_coefficients() {
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let opts = EncodeOptions {
            freeze_answer_edges: true,
            ..Default::default()
        };
        let prog = encode_single(&g, &vote, &opts);
        // Everything frozen: no variables at all.
        assert_eq!(prog.n_edge_vars(), 0);
    }

    #[test]
    fn multi_eliminated_form_has_no_constraints() {
        let (g, q, a1, a2) = two_answer_graph();
        let votes = vec![
            Vote::new(q, vec![a1, a2], a2),
            Vote::new(q, vec![a1, a2], a1),
        ];
        let prog = encode_multi(
            &g,
            &votes,
            &EncodeOptions::default(),
            &MultiParams::default(),
        );
        assert_eq!(prog.problem.n_constraints(), 0);
        assert_eq!(prog.vote_margins.len(), 2);
        // Both votes share the same two edge variables.
        assert_eq!(prog.n_edge_vars(), 2);
    }

    #[test]
    fn multi_deviation_form_adds_vars_and_constraints() {
        let (g, q, a1, a2) = two_answer_graph();
        let votes = vec![Vote::new(q, vec![a1, a2], a2)];
        let params = MultiParams {
            deviation_vars: true,
            ..Default::default()
        };
        let prog = encode_multi(&g, &votes, &EncodeOptions::default(), &params);
        assert_eq!(prog.problem.n_constraints(), 1);
        assert_eq!(prog.problem.n_vars(), prog.n_edge_vars() + 1);
        // The deviation constraint is satisfiable at the start (d' can absorb it).
        let x0 = prog.problem.vars.initial_point();
        assert!(prog.problem.max_violation(&x0) < DEVIATION_SHIFT);
    }

    #[test]
    fn violated_margins_counts_current_losses() {
        let (g, q, a1, a2) = two_answer_graph();
        let votes = vec![
            Vote::new(q, vec![a1, a2], a2), // violated at start
            Vote::new(q, vec![a1, a2], a1), // satisfied at start
        ];
        let prog = encode_multi(
            &g,
            &votes,
            &EncodeOptions::default(),
            &MultiParams::default(),
        );
        let x0 = prog.problem.vars.initial_point();
        assert_eq!(prog.violated_margins(&x0), 1);
    }

    #[test]
    fn apply_solution_writes_back_only_changed_edges() {
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let prog = encode_single(&g, &vote, &EncodeOptions::default());
        let mut g2 = g.clone();
        let mut x = prog.problem.vars.initial_point();
        x[0] = (x[0] + 0.1).min(1.0);
        let changed = prog.apply_solution(&x, &mut g2, 1e-12).unwrap();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0], prog.edge_of_var[0]);
        assert!((g2.weight(changed[0]) - x[0]).abs() < 1e-12);
    }

    #[test]
    fn apply_solution_rejects_non_finite_values_atomically() {
        let (g, q, a1, a2) = two_answer_graph();
        let vote = Vote::new(q, vec![a1, a2], a2);
        let prog = encode_single(&g, &vote, &EncodeOptions::default());
        let mut g2 = g.clone();
        let snap = kg_graph::WeightSnapshot::capture(&g2);
        let mut x = prog.problem.vars.initial_point();
        // First variable gets a valid new value, a later one NaN: neither
        // may be written.
        x[0] = (x[0] + 0.1).min(1.0);
        let last = x.len() - 1;
        x[last] = f64::NAN;
        let err = prog.apply_solution(&x, &mut g2, 1e-12).unwrap_err();
        assert!(err.weight.is_nan());
        assert_eq!(snap.squared_distance(&g2), 0.0, "graph must be untouched");
    }
}
