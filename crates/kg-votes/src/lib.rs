//! Voting-based knowledge-graph optimization (Sections IV–V of the
//! paper).
//!
//! The pipeline:
//!
//! 1. A user query is answered with a ranked top-k list (via
//!    [`kg_sim::rank_answers`]).
//! 2. The user casts a [`Vote`]: *negative* when they pick a best answer
//!    that was not ranked first, *positive* when they confirm the top
//!    answer.
//! 3. Votes are *encoded* ([`encode`]): every walk from the query to a
//!    listed answer becomes a monomial over edge-weight variables, and
//!    "the best answer must outscore answer `a`" becomes a signomial
//!    inequality (Eq. 11/13).
//! 4. An SGP solver adjusts the edge weights — either one vote at a time
//!    ([`single::solve_single_votes`], Algorithm 1) or all votes in one
//!    batch with conflict handling via deviation variables and a sigmoid
//!    violation counter ([`multi::solve_multi_votes`], Eq. 15–19).
//!
//! The [`judge`] module implements the paper's extreme-condition filter
//! that discards erroneous votes no weight assignment could satisfy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod encode;
pub mod judge;
pub mod log;
pub mod multi;
pub mod report;
pub mod single;
pub mod solver_choice;
pub mod vote;

pub use aggregate::{aggregate_votes, AggregateStats};
pub use encode::{encode_multi, encode_single, EncodeOptions, VoteProgram};
pub use judge::{judge_vote, JudgeOutcome};
pub use log::{read_log, write_log, GraphFingerprint, LogError, LogHeader};
pub use multi::{solve_multi_votes, MultiVoteOptions};
pub use report::{OptimizationReport, VoteOutcome};
pub use single::{solve_single_votes, SingleVoteOptions};
pub use solver_choice::{run_solver, InnerOpt};
pub use vote::{Vote, VoteKind, VoteSet};
