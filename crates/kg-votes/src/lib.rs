//! Voting-based knowledge-graph optimization (Sections IV–V of the
//! paper).
//!
//! The pipeline:
//!
//! 1. A user query is answered with a ranked top-k list (via
//!    [`kg_sim::rank_answers`]).
//! 2. The user casts a [`Vote`]: *negative* when they pick a best answer
//!    that was not ranked first, *positive* when they confirm the top
//!    answer.
//! 3. Votes are *encoded* ([`encode`]): every walk from the query to a
//!    listed answer becomes a monomial over edge-weight variables, and
//!    "the best answer must outscore answer `a`" becomes a signomial
//!    inequality (Eq. 11/13).
//! 4. An SGP solver adjusts the edge weights — either one vote at a time
//!    ([`single::solve_single_votes`], Algorithm 1) or all votes in one
//!    batch with conflict handling via deviation variables and a sigmoid
//!    violation counter ([`multi::solve_multi_votes`], Eq. 15–19).
//!
//! The [`judge`] module implements the paper's extreme-condition filter
//! that discards erroneous votes no weight assignment could satisfy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod encode;
pub mod judge;
pub mod log;
pub mod multi;
pub mod report;
pub mod single;
pub mod solver_choice;
pub mod vote;
pub mod wal;

pub use aggregate::{aggregate_votes, AggregateStats};
pub use encode::{
    encode_multi, encode_single, ApplyError, EncodeOptions, MultiParams, VoteProgram,
};
pub use judge::{judge_vote, JudgeOutcome};
pub use log::{
    read_log, read_log_reporting, write_log, GraphFingerprint, LogError, LogHeader, TornLine,
};
pub use multi::{solve_multi_votes, MultiVoteOptions};
pub use report::{DiscardedVote, OptimizationReport, SolveOutcome, VoteOutcome};
pub use single::{solve_single_votes, SingleVoteOptions};
pub use solver_choice::{
    run_solver, run_solver_resilient, AttemptOutcome, InnerOpt, ResilientSolve, RetryPolicy,
    SolveAttempt,
};
pub use vote::{Vote, VoteError, VoteKind, VoteSet};
pub use wal::{RoundRecord, TornTail, VoteWal, WalError, WalReplay};

/// Records the shared end-of-pipeline telemetry for a vote solve:
/// constraint/violation counts as `votekg.votes.*` counters (labeled by
/// pipeline) and as fields on the pipeline's span.
pub(crate) fn record_vote_telemetry(
    pipeline: &'static str,
    span: &mut kg_telemetry::Span,
    report: &report::OptimizationReport,
) {
    let stderr_logging = kg_telemetry::log_enabled("votekg.votes", kg_telemetry::Level::Debug);
    if !kg_telemetry::is_enabled() && !stderr_logging {
        return;
    }
    let before = report.violated_votes_before();
    let after = report.violated_votes_after();
    if kg_telemetry::is_enabled() {
        let labels = [("pipeline", pipeline)];
        kg_telemetry::counter_labeled("votekg.votes.solves", &labels).incr();
        kg_telemetry::counter_labeled("votekg.votes.violated_before", &labels).add(before as u64);
        kg_telemetry::counter_labeled("votekg.votes.violated_after", &labels).add(after as u64);
        kg_telemetry::counter_labeled("votekg.votes.discarded", &labels)
            .add(report.discarded_votes as u64);
        kg_telemetry::counter_labeled("votekg.votes.quarantined", &labels)
            .add(report.quarantined_votes as u64);
        span.field("violated_before", before);
        span.field("violated_after", after);
        span.field("discarded", report.discarded_votes);
        span.field("quarantined", report.quarantined_votes);
        span.field("failed_solves", report.failed_solves());
        span.field("edges_changed", report.edges_changed);
        span.field("omega", report.omega());
    }
    kg_telemetry::tevent!(
        kg_telemetry::Level::Debug,
        "votekg.votes",
        "{pipeline} solve: violated {before} -> {after}, discarded {}, quarantined {}, omega {}",
        report.discarded_votes,
        report.quarantined_votes,
        report.omega()
    );
}
