//! Vote aggregation: collapse repeated votes on the same question into
//! majority verdicts before encoding.
//!
//! In deployment many users answer the same question; encoding every raw
//! vote makes the SGP program grow linearly with traffic while adding no
//! information beyond the per-question tally. Aggregation groups votes by
//! `(query, answer list)` and keeps one vote per group — the
//! majority-chosen best answer — which both shrinks the program and
//! resolves *intra-question* conflicts up front (the sigmoid objective
//! then only has to arbitrate the remaining inter-question conflicts).

use crate::vote::{Vote, VoteSet};
use kg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics of one aggregation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Raw votes in.
    pub raw_votes: usize,
    /// Aggregated votes out (one per distinct question/list).
    pub groups: usize,
    /// Groups whose members disagreed on the best answer.
    pub contested_groups: usize,
    /// Raw votes that lost their group's majority (dropped).
    pub overruled_votes: usize,
    /// Groups dropped because no valid majority vote could be formed
    /// (empty tally or an invariant-violating reconstruction). Only
    /// reachable from hand-built `Vote` values that bypassed validation,
    /// but a dropped group beats a panic mid-aggregation.
    pub skipped_groups: usize,
}

/// Aggregates `votes` by `(query, answer list)`, keeping one vote per
/// group whose best answer is the group's majority choice (ties break
/// toward the answer ranked higher in the list, i.e. the more
/// conservative change). Group order follows first appearance.
///
/// ```
/// use kg_graph::NodeId;
/// use kg_votes::{aggregate_votes, Vote, VoteSet};
///
/// let list = vec![NodeId(10), NodeId(11)];
/// let votes = VoteSet::from_votes(vec![
///     Vote::new(NodeId(0), list.clone(), NodeId(11)),
///     Vote::new(NodeId(0), list.clone(), NodeId(11)),
///     Vote::new(NodeId(0), list.clone(), NodeId(10)),
/// ]);
/// let (agg, stats) = aggregate_votes(&votes);
/// assert_eq!(agg.len(), 1);
/// assert_eq!(agg.votes[0].best, NodeId(11)); // 2-1 majority
/// assert_eq!(stats.overruled_votes, 1);
/// ```
pub fn aggregate_votes(votes: &VoteSet) -> (VoteSet, AggregateStats) {
    let mut stats = AggregateStats {
        raw_votes: votes.len(),
        ..Default::default()
    };
    // Group index by (query, answers).
    let mut order: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut tallies: HashMap<(NodeId, Vec<NodeId>), HashMap<NodeId, usize>> = HashMap::new();
    for v in &votes.votes {
        let key = (v.query, v.answers.clone());
        let tally = tallies.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            HashMap::new()
        });
        *tally.entry(v.best).or_insert(0) += 1;
    }

    let mut out = VoteSet::new();
    for key in order {
        let tally = &tallies[&key];
        let (query, answers) = key;
        let total: usize = tally.values().sum();
        let Some(best) = majority_best(&answers, tally) else {
            stats.skipped_groups += 1;
            continue;
        };
        // Reconstruct through the validating constructor: a tally built
        // from invariant-violating votes (struct-literal construction,
        // best outside the list) is skipped, not propagated or panicked on.
        let Ok(vote) = Vote::try_new(query, answers, best) else {
            stats.skipped_groups += 1;
            continue;
        };
        let winners = tally[&best];
        if tally.len() > 1 {
            stats.contested_groups += 1;
            stats.overruled_votes += total - winners;
        }
        out.push(vote);
    }
    stats.groups = out.len();
    (out, stats)
}

/// The majority best answer of one tally: highest count, ties broken
/// toward the answer ranked higher (earlier) in `answers`. Returns `None`
/// for an empty tally instead of panicking — the empty group is a
/// can't-happen under normal grouping, but aggregation runs on replayed
/// on-disk logs and must be total.
fn majority_best(answers: &[NodeId], tally: &HashMap<NodeId, usize>) -> Option<NodeId> {
    tally
        .iter()
        .max_by(|(a, ca), (b, cb)| {
            ca.cmp(cb).then_with(|| {
                // An answer missing from the list sorts as worst-ranked so
                // it can only win an otherwise-tied vote count last.
                let pa = answers.iter().position(|x| x == *a).unwrap_or(usize::MAX);
                let pb = answers.iter().position(|x| x == *b).unwrap_or(usize::MAX);
                pb.cmp(&pa) // smaller position (higher rank) wins the tie
            })
        })
        .map(|(&a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn majority_wins() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(3)),
        ]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.votes[0].best, NodeId(2));
        assert_eq!(stats.raw_votes, 3);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.contested_groups, 1);
        assert_eq!(stats.overruled_votes, 1);
    }

    #[test]
    fn ties_break_toward_the_higher_ranked_answer() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(3)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        // 1-1 tie: answer 2 outranks answer 3 in the list -> conservative pick.
        assert_eq!(agg.votes[0].best, NodeId(2));
    }

    #[test]
    fn distinct_questions_stay_separate() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(9), nodes(&[1, 2]), NodeId(1)),
        ]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 2);
        assert_eq!(stats.contested_groups, 0);
        assert_eq!(stats.overruled_votes, 0);
    }

    #[test]
    fn different_lists_for_same_query_stay_separate() {
        // Same query node, but the system returned different lists (e.g.
        // before and after an earlier optimization round).
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[2, 1]), NodeId(2)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn order_follows_first_appearance() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(5), nodes(&[1, 2]), NodeId(1)),
            Vote::new(NodeId(3), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(5), nodes(&[1, 2]), NodeId(1)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        assert_eq!(agg.votes[0].query, NodeId(5));
        assert_eq!(agg.votes[1].query, NodeId(3));
    }

    #[test]
    fn empty_in_empty_out() {
        let (agg, stats) = aggregate_votes(&VoteSet::new());
        assert!(agg.is_empty());
        assert_eq!(stats, AggregateStats::default());
    }

    #[test]
    fn empty_tally_yields_none_not_panic() {
        // Regression: this used to be `.expect("non-empty tally")`.
        assert_eq!(majority_best(&nodes(&[1, 2]), &HashMap::new()), None);
    }

    #[test]
    fn invalid_group_is_skipped_not_panicked() {
        // A struct-literal vote that bypassed validation: best answer is
        // not in the list. Aggregation must drop the group, count it, and
        // keep processing the valid group that follows.
        let bad = Vote {
            query: NodeId(0),
            answers: nodes(&[1, 2]),
            best: NodeId(99),
        };
        let good = Vote::new(NodeId(7), nodes(&[3, 4]), NodeId(4));
        let votes = VoteSet::from_votes(vec![bad, good.clone()]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.votes, vec![good]);
        assert_eq!(stats.skipped_groups, 1);
        assert_eq!(stats.groups, 1);
    }

    #[test]
    fn tally_with_unlisted_answer_still_totals() {
        // Mixed group: one valid vote, one invariant-violating one. The
        // valid majority wins and the unlisted answer sorts last in ties.
        let bad = Vote {
            query: NodeId(0),
            answers: nodes(&[1, 2]),
            best: NodeId(99),
        };
        let votes = VoteSet::from_votes(vec![bad, Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2))]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.votes[0].best, NodeId(2));
        assert_eq!(stats.skipped_groups, 0);
    }
}
