//! Vote aggregation: collapse repeated votes on the same question into
//! majority verdicts before encoding.
//!
//! In deployment many users answer the same question; encoding every raw
//! vote makes the SGP program grow linearly with traffic while adding no
//! information beyond the per-question tally. Aggregation groups votes by
//! `(query, answer list)` and keeps one vote per group — the
//! majority-chosen best answer — which both shrinks the program and
//! resolves *intra-question* conflicts up front (the sigmoid objective
//! then only has to arbitrate the remaining inter-question conflicts).

use crate::vote::{Vote, VoteSet};
use kg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics of one aggregation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Raw votes in.
    pub raw_votes: usize,
    /// Aggregated votes out (one per distinct question/list).
    pub groups: usize,
    /// Groups whose members disagreed on the best answer.
    pub contested_groups: usize,
    /// Raw votes that lost their group's majority (dropped).
    pub overruled_votes: usize,
}

/// Aggregates `votes` by `(query, answer list)`, keeping one vote per
/// group whose best answer is the group's majority choice (ties break
/// toward the answer ranked higher in the list, i.e. the more
/// conservative change). Group order follows first appearance.
///
/// ```
/// use kg_graph::NodeId;
/// use kg_votes::{aggregate_votes, Vote, VoteSet};
///
/// let list = vec![NodeId(10), NodeId(11)];
/// let votes = VoteSet::from_votes(vec![
///     Vote::new(NodeId(0), list.clone(), NodeId(11)),
///     Vote::new(NodeId(0), list.clone(), NodeId(11)),
///     Vote::new(NodeId(0), list.clone(), NodeId(10)),
/// ]);
/// let (agg, stats) = aggregate_votes(&votes);
/// assert_eq!(agg.len(), 1);
/// assert_eq!(agg.votes[0].best, NodeId(11)); // 2-1 majority
/// assert_eq!(stats.overruled_votes, 1);
/// ```
pub fn aggregate_votes(votes: &VoteSet) -> (VoteSet, AggregateStats) {
    let mut stats = AggregateStats {
        raw_votes: votes.len(),
        ..Default::default()
    };
    // Group index by (query, answers).
    let mut order: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut tallies: HashMap<(NodeId, Vec<NodeId>), HashMap<NodeId, usize>> = HashMap::new();
    for v in &votes.votes {
        let key = (v.query, v.answers.clone());
        let tally = tallies.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            HashMap::new()
        });
        *tally.entry(v.best).or_insert(0) += 1;
    }

    let mut out = VoteSet::new();
    for key in order {
        let tally = &tallies[&key];
        let (query, answers) = key;
        let total: usize = tally.values().sum();
        // Majority best: highest count, ties to the better-ranked answer.
        let &best = tally
            .iter()
            .max_by(|(a, ca), (b, cb)| {
                ca.cmp(cb).then_with(|| {
                    let pa = answers.iter().position(|x| x == *a).expect("in list");
                    let pb = answers.iter().position(|x| x == *b).expect("in list");
                    pb.cmp(&pa) // smaller position (higher rank) wins the tie
                })
            })
            .map(|(a, _)| a)
            .expect("non-empty tally");
        let winners = tally[&best];
        if tally.len() > 1 {
            stats.contested_groups += 1;
            stats.overruled_votes += total - winners;
        }
        out.push(Vote::new(query, answers, best));
    }
    stats.groups = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn majority_wins() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(3)),
        ]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg.votes[0].best, NodeId(2));
        assert_eq!(stats.raw_votes, 3);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.contested_groups, 1);
        assert_eq!(stats.overruled_votes, 1);
    }

    #[test]
    fn ties_break_toward_the_higher_ranked_answer() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(3)),
            Vote::new(NodeId(0), nodes(&[1, 2, 3]), NodeId(2)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        // 1-1 tie: answer 2 outranks answer 3 in the list -> conservative pick.
        assert_eq!(agg.votes[0].best, NodeId(2));
    }

    #[test]
    fn distinct_questions_stay_separate() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(9), nodes(&[1, 2]), NodeId(1)),
        ]);
        let (agg, stats) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 2);
        assert_eq!(stats.contested_groups, 0);
        assert_eq!(stats.overruled_votes, 0);
    }

    #[test]
    fn different_lists_for_same_query_stay_separate() {
        // Same query node, but the system returned different lists (e.g.
        // before and after an earlier optimization round).
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(0), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(0), nodes(&[2, 1]), NodeId(2)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn order_follows_first_appearance() {
        let votes = VoteSet::from_votes(vec![
            Vote::new(NodeId(5), nodes(&[1, 2]), NodeId(1)),
            Vote::new(NodeId(3), nodes(&[1, 2]), NodeId(2)),
            Vote::new(NodeId(5), nodes(&[1, 2]), NodeId(1)),
        ]);
        let (agg, _) = aggregate_votes(&votes);
        assert_eq!(agg.votes[0].query, NodeId(5));
        assert_eq!(agg.votes[1].query, NodeId(3));
    }

    #[test]
    fn empty_in_empty_out() {
        let (agg, stats) = aggregate_votes(&VoteSet::new());
        assert!(agg.is_empty());
        assert_eq!(stats, AggregateStats::default());
    }
}
