//! The extreme-condition feasibility judgment (Section V).
//!
//! An erroneous vote picks a best answer that *cannot* reach the top no
//! matter how the weights change (e.g. the answer shares too little with
//! the query). Encoding such votes wastes solver effort and distorts the
//! graph, so the paper filters them first: set every edge exclusive to
//! the best answer's paths to the maximum weight 1, every edge exclusive
//! to the competitor's paths to 0, shared edges to a constant in (0, 1) —
//! and check whether the best answer *then* outscores the answer ranked
//! immediately above it.

use crate::encode::EncodeOptions;
use crate::vote::Vote;
use kg_graph::{EdgeId, KnowledgeGraph, NodeKind};
use kg_sim::pdist::{enumerate_paths, Path};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Result of judging one vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JudgeOutcome {
    /// The vote can be satisfied under the extreme condition — encode it.
    Encodable,
    /// No weight assignment can rank the voted answer above its
    /// predecessor — discard the vote as erroneous.
    Erroneous,
    /// Positive votes confirm the status quo and are always encodable.
    Positive,
}

/// Judges whether a vote is worth encoding (Section V's filter).
///
/// `shared_weight` is the constant assigned to edges appearing in both
/// path sets (the paper requires any value strictly between 0 and 1).
/// Frozen edges (per `opts`) keep their current graph weight, since the
/// optimizer cannot move them either.
pub fn judge_vote(
    graph: &KnowledgeGraph,
    vote: &Vote,
    opts: &EncodeOptions,
    shared_weight: f64,
) -> JudgeOutcome {
    assert!(
        shared_weight > 0.0 && shared_weight < 1.0,
        "shared weight must lie strictly between 0 and 1"
    );
    let Some(above) = vote.answer_above_best() else {
        return JudgeOutcome::Positive;
    };

    let paths = enumerate_paths(
        graph,
        vote.query,
        &[vote.best, above],
        &opts.sim,
        opts.max_expansions,
    );
    let best_paths = paths.paths_to(vote.best);
    if best_paths.is_empty() {
        // Unreachable within L: similarity is identically zero.
        return JudgeOutcome::Erroneous;
    }
    let above_paths = paths.paths_to(above);

    let set_best: HashSet<EdgeId> = best_paths
        .iter()
        .flat_map(|p| p.edges.iter().copied())
        .collect();
    let set_above: HashSet<EdgeId> = above_paths
        .iter()
        .flat_map(|p| p.edges.iter().copied())
        .collect();

    let frozen = |e: EdgeId| {
        let (from, to) = graph.endpoints(e);
        (opts.freeze_query_edges && graph.kind(from) == NodeKind::Query)
            || (opts.freeze_answer_edges && graph.kind(to) == NodeKind::Answer)
    };
    let extreme_weight = |e: EdgeId| -> f64 {
        if frozen(e) {
            return graph.weight(e);
        }
        match (set_best.contains(&e), set_above.contains(&e)) {
            (true, true) => shared_weight,
            (true, false) => 1.0,
            (false, true) => 0.0,
            (false, false) => graph.weight(e), // unreachable from these paths
        }
    };

    let eval = |paths: &[Path]| -> f64 {
        let c = opts.sim.restart;
        paths
            .iter()
            .map(|p| {
                let prob: f64 = p.edges.iter().map(|&e| extreme_weight(e)).product();
                prob * c * (1.0 - c).powi(p.len() as i32)
            })
            .sum()
    };

    if eval(best_paths) > eval(above_paths) {
        JudgeOutcome::Encodable
    } else {
        JudgeOutcome::Erroneous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId};

    /// q -> h1 -> a1 (strong), q -> h2 -> a2 (weak but fixable).
    fn fixable() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.9).unwrap();
        b.add_edge(h2, a2, 0.1).unwrap();
        (b.build(), q, a1, a2)
    }

    #[test]
    fn fixable_negative_vote_is_encodable() {
        let (g, q, a1, a2) = fixable();
        let vote = Vote::new(q, vec![a1, a2], a2);
        assert_eq!(
            judge_vote(&g, &vote, &EncodeOptions::default(), 0.5),
            JudgeOutcome::Encodable
        );
    }

    #[test]
    fn positive_vote_short_circuits() {
        let (g, q, a1, a2) = fixable();
        let vote = Vote::new(q, vec![a1, a2], a1);
        assert_eq!(
            judge_vote(&g, &vote, &EncodeOptions::default(), 0.5),
            JudgeOutcome::Positive
        );
    }

    #[test]
    fn unreachable_best_is_erroneous() {
        // a2 has no incoming path from q at all.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 1.0).unwrap();
        b.add_edge(h1, a1, 1.0).unwrap();
        let g = b.build();
        let vote = Vote::new(q, vec![a1, a2], a2);
        assert_eq!(
            judge_vote(&g, &vote, &EncodeOptions::default(), 0.5),
            JudgeOutcome::Erroneous
        );
    }

    #[test]
    fn longer_only_path_can_lose_even_at_weight_one() {
        // Best answer only reachable by a much longer path than the rival:
        // even with every exclusive edge at 1.0, the decay (1-c)^l plus a
        // shared bottleneck decides. Construct: q->s (shared), s->a1
        // (rival, exclusive), s->e1->e2->e3->a2 (best, exclusive). At the
        // extreme, S(a1) = shared*1*c(1-c)^2 ... wait shared edge is in
        // both sets -> weight 0.5; S(a1) = 0.5*0*... rival edges are set
        // to 0! So the rival always loses when it has an exclusive edge.
        // The genuinely unfixable case is a *frozen* rival edge.
        let opts = EncodeOptions {
            freeze_answer_edges: true,
            ..Default::default()
        };
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let s = b.add_node("s", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let e1 = b.add_node("e1", NodeKind::Entity);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, s, 1.0).unwrap();
        b.add_edge(s, a1, 0.9).unwrap(); // frozen answer edge, high
        b.add_edge(s, e1, 0.5).unwrap();
        b.add_edge(e1, a2, 0.01).unwrap(); // frozen answer edge, tiny
        let g = b.build();
        let vote = Vote::new(q, vec![a1, a2], a2);
        // Best path: q-s-e1-a2 with s->e1 free (→1), e1->a2 frozen 0.01:
        // S(best) = 1*1*0.01*c(1-c)^3 < S(a1) = 1*0.9*c(1-c)^2.
        assert_eq!(judge_vote(&g, &vote, &opts, 0.5), JudgeOutcome::Erroneous);
    }

    #[test]
    fn shared_edges_use_the_constant() {
        // Both answers hang off the same hub; only answer edges differ and
        // both are free: best gets 1, above gets 0 -> encodable.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let hub = b.add_node("hub", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, hub, 1.0).unwrap();
        b.add_edge(hub, a1, 0.9).unwrap();
        b.add_edge(hub, a2, 0.1).unwrap();
        let g = b.build();
        let vote = Vote::new(q, vec![a1, a2], a2);
        assert_eq!(
            judge_vote(&g, &vote, &EncodeOptions::default(), 0.5),
            JudgeOutcome::Encodable
        );
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn invalid_shared_weight_panics() {
        let (g, q, a1, a2) = fixable();
        let vote = Vote::new(q, vec![a1, a2], a2);
        judge_vote(&g, &vote, &EncodeOptions::default(), 1.0);
    }
}
