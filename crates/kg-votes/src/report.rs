//! Shared result types for the optimization pipelines.

use crate::vote::VoteKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How edge weights are re-normalized after applying a solution
/// (`NormalizeEdges` in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormalizeMode {
    /// Leave weights exactly as the solver set them.
    None,
    /// Re-normalize only the out-rows of nodes with a changed edge — the
    /// default: it restores local stochasticity without perturbing
    /// untouched parts of the graph.
    TouchedRows,
    /// Re-normalize every node's out-edges.
    AllRows,
}

/// Per-vote outcome of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteOutcome {
    /// Index of the vote in the input [`crate::VoteSet`].
    pub vote_index: usize,
    /// Positive or negative.
    pub kind: VoteKind,
    /// Rank of the voted best answer within the vote's answer list,
    /// under the *original* graph (`rank_t` of Definition 3).
    pub rank_before: usize,
    /// The same rank under the optimized graph (`rank'_t`).
    pub rank_after: usize,
    /// False when the vote was skipped (positive vote in the single-vote
    /// pipeline, or judged erroneous in the multi-vote pipeline).
    pub encoded: bool,
    /// For per-vote solves: whether the SGP solver reached feasibility.
    pub feasible: Option<bool>,
}

impl VoteOutcome {
    /// `rank_t − rank'_t` — this vote's contribution to Ω (Definition 3).
    pub fn rank_gain(&self) -> i64 {
        self.rank_before as i64 - self.rank_after as i64
    }
}

/// Outcome of one SGP solve performed during an optimization run.
///
/// A run performs one solve (multi-vote), one per negative vote
/// (single-vote), or one per cluster (split-and-merge); each is reported
/// here instead of being silently dropped on failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveOutcome {
    /// The solve succeeded with the primary solver configuration and its
    /// solution was applied.
    Applied,
    /// The primary solve failed but a fallback inner optimizer recovered;
    /// the fallback's solution was applied.
    Degraded {
        /// Stable label of the fallback inner optimizer that succeeded.
        fallback: String,
        /// Attempts consumed before success (1 = first fallback).
        retries: usize,
    },
    /// The wall-clock budget ran out; the best iterate found so far was
    /// applied.
    TimedOut,
    /// Every attempt failed; nothing was applied and the involved votes
    /// were quarantined.
    Failed {
        /// Human-readable description of the last failure.
        error: String,
    },
}

impl SolveOutcome {
    /// True when a solution (possibly degraded or budget-truncated) was
    /// applied to the graph.
    pub fn applied(&self) -> bool {
        !matches!(self, SolveOutcome::Failed { .. })
    }
}

/// A vote excluded from optimization, with the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscardedVote {
    /// Index of the vote in the input [`crate::VoteSet`].
    pub vote_index: usize,
    /// Why the vote was excluded.
    pub reason: String,
}

/// Aggregate result of an optimization run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OptimizationReport {
    /// One outcome per *valid* input vote, in input order. Votes whose
    /// best answer is absent from their own answer list (stale or corrupt
    /// log entries) are recorded in `discards` instead — they cannot be
    /// ranked at all.
    pub outcomes: Vec<VoteOutcome>,
    /// Votes excluded before solving: invalid, judged erroneous, or with
    /// every relevant edge frozen. Reasons are in `discards`.
    pub discarded_votes: usize,
    /// Votes whose solve produced no applicable solution (solver error or
    /// a non-finite solution after all retries): their graph contribution
    /// was rolled back or never applied.
    pub quarantined_votes: usize,
    /// Per-exclusion reasons for discarded and quarantined votes.
    pub discards: Vec<DiscardedVote>,
    /// One entry per SGP solve attempted, in execution order.
    pub solves: Vec<SolveOutcome>,
    /// Edges whose weight changed.
    pub edges_changed: usize,
    /// Total inner solver iterations.
    pub solver_inner_iterations: usize,
    /// Wall-clock time spent inside SGP solves.
    pub solver_elapsed: Duration,
    /// Wall-clock time of the whole pipeline (encoding + solving +
    /// application).
    pub total_elapsed: Duration,
}

impl OptimizationReport {
    /// The graph score `Ω(G*) = Σ_t (rank_t − rank'_t)` (Eq. 5).
    pub fn omega(&self) -> i64 {
        self.outcomes.iter().map(VoteOutcome::rank_gain).sum()
    }

    /// `Ω_avg = Ω / (|T⁻| + |T⁺|)` (Eq. 21).
    pub fn omega_avg(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.omega() as f64 / self.outcomes.len() as f64
        }
    }

    /// Number of votes whose best answer ended ranked first.
    pub fn satisfied_votes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.rank_after == 1).count()
    }

    /// Votes whose best answer was *not* ranked first under the input
    /// graph — the violations the optimization sets out to repair.
    pub fn violated_votes_before(&self) -> usize {
        self.outcomes.iter().filter(|o| o.rank_before != 1).count()
    }

    /// Votes whose best answer is still not ranked first under the
    /// optimized graph.
    pub fn violated_votes_after(&self) -> usize {
        self.outcomes.iter().filter(|o| o.rank_after != 1).count()
    }

    /// Solves that failed outright (nothing applied).
    pub fn failed_solves(&self) -> usize {
        self.solves
            .iter()
            .filter(|s| matches!(s, SolveOutcome::Failed { .. }))
            .count()
    }

    /// Solves that succeeded only via a fallback inner optimizer.
    pub fn degraded_solves(&self) -> usize {
        self.solves
            .iter()
            .filter(|s| matches!(s, SolveOutcome::Degraded { .. }))
            .count()
    }

    /// Solves truncated by the wall-clock budget (best iterate applied).
    pub fn timed_out_solves(&self) -> usize {
        self.solves
            .iter()
            .filter(|s| matches!(s, SolveOutcome::TimedOut))
            .count()
    }

    /// Records a vote exclusion: bumps the chosen counter and keeps the
    /// reason.
    pub(crate) fn exclude_vote(&mut self, vote_index: usize, reason: String, quarantine: bool) {
        if quarantine {
            self.quarantined_votes += 1;
        } else {
            self.discarded_votes += 1;
        }
        self.discards.push(DiscardedVote { vote_index, reason });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(before: usize, after: usize) -> VoteOutcome {
        VoteOutcome {
            vote_index: 0,
            kind: VoteKind::Negative,
            rank_before: before,
            rank_after: after,
            encoded: true,
            feasible: None,
        }
    }

    #[test]
    fn omega_sums_rank_gains() {
        let r = OptimizationReport {
            outcomes: vec![outcome(3, 1), outcome(2, 2), outcome(1, 2)],
            ..Default::default()
        };
        assert_eq!(r.omega(), 1); // (3-1) + (2-2) + (1-2)
        assert!((r.omega_avg() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_omega() {
        let r = OptimizationReport::default();
        assert_eq!(r.omega(), 0);
        assert_eq!(r.omega_avg(), 0.0);
        assert_eq!(r.satisfied_votes(), 0);
    }

    #[test]
    fn satisfied_votes_counts_rank_one() {
        let r = OptimizationReport {
            outcomes: vec![outcome(3, 1), outcome(2, 2)],
            ..Default::default()
        };
        assert_eq!(r.satisfied_votes(), 1);
    }
}
