//! The single-vote solution (Algorithm 1 of the paper).
//!
//! Negative votes are processed sequentially and greedily: each becomes
//! its own SGP program (constraints Eq. 11, drift objective Eq. 12), is
//! solved, and its solution is written back to the graph before the next
//! vote is encoded. Positive votes are ignored — the paper notes this is
//! exactly the weakness (top-1 answers can degrade) that motivates the
//! multi-vote solution.

use crate::encode::{encode_single, EncodeOptions, VoteProgram};
use crate::judge::{judge_vote, JudgeOutcome};
use crate::report::{NormalizeMode, OptimizationReport, VoteOutcome};
use crate::solver_choice::{run_solver_resilient, InnerOpt, RetryPolicy};
use crate::vote::VoteSet;
use kg_graph::{EdgeId, KnowledgeGraph, WeightSnapshot};
use kg_sim::topk::rank_of;
use serde::{Deserialize, Serialize};
use sgp::SolveOptions;
use std::collections::HashSet;
use std::time::Instant;

/// Controls for [`solve_single_votes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleVoteOptions {
    /// Vote-encoding parameters.
    pub encode: EncodeOptions,
    /// SGP solver parameters.
    pub solve: SolveOptions,
    /// Use the augmented-Lagrangian outer loop instead of the exterior
    /// penalty (ablation knob).
    pub use_auglag: bool,
    /// Inner optimizer for the SGP solves.
    pub inner: InnerOpt,
    /// Run the extreme-condition judgment before encoding each vote.
    /// Algorithm 1 as printed does not judge; enabling this is the
    /// natural extension and is on by default in the multi-vote pipeline.
    pub judge: bool,
    /// Shared-edge constant used by the judgment.
    pub shared_weight: f64,
    /// Post-application weight normalization.
    pub normalize: NormalizeMode,
    /// Fallback chain for failed solves.
    pub retry: RetryPolicy,
}

impl Default for SingleVoteOptions {
    fn default() -> Self {
        SingleVoteOptions {
            encode: EncodeOptions::default(),
            solve: SolveOptions::default(),
            use_auglag: false,
            inner: InnerOpt::Adam,
            judge: false,
            shared_weight: 0.5,
            normalize: NormalizeMode::TouchedRows,
            retry: RetryPolicy::default(),
        }
    }
}

/// Runs Algorithm 1: greedy per-negative-vote optimization, mutating
/// `graph` in place.
///
/// Ranks in the report are computed against each vote's own answer list:
/// `rank_before` under the input graph, `rank_after` under the final
/// optimized graph.
pub fn solve_single_votes(
    graph: &mut KnowledgeGraph,
    votes: &VoteSet,
    opts: &SingleVoteOptions,
) -> OptimizationReport {
    let mut span = kg_telemetry::span!("votekg.votes.single", { votes: votes.len() });
    let started = Instant::now();
    let mut report = OptimizationReport::default();
    let mut changed_edges: HashSet<EdgeId> = HashSet::new();

    // Ranks under the original graph, before any mutation. A vote whose
    // best answer is absent from its own answer list (a stale or corrupt
    // log entry) cannot be ranked: it is discarded with a reason instead
    // of panicking.
    let ranks_before = validate_votes(graph, votes, &opts.encode, &mut report);

    let mut encoded = vec![false; votes.len()];
    let mut feasible: Vec<Option<bool>> = vec![None; votes.len()];

    for (idx, vote) in votes.negatives() {
        if ranks_before[idx].is_none() {
            continue; // invalid vote, already discarded
        }
        if opts.judge
            && judge_vote(graph, vote, &opts.encode, opts.shared_weight) == JudgeOutcome::Erroneous
        {
            report.exclude_vote(
                idx,
                "judged erroneous (unsatisfiable vote)".to_string(),
                false,
            );
            continue;
        }
        let prog = encode_single(graph, vote, &opts.encode);
        if prog.problem.n_vars() == 0 {
            // Every relevant edge frozen: nothing to optimize.
            report.exclude_vote(idx, "every relevant edge is frozen".to_string(), false);
            continue;
        }
        let solve_started = Instant::now();
        let solved = run_solver_resilient(
            &prog.problem,
            &opts.solve,
            opts.use_auglag,
            opts.inner,
            &opts.retry,
        );
        report.solver_elapsed += solve_started.elapsed();
        report.solves.push(solved.outcome.clone());
        let Some(result) = solved.result else {
            report.exclude_vote(idx, format!("solver failed: {:?}", solved.outcome), true);
            continue;
        };
        report.solver_inner_iterations += result.inner_iterations;

        match apply_guarded(&prog, &result.x, graph, opts.normalize) {
            Ok(changed) => {
                encoded[idx] = true;
                feasible[idx] = Some(result.feasible);
                changed_edges.extend(changed);
            }
            Err(reason) => report.exclude_vote(idx, reason, true),
        }
    }

    for (idx, vote) in votes.votes.iter().enumerate() {
        let Some(rank_before) = ranks_before[idx] else {
            continue; // invalid vote: no outcome entry
        };
        let rank_after = rank_of(
            graph,
            vote.query,
            &vote.answers,
            &opts.encode.sim,
            vote.best,
        )
        .unwrap_or(rank_before);
        report.outcomes.push(VoteOutcome {
            vote_index: idx,
            kind: vote.kind(),
            rank_before,
            rank_after,
            encoded: encoded[idx],
            feasible: feasible[idx],
        });
    }
    report.edges_changed = changed_edges.len();
    report.total_elapsed = started.elapsed();
    crate::record_vote_telemetry("single", &mut span, &report);
    report
}

/// Computes every vote's pre-optimization rank; `None` marks a vote whose
/// best answer is missing from its answer list. Such votes are recorded
/// as discarded (with reason) on `report`. Shared by the vote pipelines.
pub fn validate_votes(
    graph: &KnowledgeGraph,
    votes: &VoteSet,
    encode: &EncodeOptions,
    report: &mut OptimizationReport,
) -> Vec<Option<usize>> {
    votes
        .votes
        .iter()
        .enumerate()
        .map(|(idx, v)| {
            let rank = rank_of(graph, v.query, &v.answers, &encode.sim, v.best);
            if rank.is_none() {
                report.exclude_vote(
                    idx,
                    "best answer missing from the vote's answer list".to_string(),
                    false,
                );
                kg_telemetry::tevent!(
                    kg_telemetry::Level::Warn,
                    "votekg.votes",
                    "discarding invalid vote {idx}: best answer not in answer list"
                );
            }
            rank
        })
        .collect()
}

/// Applies a solution behind a snapshot guard: a non-finite solution is
/// rejected before any write, and if post-application normalization
/// somehow leaves a non-finite weight the whole graph is rolled back.
/// Returns the changed edges, or the rejection reason with the graph
/// guaranteed unchanged.
pub(crate) fn apply_guarded(
    prog: &VoteProgram,
    x: &[f64],
    graph: &mut KnowledgeGraph,
    mode: NormalizeMode,
) -> Result<Vec<EdgeId>, String> {
    let snapshot = WeightSnapshot::capture(graph);
    let changed = prog
        .apply_solution(x, graph, 1e-12)
        .map_err(|e| e.to_string())?;
    normalize_after(graph, &changed, mode);
    // squared_distance scans every weight: non-finite anywhere poisons it.
    if !snapshot.squared_distance(graph).is_finite() {
        snapshot.restore(graph);
        return Err("normalization produced a non-finite weight; rolled back".to_string());
    }
    Ok(changed)
}

/// Applies the configured normalization after a batch of edge changes.
/// Shared by the multi-vote and split-and-merge pipelines.
pub fn normalize_after(graph: &mut KnowledgeGraph, changed: &[EdgeId], mode: NormalizeMode) {
    match mode {
        NormalizeMode::None => {}
        NormalizeMode::TouchedRows => {
            let mut rows: Vec<_> = changed.iter().map(|&e| graph.endpoints(e).0).collect();
            rows.sort_unstable();
            rows.dedup();
            for r in rows {
                graph.normalize_node(r);
            }
        }
        NormalizeMode::AllRows => graph.normalize_out_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Vote;
    use kg_graph::{GraphBuilder, NodeId, NodeKind};

    /// q -> h1 -> a1 (winner), q -> h2 -> a2 (user's pick).
    fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        (b.build(), q, a1, a2)
    }

    #[test]
    fn negative_vote_promotes_best_answer() {
        let (mut g, q, a1, a2) = scene();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let opts = SingleVoteOptions {
            normalize: NormalizeMode::None,
            ..Default::default()
        };
        let report = solve_single_votes(&mut g, &votes, &opts);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].rank_before, 2);
        assert_eq!(
            report.outcomes[0].rank_after, 1,
            "vote should promote a2: {report:?}"
        );
        assert_eq!(report.omega(), 1);
        assert!(report.edges_changed > 0);
    }

    #[test]
    fn positive_votes_are_ignored() {
        let (mut g, q, a1, a2) = scene();
        let before = kg_graph::WeightSnapshot::capture(&g);
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a1)]);
        let report = solve_single_votes(&mut g, &votes, &SingleVoteOptions::default());
        assert!(!report.outcomes[0].encoded);
        assert_eq!(report.edges_changed, 0);
        assert_eq!(before.squared_distance(&g), 0.0);
    }

    #[test]
    fn normalization_keeps_rows_stochastic() {
        let (mut g, q, a1, a2) = scene();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let opts = SingleVoteOptions {
            normalize: NormalizeMode::AllRows,
            ..Default::default()
        };
        solve_single_votes(&mut g, &votes, &opts);
        assert!(g.is_row_stochastic(1e-9));
    }

    #[test]
    fn judge_filters_unfixable_votes() {
        // a2 unreachable: with judging on, the vote is discarded and the
        // graph is untouched.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 1.0).unwrap();
        b.add_edge(h1, a1, 1.0).unwrap();
        let mut g = b.build();
        let snap = kg_graph::WeightSnapshot::capture(&g);
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let opts = SingleVoteOptions {
            judge: true,
            ..Default::default()
        };
        let report = solve_single_votes(&mut g, &votes, &opts);
        assert_eq!(report.discarded_votes, 1);
        assert_eq!(snap.squared_distance(&g), 0.0);
    }

    #[test]
    fn sequential_votes_both_apply() {
        // Two independent query structures in one graph; both negative
        // votes should be satisfied.
        let mut b = GraphBuilder::new();
        let q1 = b.add_node("q1", NodeKind::Query);
        let q2 = b.add_node("q2", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let h3 = b.add_node("h3", NodeKind::Entity);
        let h4 = b.add_node("h4", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        let a3 = b.add_node("a3", NodeKind::Answer);
        let a4 = b.add_node("a4", NodeKind::Answer);
        b.add_edge(q1, h1, 0.5).unwrap();
        b.add_edge(q1, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.8).unwrap();
        b.add_edge(h2, a2, 0.2).unwrap();
        b.add_edge(q2, h3, 0.5).unwrap();
        b.add_edge(q2, h4, 0.5).unwrap();
        b.add_edge(h3, a3, 0.9).unwrap();
        b.add_edge(h4, a4, 0.1).unwrap();
        let mut g = b.build();
        let votes = VoteSet::from_votes(vec![
            Vote::new(q1, vec![a1, a2], a2),
            Vote::new(q2, vec![a3, a4], a4),
        ]);
        let opts = SingleVoteOptions {
            normalize: NormalizeMode::None,
            ..Default::default()
        };
        let report = solve_single_votes(&mut g, &votes, &opts);
        assert_eq!(report.omega(), 2, "{report:?}");
        assert_eq!(report.satisfied_votes(), 2);
    }

    #[test]
    fn report_times_are_populated() {
        let (mut g, q, a1, a2) = scene();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let report = solve_single_votes(&mut g, &votes, &SingleVoteOptions::default());
        assert!(report.total_elapsed >= report.solver_elapsed);
        assert!(report.solver_inner_iterations > 0);
    }
}
