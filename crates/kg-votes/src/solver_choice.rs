//! Solver selection shared by the vote pipelines: outer loop (exterior
//! penalty vs augmented Lagrangian) × inner optimizer (projected Adam,
//! projected gradient, projected L-BFGS) — plus the fault-tolerant
//! [`run_solver_resilient`] wrapper that retries failed solves through a
//! fallback inner-optimizer chain.

use crate::report::SolveOutcome;
use serde::{Deserialize, Serialize};
use sgp::{
    AdamOptimizer, AugLagSolver, ConvergenceReason, LbfgsOptimizer, PenaltySolver,
    ProjGradOptimizer, SgpProblem, SolveError, SolveOptions, SolveResult, Solver,
};

/// Which inner (smooth, box-constrained) optimizer the SGP solves use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InnerOpt {
    /// Projected Adam (default): robust on badly scaled vote programs.
    #[default]
    Adam,
    /// Projected gradient with Armijo backtracking: monotone, simple.
    ProjGrad,
    /// Projected L-BFGS: curvature-aware, fewer iterations on smooth
    /// regions, slightly costlier per step.
    Lbfgs,
}

impl InnerOpt {
    /// Stable label used in telemetry and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            InnerOpt::Adam => "adam",
            InnerOpt::ProjGrad => "projgrad",
            InnerOpt::Lbfgs => "lbfgs",
        }
    }

    /// Flight-recorder span name for a solve running on this inner
    /// optimizer — the per-inner-optimizer attribution in timeline
    /// reports (`&'static` so it packs into a fixed-size ring slot).
    pub fn solve_span_name(self) -> &'static str {
        match self {
            InnerOpt::Adam => "votekg.votes.solve.adam",
            InnerOpt::ProjGrad => "votekg.votes.solve.projgrad",
            InnerOpt::Lbfgs => "votekg.votes.solve.lbfgs",
        }
    }
}

/// How a failed solve is retried.
///
/// A solve that errors or returns a non-finite solution is re-run with
/// the next inner optimizer from the fallback chain (the remaining
/// optimizers of lbfgs → adam → projgrad, skipping the primary) under a
/// shrunken step budget. By default a solve truncated by the wall-clock
/// budget is *not* retried — its best iterate is the graceful-degradation
/// answer — but [`retry_timeouts`](RetryPolicy::retry_timeouts) opts a
/// caller into walking the chain on timeouts too (each attempt gets its
/// own budget, so the worst case multiplies accordingly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum fallback attempts after the primary solve (0 disables
    /// retries entirely).
    pub max_retries: usize,
    /// Multiplier on `max_inner_iters` for each fallback attempt, so
    /// retries cannot multiply the round's worst-case cost.
    pub fallback_iter_scale: f64,
    /// Also retry solves truncated by the wall-clock budget, keeping the
    /// least-violating truncated iterate as the answer of last resort.
    /// Off by default: each attempt runs under its own budget, so a
    /// pathological round costs up to `1 + max_retries` budgets.
    pub retry_timeouts: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            fallback_iter_scale: 0.5,
            retry_timeouts: false,
        }
    }
}

impl RetryPolicy {
    /// The attempt chain: the primary inner optimizer followed by up to
    /// `max_retries` distinct fallbacks in preference order.
    pub fn chain(&self, primary: InnerOpt) -> Vec<InnerOpt> {
        let mut chain = vec![primary];
        for opt in [InnerOpt::Lbfgs, InnerOpt::Adam, InnerOpt::ProjGrad] {
            if chain.len() > self.max_retries {
                break;
            }
            if !chain.contains(&opt) {
                chain.push(opt);
            }
        }
        chain.truncate(1 + self.max_retries);
        chain
    }
}

/// How one attempt of a resilient solve chain ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttemptOutcome {
    /// Finite result, not truncated by the wall-clock budget.
    Converged,
    /// Finite result, but the wall-clock budget fired first.
    TimedOut,
    /// The solver returned a non-finite solution.
    NonFinite,
    /// The solver returned an error.
    Error(String),
}

/// One attempt in a resilient solve chain: which inner optimizer ran and
/// how it ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveAttempt {
    /// The inner optimizer this attempt used.
    pub inner: InnerOpt,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// A [`run_solver_resilient`] outcome: the usable result (if any) plus
/// the report-ready classification.
#[derive(Debug, Clone)]
pub struct ResilientSolve {
    /// The applied-or-applicable solve result; `None` when every attempt
    /// failed.
    pub result: Option<SolveResult>,
    /// Report classification of this solve.
    pub outcome: SolveOutcome,
    /// Fallback attempts consumed (0 = primary succeeded).
    pub retries: usize,
    /// Per-attempt history, in execution order (always non-empty).
    pub attempts: Vec<SolveAttempt>,
}

/// True when the solution vector and objective are usable numbers.
fn result_is_finite(r: &SolveResult) -> bool {
    r.objective.is_finite() && r.x.iter().all(|v| v.is_finite())
}

fn record_failure(cause: &'static str, detail: &str) {
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter_labeled("votekg.solver.failures", &[("cause", cause)]).incr();
    }
    kg_telemetry::tevent!(
        kg_telemetry::Level::Warn,
        "votekg.solver",
        "solve failed ({cause}): {detail}"
    );
}

/// Runs the configured solver with the retry policy: failures (solver
/// errors and non-finite solutions) fall back through the policy's inner
/// optimizer chain; a budget-truncated solve returns its best iterate as
/// [`SolveOutcome::TimedOut`]. Emits `votekg.solver.failures/retries/
/// timeouts` telemetry. Panics are *not* caught here — kg-cluster
/// isolates them at the per-cluster boundary.
pub fn run_solver_resilient(
    problem: &SgpProblem,
    opts: &SolveOptions,
    use_auglag: bool,
    inner: InnerOpt,
    retry: &RetryPolicy,
) -> ResilientSolve {
    let chain = retry.chain(inner);
    let mut last_error = String::new();
    let mut attempts: Vec<SolveAttempt> = Vec::with_capacity(chain.len());
    // With `retry_timeouts`, the least-violating truncated iterate seen so
    // far: the graceful-degradation answer if the whole chain times out.
    let mut truncated_best: Option<SolveResult> = None;
    for (attempt, &attempt_inner) in chain.iter().enumerate() {
        let mut attempt_opts = opts.clone();
        if attempt > 0 {
            attempt_opts.max_inner_iters =
                ((opts.max_inner_iters as f64 * retry.fallback_iter_scale).ceil() as usize).max(1);
            if kg_telemetry::is_enabled() {
                kg_telemetry::counter("votekg.solver.retries").incr();
            }
            kg_telemetry::tevent!(
                kg_telemetry::Level::Warn,
                "votekg.solver",
                "retrying with fallback inner optimizer {} (attempt {attempt}): {last_error}",
                attempt_inner.as_str()
            );
        }
        let attempt_result = {
            let mut solve_span = kg_telemetry::span!(attempt_inner.solve_span_name(), {
                vars: problem.n_vars(),
                constraints: problem.n_constraints(),
            });
            solve_span.field("attempt", attempt as u64);
            run_solver(problem, &attempt_opts, use_auglag, attempt_inner)
        };
        match attempt_result {
            Ok(result) if result_is_finite(&result) => {
                let timed_out = result.reason == ConvergenceReason::TimeBudget;
                if timed_out {
                    if kg_telemetry::is_enabled() {
                        kg_telemetry::counter("votekg.solver.timeouts").incr();
                    }
                    attempts.push(SolveAttempt {
                        inner: attempt_inner,
                        outcome: AttemptOutcome::TimedOut,
                    });
                    if retry.retry_timeouts && attempt + 1 < chain.len() {
                        if truncated_best
                            .as_ref()
                            .is_none_or(|b| result.max_violation < b.max_violation)
                        {
                            truncated_best = Some(result);
                        }
                        last_error = "solve hit the wall-clock budget".to_string();
                        record_failure("timeout", &last_error);
                        continue;
                    }
                    // Graceful degradation: report the least-violating
                    // truncated iterate across the chain.
                    let best = match truncated_best {
                        Some(b) if b.max_violation < result.max_violation => b,
                        _ => result,
                    };
                    return ResilientSolve {
                        result: Some(best),
                        outcome: SolveOutcome::TimedOut,
                        retries: attempt,
                        attempts,
                    };
                }
                attempts.push(SolveAttempt {
                    inner: attempt_inner,
                    outcome: AttemptOutcome::Converged,
                });
                let outcome = if attempt > 0 {
                    SolveOutcome::Degraded {
                        fallback: attempt_inner.as_str().to_string(),
                        retries: attempt,
                    }
                } else {
                    SolveOutcome::Applied
                };
                return ResilientSolve {
                    result: Some(result),
                    outcome,
                    retries: attempt,
                    attempts,
                };
            }
            Ok(_) => {
                last_error = "solver returned a non-finite solution".to_string();
                attempts.push(SolveAttempt {
                    inner: attempt_inner,
                    outcome: AttemptOutcome::NonFinite,
                });
                record_failure("non_finite", &last_error);
            }
            Err(e) => {
                last_error = e.to_string();
                attempts.push(SolveAttempt {
                    inner: attempt_inner,
                    outcome: AttemptOutcome::Error(last_error.clone()),
                });
                record_failure("error", &last_error);
            }
        }
    }
    let retries = chain.len().saturating_sub(1);
    if let Some(best) = truncated_best {
        // Every attempt hit the budget: the least-violating iterate is
        // still a usable best-effort answer.
        return ResilientSolve {
            result: Some(best),
            outcome: SolveOutcome::TimedOut,
            retries,
            attempts,
        };
    }
    ResilientSolve {
        result: None,
        outcome: SolveOutcome::Failed {
            error: last_error.clone(),
        },
        retries,
        attempts,
    }
}

/// Runs the configured (outer × inner) solver combination.
pub fn run_solver(
    problem: &SgpProblem,
    opts: &SolveOptions,
    use_auglag: bool,
    inner: InnerOpt,
) -> Result<SolveResult, SolveError> {
    match (use_auglag, inner) {
        (false, InnerOpt::Adam) => {
            PenaltySolver::with_inner(AdamOptimizer::default()).solve(problem, opts)
        }
        (false, InnerOpt::ProjGrad) => {
            PenaltySolver::with_inner(ProjGradOptimizer::default()).solve(problem, opts)
        }
        (false, InnerOpt::Lbfgs) => {
            PenaltySolver::with_inner(LbfgsOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::Adam) => {
            AugLagSolver::with_inner(AdamOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::ProjGrad) => {
            AugLagSolver::with_inner(ProjGradOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::Lbfgs) => {
            AugLagSolver::with_inner(LbfgsOptimizer::default()).solve(problem, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp::{Signomial, VarSpace};

    fn toy() -> SgpProblem {
        // minimize (x - 2)^2 s.t. x <= 1 -> x* = 1.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 10.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -4.0) + Signomial::constant(4.0);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
        p
    }

    #[test]
    fn every_combination_solves_the_toy_problem() {
        let p = toy();
        let opts = SolveOptions {
            max_inner_iters: 1500,
            ..Default::default()
        };
        for use_auglag in [false, true] {
            for inner in [InnerOpt::Adam, InnerOpt::ProjGrad, InnerOpt::Lbfgs] {
                let r = run_solver(&p, &opts, use_auglag, inner).unwrap();
                assert!(
                    (r.x[0] - 1.0).abs() < 2e-2,
                    "auglag={use_auglag} inner={inner:?}: x = {:?}",
                    r.x
                );
            }
        }
    }

    #[test]
    fn default_inner_is_adam() {
        assert_eq!(InnerOpt::default(), InnerOpt::Adam);
    }
}
