//! Solver selection shared by the vote pipelines: outer loop (exterior
//! penalty vs augmented Lagrangian) × inner optimizer (projected Adam,
//! projected gradient, projected L-BFGS).

use serde::{Deserialize, Serialize};
use sgp::{
    AdamOptimizer, AugLagSolver, LbfgsOptimizer, PenaltySolver, ProjGradOptimizer, SgpProblem,
    SolveError, SolveOptions, SolveResult, Solver,
};

/// Which inner (smooth, box-constrained) optimizer the SGP solves use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InnerOpt {
    /// Projected Adam (default): robust on badly scaled vote programs.
    #[default]
    Adam,
    /// Projected gradient with Armijo backtracking: monotone, simple.
    ProjGrad,
    /// Projected L-BFGS: curvature-aware, fewer iterations on smooth
    /// regions, slightly costlier per step.
    Lbfgs,
}

/// Runs the configured (outer × inner) solver combination.
pub fn run_solver(
    problem: &SgpProblem,
    opts: &SolveOptions,
    use_auglag: bool,
    inner: InnerOpt,
) -> Result<SolveResult, SolveError> {
    match (use_auglag, inner) {
        (false, InnerOpt::Adam) => {
            PenaltySolver::with_inner(AdamOptimizer::default()).solve(problem, opts)
        }
        (false, InnerOpt::ProjGrad) => {
            PenaltySolver::with_inner(ProjGradOptimizer::default()).solve(problem, opts)
        }
        (false, InnerOpt::Lbfgs) => {
            PenaltySolver::with_inner(LbfgsOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::Adam) => {
            AugLagSolver::with_inner(AdamOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::ProjGrad) => {
            AugLagSolver::with_inner(ProjGradOptimizer::default()).solve(problem, opts)
        }
        (true, InnerOpt::Lbfgs) => {
            AugLagSolver::with_inner(LbfgsOptimizer::default()).solve(problem, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp::{Signomial, VarSpace};

    fn toy() -> SgpProblem {
        // minimize (x - 2)^2 s.t. x <= 1 -> x* = 1.
        let mut vars = VarSpace::new();
        let x = vars.add("x", 0.5, 0.01, 10.0);
        let obj =
            Signomial::power(x, 2.0, 1.0) + Signomial::linear(x, -4.0) + Signomial::constant(4.0);
        let mut p = SgpProblem::new(vars, obj.into());
        p.add_constraint_leq_zero(Signomial::linear(x, 1.0) - Signomial::constant(1.0), "x<=1");
        p
    }

    #[test]
    fn every_combination_solves_the_toy_problem() {
        let p = toy();
        let opts = SolveOptions {
            max_inner_iters: 1500,
            ..Default::default()
        };
        for use_auglag in [false, true] {
            for inner in [InnerOpt::Adam, InnerOpt::ProjGrad, InnerOpt::Lbfgs] {
                let r = run_solver(&p, &opts, use_auglag, inner).unwrap();
                assert!(
                    (r.x[0] - 1.0).abs() < 2e-2,
                    "auglag={use_auglag} inner={inner:?}: x = {:?}",
                    r.x
                );
            }
        }
    }

    #[test]
    fn default_inner_is_adam() {
        assert_eq!(InnerOpt::default(), InnerOpt::Adam);
    }
}
