//! The multi-vote solution (Section V of the paper).
//!
//! All negative and positive votes are judged, encoded into *one* SGP
//! program, and solved in a single batch. Conflicts between votes are
//! absorbed by deviation variables (Eq. 15) whose positive excursions are
//! counted — smoothly, via the steep sigmoid (Eq. 17–18) — and traded off
//! against weight drift by the combined objective (Eq. 19).

use crate::encode::{encode_multi, EncodeOptions, MultiParams};
use crate::judge::{judge_vote, JudgeOutcome};
use crate::report::{NormalizeMode, OptimizationReport, SolveOutcome, VoteOutcome};
use crate::single::{apply_guarded, validate_votes};
use crate::solver_choice::{run_solver_resilient, InnerOpt, RetryPolicy};
use crate::vote::{Vote, VoteSet};
use kg_graph::KnowledgeGraph;
use kg_sim::topk::rank_of;
use serde::{Deserialize, Serialize};
use sgp::SolveOptions;
use std::time::Instant;

/// Controls for [`solve_multi_votes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiVoteOptions {
    /// Vote-encoding parameters.
    pub encode: EncodeOptions,
    /// Multi-vote objective parameters (λ1, λ2, sigmoid steepness, form).
    pub params: MultiParams,
    /// SGP solver parameters.
    pub solve: SolveOptions,
    /// Use the augmented-Lagrangian solver (only relevant with explicit
    /// deviation variables, which add real constraints).
    pub use_auglag: bool,
    /// Inner optimizer for the SGP solves.
    pub inner: InnerOpt,
    /// Run the extreme-condition judgment and discard erroneous votes
    /// before encoding (Section V prescribes this).
    pub judge: bool,
    /// Shared-edge constant used by the judgment.
    pub shared_weight: f64,
    /// Post-application weight normalization. Defaults to `None`: unlike
    /// Algorithm 1, the paper's multi-vote solution (Section V) does not
    /// re-normalize — and re-normalizing can invert the solved margins
    /// when rows end up with different totals.
    pub normalize: NormalizeMode,
    /// Fallback chain for failed solves.
    pub retry: RetryPolicy,
}

impl Default for MultiVoteOptions {
    fn default() -> Self {
        MultiVoteOptions {
            encode: EncodeOptions::default(),
            params: MultiParams::default(),
            solve: SolveOptions::default(),
            use_auglag: false,
            inner: InnerOpt::Adam,
            judge: true,
            shared_weight: 0.5,
            normalize: NormalizeMode::None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Runs the multi-vote solution over the whole vote set, mutating `graph`
/// in place.
pub fn solve_multi_votes(
    graph: &mut KnowledgeGraph,
    votes: &VoteSet,
    opts: &MultiVoteOptions,
) -> OptimizationReport {
    let mut span = kg_telemetry::span!("votekg.votes.multi", {
        votes: votes.len(),
        deviation_vars: opts.params.deviation_vars,
    });
    let started = Instant::now();
    let mut report = OptimizationReport::default();

    // Validation pass: a vote whose best answer cannot be ranked is
    // recorded as discarded (with a reason) instead of poisoning the
    // whole round.
    let ranks_before = {
        let _phase = kg_telemetry::span!("votekg.votes.validate");
        validate_votes(graph, votes, &opts.encode, &mut report)
    };

    // Judgment pass: keep encodable votes (positives always pass).
    let mut kept: Vec<&Vote> = Vec::with_capacity(votes.len());
    let mut kept_idx: Vec<usize> = Vec::with_capacity(votes.len());
    let mut kept_mask = vec![false; votes.len()];
    let judge_phase = kg_telemetry::span!("votekg.votes.judge");
    for (idx, vote) in votes.votes.iter().enumerate() {
        if ranks_before[idx].is_none() {
            continue;
        }
        if opts.judge
            && judge_vote(graph, vote, &opts.encode, opts.shared_weight) == JudgeOutcome::Erroneous
        {
            report.exclude_vote(
                idx,
                "judged erroneous by the extreme-condition judgment".to_string(),
                false,
            );
            continue;
        }
        kept_mask[idx] = true;
        kept.push(vote);
        kept_idx.push(idx);
    }
    drop(judge_phase);

    if !kept.is_empty() {
        let kept_owned: Vec<Vote> = kept.iter().map(|v| (*v).clone()).collect();
        if opts.params.deviation_vars {
            // The explicit deviation form carries real constraints whose
            // pressure must reach the weight variables even when slack; the
            // augmented Lagrangian's multipliers provide that, whereas the
            // exterior penalty goes silent on feasible iterates.
            let prog = {
                let _phase = kg_telemetry::span!("votekg.votes.encode");
                encode_multi(graph, &kept_owned, &opts.encode, &opts.params)
            };
            if prog.problem.n_vars() > 0 {
                span.field("constraints", prog.problem.n_constraints());
                let solve_started = Instant::now();
                let solved =
                    run_solver_resilient(&prog.problem, &opts.solve, true, opts.inner, &opts.retry);
                report.solver_elapsed = solve_started.elapsed();
                match solved.result {
                    Some(result) => {
                        report.solver_inner_iterations = result.inner_iterations;
                        record_deviation_magnitudes(&prog, &result.x);
                        let _apply_phase = kg_telemetry::span!("votekg.votes.apply");
                        match apply_guarded(&prog, &result.x, graph, opts.normalize) {
                            Ok(changed) => {
                                report.edges_changed = changed.len();
                                report.solves.push(solved.outcome);
                            }
                            Err(reason) => {
                                report.solves.push(SolveOutcome::Failed {
                                    error: reason.clone(),
                                });
                                quarantine_all(&mut report, &kept_idx, &mut kept_mask, &reason);
                            }
                        }
                    }
                    None => {
                        let reason = format!("solver failed: {:?}", solved.outcome);
                        report.solves.push(solved.outcome);
                        quarantine_all(&mut report, &kept_idx, &mut kept_mask, &reason);
                    }
                }
            }
        } else {
            // Eliminated form with steepness continuation: a sigmoid at the
            // paper's w = 300 saturates on margins of a few percent and its
            // gradient vanishes, stranding badly-violated votes. Solving a
            // sequence of sharpening sigmoids (each warm-starting the next)
            // keeps a usable gradient at every stage — the final stage is
            // exactly the paper's objective (Eq. 19).
            let solve_started = Instant::now();
            // One deadline shared by every continuation stage: each stage
            // gets whatever is left of the round's budget, so the whole
            // sequence — not each solve — honors `time_budget`.
            let deadline = opts.solve.time_budget.map(|b| solve_started + b);
            let mut prog = {
                let _phase = kg_telemetry::span!("votekg.votes.encode");
                encode_multi(graph, &kept_owned, &opts.encode, &opts.params)
            };
            if prog.problem.n_vars() > 0 {
                span.field("constraints", prog.problem.n_constraints());
                let w_final = opts.params.steepness;
                // Shallow warm-up stages only pay off when something is
                // violated; on an already-satisfied batch they would add
                // gratuitous drift (their wide sigmoids push satisfied
                // margins further negative than the w_final objective
                // wants).
                let x0 = prog.problem.vars.initial_point();
                let mut stages: Vec<f64> = if prog.violated_margins(&x0) > 0 {
                    [w_final / 30.0, w_final / 10.0, w_final / 3.0]
                        .into_iter()
                        .filter(|&w| w >= 1.0 && w < w_final)
                        .collect()
                } else {
                    Vec::new()
                };
                stages.push(w_final);
                let mut best_x: Option<Vec<f64>> = None;
                let mut inner_total = 0usize;
                let mut total_retries = 0usize;
                let mut fallback = String::new();
                let mut timed_out = false;
                let mut stage_failure: Option<String> = None;
                for (si, &stage_w) in stages.iter().enumerate() {
                    let mut params = opts.params;
                    params.steepness = stage_w;
                    // Re-encode with this stage's sigmoid; warm-start from
                    // the previous stage's solution. The proximal anchors
                    // must stay at the *original* weights, so only the
                    // variable initials move.
                    prog = {
                        let _phase = kg_telemetry::span!("votekg.votes.encode");
                        encode_multi(graph, &kept_owned, &opts.encode, &params)
                    };
                    if let Some(x) = &best_x {
                        for (i, xi) in x.iter().enumerate() {
                            prog.problem.vars.set_initial(sgp::VarId(i as u32), *xi);
                        }
                    }
                    let mut stage_opts = opts.solve.clone();
                    if let Some(d) = deadline {
                        stage_opts.time_budget = Some(d.saturating_duration_since(Instant::now()));
                    }
                    let solved = run_solver_resilient(
                        &prog.problem,
                        &stage_opts,
                        opts.use_auglag,
                        opts.inner,
                        &opts.retry,
                    );
                    match solved.outcome {
                        SolveOutcome::Applied => {}
                        SolveOutcome::Degraded {
                            fallback: f,
                            retries,
                        } => {
                            total_retries += retries;
                            fallback = f;
                        }
                        SolveOutcome::TimedOut => timed_out = true,
                        SolveOutcome::Failed { error } => {
                            // A later stage failing leaves the previous
                            // stage's solution in force; only a failure
                            // with nothing solved yet aborts the batch.
                            if best_x.is_none() {
                                stage_failure = Some(error);
                            } else {
                                total_retries += solved.retries;
                                fallback = format!("stopped at continuation stage {si}: {error}");
                            }
                            break;
                        }
                    }
                    if let Some(result) = solved.result {
                        inner_total += result.inner_iterations;
                        best_x = Some(result.x);
                    }
                    if timed_out {
                        // Best iterate so far is still applied below.
                        break;
                    }
                }
                report.solver_inner_iterations = inner_total;
                let _apply_phase = kg_telemetry::span!("votekg.votes.apply");
                match best_x {
                    Some(x) => match apply_guarded(&prog, &x, graph, opts.normalize) {
                        Ok(changed) => {
                            report.edges_changed = changed.len();
                            let outcome = if timed_out {
                                SolveOutcome::TimedOut
                            } else if total_retries > 0 || !fallback.is_empty() {
                                SolveOutcome::Degraded {
                                    fallback,
                                    retries: total_retries,
                                }
                            } else {
                                SolveOutcome::Applied
                            };
                            report.solves.push(outcome);
                        }
                        Err(reason) => {
                            report.solves.push(SolveOutcome::Failed {
                                error: reason.clone(),
                            });
                            quarantine_all(&mut report, &kept_idx, &mut kept_mask, &reason);
                        }
                    },
                    None => {
                        let error = stage_failure
                            .unwrap_or_else(|| "solver produced no solution".to_string());
                        let reason = format!("solver failed: {error}");
                        report.solves.push(SolveOutcome::Failed { error });
                        quarantine_all(&mut report, &kept_idx, &mut kept_mask, &reason);
                    }
                }
            }
            report.solver_elapsed = solve_started.elapsed();
        }
    }

    let rerank_phase = kg_telemetry::span!("votekg.votes.rerank");
    for (idx, vote) in votes.votes.iter().enumerate() {
        let Some(rank_before) = ranks_before[idx] else {
            continue;
        };
        let rank_after = rank_of(
            graph,
            vote.query,
            &vote.answers,
            &opts.encode.sim,
            vote.best,
        )
        .unwrap_or(rank_before);
        report.outcomes.push(VoteOutcome {
            vote_index: idx,
            kind: vote.kind(),
            rank_before,
            rank_after,
            encoded: kept_mask[idx],
            feasible: None,
        });
    }
    drop(rerank_phase);
    report.total_elapsed = started.elapsed();
    crate::record_vote_telemetry("multi", &mut span, &report);
    report
}

/// Quarantines every kept vote after a batch-level failure: the shared
/// solve produced nothing applicable, so no kept vote reached the graph.
fn quarantine_all(
    report: &mut OptimizationReport,
    kept_idx: &[usize],
    kept_mask: &mut [bool],
    reason: &str,
) {
    for &idx in kept_idx {
        kept_mask[idx] = false;
        report.exclude_vote(idx, reason.to_string(), true);
    }
}

/// Records the magnitudes of the deviation variables (Eq. 15) after an
/// explicit-deviation solve: each solved value minus [`DEVIATION_SHIFT`]
/// is that vote-pair's residual conflict. Magnitudes land in the
/// `votekg.votes.deviation_magnitude_milli` histogram (scaled ×1000 so
/// the log-2 buckets resolve sub-unit values) and the maximum in a gauge.
fn record_deviation_magnitudes(prog: &crate::encode::VoteProgram, x: &[f64]) {
    if !kg_telemetry::is_enabled() {
        return;
    }
    let hist = kg_telemetry::histogram("votekg.votes.deviation_magnitude_milli");
    let mut max_mag = 0.0f64;
    for &xi in &x[prog.n_edge_vars()..] {
        let mag = (xi - crate::encode::DEVIATION_SHIFT).abs();
        max_mag = max_mag.max(mag);
        hist.record((mag * 1000.0).round() as u64);
    }
    kg_telemetry::gauge("votekg.votes.deviation_magnitude_max").set(max_mag);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphBuilder, NodeId, NodeKind};

    /// Two answers off separate hubs; a1 wins initially.
    fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 0.5).unwrap();
        b.add_edge(q, h2, 0.5).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        (b.build(), q, a1, a2)
    }

    fn fast_opts() -> MultiVoteOptions {
        MultiVoteOptions {
            normalize: NormalizeMode::None,
            solve: SolveOptions {
                max_inner_iters: 2000,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn single_negative_vote_is_satisfied() {
        let (mut g, q, a1, a2) = scene();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let report = solve_multi_votes(&mut g, &votes, &fast_opts());
        assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
        assert_eq!(report.omega(), 1);
    }

    #[test]
    fn positive_vote_protects_the_top_answer() {
        // Negative vote on one query, positive vote on another query that
        // shares the *same* edges: the positive vote should stop the top
        // answer from being degraded.
        let mut b = GraphBuilder::new();
        let q1 = b.add_node("q1", NodeKind::Query);
        let q2 = b.add_node("q2", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q1, h1, 0.5).unwrap();
        b.add_edge(q1, h2, 0.5).unwrap();
        // q2 leans on h1 much more.
        b.add_edge(q2, h1, 0.9).unwrap();
        b.add_edge(q2, h2, 0.1).unwrap();
        b.add_edge(h1, a1, 0.7).unwrap();
        b.add_edge(h2, a2, 0.3).unwrap();
        let mut g = b.build();
        let votes = VoteSet::from_votes(vec![
            Vote::new(q1, vec![a1, a2], a2), // negative
            Vote::new(q2, vec![a1, a2], a1), // positive: keep a1 on top for q2
        ]);
        let report = solve_multi_votes(&mut g, &votes, &fast_opts());
        // The positive vote's answer must not fall below rank 1.
        assert_eq!(report.outcomes[1].rank_after, 1, "{report:?}");
    }

    #[test]
    fn erroneous_votes_are_discarded_by_judgment() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let h1 = b.add_node("h1", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        b.add_edge(q, h1, 1.0).unwrap();
        b.add_edge(h1, a1, 1.0).unwrap();
        let mut g = b.build();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let report = solve_multi_votes(&mut g, &votes, &fast_opts());
        assert_eq!(report.discarded_votes, 1);
        assert!(!report.outcomes[0].encoded);
    }

    #[test]
    fn deviation_form_also_satisfies_votes() {
        let (mut g, q, a1, a2) = scene();
        let votes = VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let mut opts = fast_opts();
        opts.params.deviation_vars = true;
        let report = solve_multi_votes(&mut g, &votes, &opts);
        assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
    }

    #[test]
    fn eliminated_and_deviation_forms_agree_on_outcome() {
        let build_votes = |q, a1, a2| VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)]);
        let (mut g1, q, a1, a2) = scene();
        let r1 = solve_multi_votes(&mut g1, &build_votes(q, a1, a2), &fast_opts());
        let (mut g2, q, a1, a2) = scene();
        let mut opts = fast_opts();
        opts.params.deviation_vars = true;
        let r2 = solve_multi_votes(&mut g2, &build_votes(q, a1, a2), &opts);
        assert_eq!(r1.outcomes[0].rank_after, r2.outcomes[0].rank_after);
    }

    #[test]
    fn conflicting_votes_resolve_to_majority() {
        // Two votes want a2 on top, one wants a1: the sigmoid counter
        // should prefer satisfying two out of three.
        let mut b = GraphBuilder::new();
        let qs: Vec<NodeId> = (0..3)
            .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
            .collect();
        let h1 = b.add_node("h1", NodeKind::Entity);
        let h2 = b.add_node("h2", NodeKind::Entity);
        let a1 = b.add_node("a1", NodeKind::Answer);
        let a2 = b.add_node("a2", NodeKind::Answer);
        for &q in &qs {
            b.add_edge(q, h1, 0.5).unwrap();
            b.add_edge(q, h2, 0.5).unwrap();
        }
        b.add_edge(h1, a1, 0.55).unwrap();
        b.add_edge(h2, a2, 0.45).unwrap();
        let mut g = b.build();
        // All three votes see identical structure; two pull a2 up, one
        // confirms a1.
        let votes = VoteSet::from_votes(vec![
            Vote::new(qs[0], vec![a1, a2], a2),
            Vote::new(qs[1], vec![a1, a2], a2),
            Vote::new(qs[2], vec![a1, a2], a1),
        ]);
        let report = solve_multi_votes(&mut g, &votes, &fast_opts());
        // Majority satisfied: a2 on top for votes 0 and 1.
        assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
        assert_eq!(report.outcomes[1].rank_after, 1);
        assert!(report.omega() >= 1, "{report:?}");
    }

    #[test]
    fn empty_vote_set_is_a_noop() {
        let (mut g, _, _, _) = scene();
        let snap = kg_graph::WeightSnapshot::capture(&g);
        let report = solve_multi_votes(&mut g, &VoteSet::new(), &fast_opts());
        assert!(report.outcomes.is_empty());
        assert_eq!(snap.squared_distance(&g), 0.0);
    }
}
