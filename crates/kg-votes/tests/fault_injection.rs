//! Fault-injection tests for the vote pipelines: solver errors, poisoned
//! (non-finite) solutions, exhausted time budgets, and invalid votes must
//! surface in the report — never as a panic or a corrupted graph.
//!
//! Every test installs a global fault plan via [`sgp::fault::inject`]
//! (or an empty one), whose guard also serializes the tests: the plan's
//! call counter is process-wide, so unguarded concurrent solves would
//! race. This binary is the only kg-votes test process that injects.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_votes::report::NormalizeMode;
use kg_votes::{
    encode_multi, run_solver_resilient, solve_multi_votes, solve_single_votes, AttemptOutcome,
    EncodeOptions, InnerOpt, MultiParams, MultiVoteOptions, RetryPolicy, SingleVoteOptions,
    SolveAttempt, SolveOutcome, Vote, VoteSet,
};
use sgp::fault::{inject, FaultAction, FaultPlan};
use sgp::SolveOptions;
use std::time::{Duration, Instant};

/// Two answers off separate hubs; a1 wins initially.
fn scene() -> (KnowledgeGraph, NodeId, NodeId, NodeId) {
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let h1 = b.add_node("h1", NodeKind::Entity);
    let h2 = b.add_node("h2", NodeKind::Entity);
    let a1 = b.add_node("a1", NodeKind::Answer);
    let a2 = b.add_node("a2", NodeKind::Answer);
    b.add_edge(q, h1, 0.5).unwrap();
    b.add_edge(q, h2, 0.5).unwrap();
    b.add_edge(h1, a1, 0.7).unwrap();
    b.add_edge(h2, a2, 0.3).unwrap();
    (b.build(), q, a1, a2)
}

fn one_negative_vote(q: NodeId, a1: NodeId, a2: NodeId) -> VoteSet {
    VoteSet::from_votes(vec![Vote::new(q, vec![a1, a2], a2)])
}

#[test]
fn nan_solution_rolls_back_and_quarantines_multi() {
    // Every attempt (primary + fallbacks) returns a non-finite solution:
    // the round must fail closed — graph bitwise identical, vote
    // quarantined, outcome Failed.
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::NonFiniteSolution));
    let (mut g, q, a1, a2) = scene();
    let snap = WeightSnapshot::capture(&g);
    let report = solve_multi_votes(
        &mut g,
        &one_negative_vote(q, a1, a2),
        &MultiVoteOptions::default(),
    );
    assert_eq!(snap.squared_distance(&g), 0.0, "graph must be untouched");
    assert_eq!(report.quarantined_votes, 1, "{report:?}");
    assert_eq!(report.failed_solves(), 1, "{report:?}");
    assert!(!report.outcomes[0].encoded);
    assert_eq!(report.edges_changed, 0);
}

#[test]
fn nan_solution_rolls_back_and_quarantines_single() {
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::NonFiniteSolution));
    let (mut g, q, a1, a2) = scene();
    let snap = WeightSnapshot::capture(&g);
    let report = solve_single_votes(
        &mut g,
        &one_negative_vote(q, a1, a2),
        &SingleVoteOptions::default(),
    );
    assert_eq!(snap.squared_distance(&g), 0.0);
    assert_eq!(report.quarantined_votes, 1, "{report:?}");
    assert!(matches!(report.solves[0], SolveOutcome::Failed { .. }));
}

#[test]
fn solver_error_recovers_through_the_fallback_chain() {
    // Only the first solver call errors; the retry with the fallback
    // inner optimizer succeeds, so the vote is still satisfied and the
    // outcome records the degradation.
    kg_telemetry::enable();
    let failures_before =
        kg_telemetry::counter_labeled("votekg.solver.failures", &[("cause", "error")]).get();
    let _guard = inject(FaultPlan::new().at(0, FaultAction::Error));
    let (mut g, q, a1, a2) = scene();
    let report = solve_multi_votes(
        &mut g,
        &one_negative_vote(q, a1, a2),
        &MultiVoteOptions::default(),
    );
    assert_eq!(report.quarantined_votes, 0, "{report:?}");
    assert_eq!(report.degraded_solves(), 1, "{report:?}");
    match &report.solves[0] {
        SolveOutcome::Degraded { fallback, retries } => {
            assert!(*retries >= 1);
            assert!(!fallback.is_empty());
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
    let failures_after =
        kg_telemetry::counter_labeled("votekg.solver.failures", &[("cause", "error")]).get();
    assert!(
        failures_after > failures_before,
        "failure counter must tick"
    );
}

#[test]
fn exhausted_retries_fail_the_solve() {
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
    let (mut g, q, a1, a2) = scene();
    let snap = WeightSnapshot::capture(&g);
    let report = solve_multi_votes(
        &mut g,
        &one_negative_vote(q, a1, a2),
        &MultiVoteOptions::default(),
    );
    assert_eq!(snap.squared_distance(&g), 0.0);
    assert_eq!(report.failed_solves(), 1, "{report:?}");
    match &report.solves[0] {
        SolveOutcome::Failed { error } => assert!(error.contains("injected"), "{error}"),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn zero_time_budget_times_out_gracefully() {
    let _guard = inject(FaultPlan::new());
    let (mut g, q, a1, a2) = scene();
    let mut opts = MultiVoteOptions {
        solve: SolveOptions {
            time_budget: Some(Duration::ZERO),
            ..Default::default()
        },
        ..Default::default()
    };
    opts.normalize = NormalizeMode::None;
    let report = solve_multi_votes(&mut g, &one_negative_vote(q, a1, a2), &opts);
    assert_eq!(report.timed_out_solves(), 1, "{report:?}");
    assert_eq!(report.quarantined_votes, 0);
    for e in g.edges() {
        assert!(e.weight.is_finite());
    }
}

#[test]
fn invalid_vote_is_discarded_with_a_reason_not_a_panic() {
    let _guard = inject(FaultPlan::new());
    let (mut g, q, a1, a2) = scene();
    // `Vote::new` refuses a best answer outside the list, but a vote from
    // an old log or a foreign serializer can still arrive in this shape —
    // build it field-by-field like a deserializer would.
    let bad = Vote {
        query: q,
        answers: vec![a1],
        best: a2,
    };
    let good = Vote::new(q, vec![a1, a2], a2);
    let votes = VoteSet::from_votes(vec![bad, good]);

    // This scene's hubs have one out-edge each, so the single pipeline's
    // default TouchedRows normalization would undo the solved margin;
    // skip it — the test is about discard handling, not normalization.
    let single_opts = SingleVoteOptions {
        normalize: NormalizeMode::None,
        ..Default::default()
    };
    for report in [
        solve_single_votes(&mut g.clone(), &votes, &single_opts),
        solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default()),
    ] {
        assert_eq!(report.discarded_votes, 1, "{report:?}");
        assert_eq!(report.discards.len(), 1);
        assert_eq!(report.discards[0].vote_index, 0);
        assert!(
            report.discards[0].reason.contains("missing"),
            "{}",
            report.discards[0].reason
        );
        // Only the valid vote gets an outcome; it is still satisfied.
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].vote_index, 1);
        assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");
    }
}

#[test]
fn single_vote_error_quarantines_every_failing_vote_independently() {
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
    let (mut g, q, a1, a2) = scene();
    let votes = VoteSet::from_votes(vec![
        Vote::new(q, vec![a1, a2], a2),
        Vote::new(q, vec![a1, a2], a2),
    ]);
    let snap = WeightSnapshot::capture(&g);
    let report = solve_single_votes(&mut g, &votes, &SingleVoteOptions::default());
    assert_eq!(snap.squared_distance(&g), 0.0);
    assert_eq!(report.quarantined_votes, 2, "{report:?}");
    assert_eq!(report.failed_solves(), 2);
}

/// The acceptance workload: a batch whose unbounded solve runs much
/// longer than the budgeted one. Relative timing (not absolute) keeps
/// this stable across machines and build profiles.
#[test]
fn time_budget_bounds_the_overshoot() {
    let _guard = inject(FaultPlan::new());
    // A wider scene: several hubs and votes make the SGP program big
    // enough that millions of allowed inner iterations take real time.
    let mut b = GraphBuilder::new();
    let mut votes = Vec::new();
    for r in 0..4 {
        let q = b.add_node(format!("q{r}"), NodeKind::Query);
        let mut answers = Vec::new();
        for i in 0..4 {
            let h = b.add_node(format!("h{r}_{i}"), NodeKind::Entity);
            let a = b.add_node(format!("a{r}_{i}"), NodeKind::Answer);
            b.add_edge(q, h, 0.25).unwrap();
            b.add_edge(h, a, if i == 0 { 0.9 } else { 0.3 }).unwrap();
            answers.push(a);
        }
        votes.push(Vote::new(q, answers.clone(), answers[3]));
    }
    let g = b.build();
    let votes = VoteSet::from_votes(votes);
    // step_tol 0 disables early convergence: the unbounded solve runs
    // its full iteration allowance.
    let opts = |budget: Option<Duration>| MultiVoteOptions {
        solve: SolveOptions {
            max_inner_iters: 60_000,
            step_tol: 0.0,
            time_budget: budget,
            ..Default::default()
        },
        ..Default::default()
    };

    let unbounded_started = Instant::now();
    let mut g1 = g.clone();
    solve_multi_votes(&mut g1, &votes, &opts(None));
    let unbounded = unbounded_started.elapsed();

    let budget = (unbounded / 10).max(Duration::from_millis(5));
    let bounded_started = Instant::now();
    let mut g2 = g.clone();
    let report = solve_multi_votes(&mut g2, &votes, &opts(Some(budget)));
    let bounded = bounded_started.elapsed();

    assert!(
        bounded < unbounded / 2,
        "budgeted solve took {bounded:?}, unbounded {unbounded:?}"
    );
    assert_eq!(report.timed_out_solves(), 1, "{report:?}");
    // The best iterate so far was applied — weights stay valid.
    for e in g2.edges() {
        assert!(e.weight.is_finite() && e.weight > 0.0 && e.weight <= 1.0);
    }
}

#[test]
fn timeout_fallback_chain_degrades_to_projgrad() {
    // The lbfgs primary and the adam fallback both hit the wall-clock
    // budget (injected delays burn it before the solve starts); the
    // projgrad attempt runs clean. With `retry_timeouts` opted in, the
    // chain must walk through both timeouts, converge on projgrad, and
    // record the full attempt history.
    let _guard = inject(
        FaultPlan::new()
            .at(0, FaultAction::Delay(Duration::from_millis(800)))
            .at(1, FaultAction::Delay(Duration::from_millis(800))),
    );
    let (g, q, a1, a2) = scene();
    let votes = vec![Vote::new(q, vec![a1, a2], a2)];
    let program = encode_multi(
        &g,
        &votes,
        &EncodeOptions::default(),
        &MultiParams::default(),
    );
    let opts = SolveOptions {
        time_budget: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let retry = RetryPolicy {
        retry_timeouts: true,
        ..Default::default()
    };
    let rs = run_solver_resilient(&program.problem, &opts, true, InnerOpt::Lbfgs, &retry);
    assert_eq!(
        rs.outcome,
        SolveOutcome::Degraded {
            fallback: "projgrad".to_string(),
            retries: 2
        },
        "attempts: {:?}",
        rs.attempts
    );
    assert_eq!(
        rs.attempts,
        vec![
            SolveAttempt {
                inner: InnerOpt::Lbfgs,
                outcome: AttemptOutcome::TimedOut
            },
            SolveAttempt {
                inner: InnerOpt::Adam,
                outcome: AttemptOutcome::TimedOut
            },
            SolveAttempt {
                inner: InnerOpt::ProjGrad,
                outcome: AttemptOutcome::Converged
            },
        ]
    );
    assert!(rs.result.is_some());
}

#[test]
fn timeouts_are_not_retried_by_default() {
    // Without the opt-in, a budget-truncated primary is the answer:
    // graceful degradation, no chain walk.
    let _guard = inject(FaultPlan::new().at(0, FaultAction::Delay(Duration::from_millis(300))));
    let (g, q, a1, a2) = scene();
    let votes = vec![Vote::new(q, vec![a1, a2], a2)];
    let program = encode_multi(
        &g,
        &votes,
        &EncodeOptions::default(),
        &MultiParams::default(),
    );
    let opts = SolveOptions {
        time_budget: Some(Duration::from_millis(100)),
        ..Default::default()
    };
    let rs = run_solver_resilient(
        &program.problem,
        &opts,
        true,
        InnerOpt::Lbfgs,
        &RetryPolicy::default(),
    );
    assert_eq!(rs.outcome, SolveOutcome::TimedOut, "{:?}", rs.attempts);
    assert_eq!(rs.retries, 0);
    assert_eq!(
        rs.attempts,
        vec![SolveAttempt {
            inner: InnerOpt::Lbfgs,
            outcome: AttemptOutcome::TimedOut
        }]
    );
}

#[test]
fn exhausted_chain_leaves_weights_bit_identical() {
    // Every attempt errors: the round must apply an identity delta — not
    // merely "close to zero", but bit-for-bit unchanged weights.
    let _guard = inject(FaultPlan::new().from_call(0, FaultAction::Error));
    let (mut g, q, a1, a2) = scene();
    let before: Vec<u64> = g.edges().map(|e| e.weight.to_bits()).collect();
    let report = solve_multi_votes(
        &mut g,
        &one_negative_vote(q, a1, a2),
        &MultiVoteOptions::default(),
    );
    let after: Vec<u64> = g.edges().map(|e| e.weight.to_bits()).collect();
    assert_eq!(before, after, "failed round must be an identity delta");
    assert_eq!(report.failed_solves(), 1, "{report:?}");
    assert_eq!(report.quarantined_votes, 1, "{report:?}");
}

mod fault_determinism {
    use super::*;
    use proptest::prelude::*;

    /// Runs one full multi-vote round under the given fault schedule and
    /// returns everything observable: the solve-outcome sequence and the
    /// final weights, bit for bit.
    fn run_once(schedule: &[(usize, usize)]) -> (Vec<SolveOutcome>, Vec<u64>) {
        let mut plan = FaultPlan::new();
        for &(call, kind) in schedule {
            let action = match kind {
                0 => FaultAction::Error,
                1 => FaultAction::NonFiniteSolution,
                _ => FaultAction::SkewSolution(0.25),
            };
            plan = plan.at(call, action);
        }
        let _guard = inject(plan);
        let (mut g, q, a1, a2) = scene();
        let report = solve_multi_votes(
            &mut g,
            &one_negative_vote(q, a1, a2),
            &MultiVoteOptions::default(),
        );
        let weights = g.edges().map(|e| e.weight.to_bits()).collect();
        (report.solves.clone(), weights)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Satellite invariant: the fault harness is deterministic — the
        // same seed and fault schedule produce the identical
        // `SolveOutcome` sequence (and final weights) across two runs.
        #[test]
        fn same_schedule_same_outcome_sequence(
            schedule in proptest::collection::vec((0usize..6, 0usize..3), 0..4),
        ) {
            let (outcomes_a, weights_a) = run_once(&schedule);
            let (outcomes_b, weights_b) = run_once(&schedule);
            prop_assert_eq!(outcomes_a, outcomes_b);
            prop_assert_eq!(weights_a, weights_b);
        }
    }
}
