//! Property-based tests for the vote WAL: random histories of appended
//! votes and committed rounds must survive arbitrary truncations (torn
//! writes) and single-bit flips without ever recovering to a state that
//! was never committed. Weight comparisons are on `f64::to_bits` — the
//! recovery contract is bit-identity, not approximate equality.

use kg_graph::io::weights_crc;
use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use kg_votes::wal::{replay_wal_bytes, RoundRecord, VoteWal};
use kg_votes::Vote;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A star graph: one query node fanning out to `n` answers, edge `i`
/// leading to answer `i`.
fn make_graph(n: usize) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let answers: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
        .collect();
    for &a in &answers {
        b.add_edge(q, a, 0.5).unwrap();
    }
    b.build()
}

fn vote_for(n: usize, pick: usize) -> Vote {
    let answers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
    let best = answers[pick % answers.len()];
    Vote::new(NodeId(0), answers, best)
}

fn bits(g: &KnowledgeGraph) -> Vec<u64> {
    g.weights().iter().map(|w| w.to_bits()).collect()
}

/// The model state a correct recovery may land on: the committed weights
/// and version as of some record boundary, plus the pending votes
/// appended (and not yet consumed) by that point.
#[derive(Debug, Clone)]
struct Shadow {
    offset: u64,
    bits: Vec<u64>,
    version: u64,
    pending: Vec<Vote>,
}

fn unique_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "votekg-wal-prop-{tag}-{}-{}.log",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One round of history: how many votes to append first, then the new
/// weight of every edge (the "optimization result" the round commits).
type Round = (usize, Vec<f64>);

/// Writes the history through the real `VoteWal` appender and returns the
/// raw log bytes plus the shadow state at every record boundary.
fn write_history(n: usize, rounds: &[Round], trailing_votes: usize) -> (Vec<u8>, Vec<Shadow>) {
    let path = unique_path("hist");
    let mut g = make_graph(n);
    let mut wal = VoteWal::create(&path, &g).unwrap();
    let mut committed_bits = bits(&g);
    let mut committed_version = g.version();
    let mut pending: Vec<Vote> = Vec::new();
    let mut shadows = vec![Shadow {
        offset: wal.offset(),
        bits: committed_bits.clone(),
        version: committed_version,
        pending: pending.clone(),
    }];
    let push_shadow = |wal: &VoteWal,
                       committed_bits: &Vec<u64>,
                       committed_version: u64,
                       pending: &Vec<Vote>,
                       shadows: &mut Vec<Shadow>| {
        shadows.push(Shadow {
            offset: wal.offset(),
            bits: committed_bits.clone(),
            version: committed_version,
            pending: pending.clone(),
        });
    };
    for (round_idx, (votes_n, weights)) in rounds.iter().enumerate() {
        for i in 0..*votes_n {
            let v = vote_for(n, round_idx + i);
            wal.append_vote(&v).unwrap();
            pending.push(v);
            push_shadow(
                &wal,
                &committed_bits,
                committed_version,
                &pending,
                &mut shadows,
            );
        }
        let before = g.version();
        for (e, w) in weights.iter().enumerate() {
            g.set_weight(EdgeId(e as u32), *w).unwrap();
        }
        let round = RoundRecord {
            version_before: before,
            version_after: g.version(),
            votes_consumed: pending.len(),
            deltas: (0..weights.len() as u32)
                .map(|e| (e, g.weight(EdgeId(e)).to_bits()))
                .collect(),
            weights_crc: weights_crc(&g),
        };
        wal.commit_round(&round).unwrap();
        pending.clear();
        committed_bits = bits(&g);
        committed_version = g.version();
        push_shadow(
            &wal,
            &committed_bits,
            committed_version,
            &pending,
            &mut shadows,
        );
    }
    for i in 0..trailing_votes {
        let v = vote_for(n, i + 1);
        wal.append_vote(&v).unwrap();
        pending.push(v);
        push_shadow(
            &wal,
            &committed_bits,
            committed_version,
            &pending,
            &mut shadows,
        );
    }
    wal.sync().unwrap();
    drop(wal);
    let data = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    (data, shadows)
}

fn arb_history() -> impl Strategy<Value = (usize, Vec<Round>, usize)> {
    (2usize..4).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(
                (0usize..3, proptest::collection::vec(0.05f64..0.95, n)),
                1..4,
            ),
            0usize..3,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying the complete log reproduces the final committed weights
    /// bit for bit, along with the exact pending-vote queue.
    #[test]
    fn full_replay_is_bit_identical((n, rounds, trailing) in arb_history()) {
        let (data, shadows) = write_history(n, &rounds, trailing);
        let last = shadows.last().unwrap();
        let mut g = make_graph(n);
        let replay = replay_wal_bytes(&data, &mut g).unwrap();
        prop_assert_eq!(replay.torn_tail, None);
        prop_assert_eq!(&bits(&g), &last.bits);
        prop_assert_eq!(g.version(), last.version);
        prop_assert_eq!(&replay.pending.votes, &last.pending);
    }

    /// A torn write — the log cut anywhere, even mid-record — recovers to
    /// exactly the last state whose records were fully on disk: the
    /// committed weights bit for bit, never a partial or invented state.
    #[test]
    fn truncation_recovers_last_durable_prefix(
        (n, rounds, trailing) in arb_history(),
        cut_sel in 0usize..10_000,
    ) {
        let (data, shadows) = write_history(n, &rounds, trailing);
        // Cut anywhere from the end of the header to the full length: a
        // cut inside the header is the separate headless/empty-file case.
        let lo = shadows[0].offset as usize;
        let cut = lo + cut_sel % (data.len() - lo + 1);
        let mut g = make_graph(n);
        let replay = replay_wal_bytes(&data[..cut], &mut g).unwrap();
        let expect = shadows
            .iter()
            .rev()
            .find(|s| s.offset as usize <= cut)
            .unwrap();
        prop_assert_eq!(&bits(&g), &expect.bits, "cut at {} of {}", cut, data.len());
        prop_assert_eq!(g.version(), expect.version);
        prop_assert_eq!(&replay.pending.votes, &expect.pending);
        // Tolerated damage is always reported, never silent.
        prop_assert_eq!(replay.torn_tail.is_some(), cut < data.len() &&
            !shadows.iter().any(|s| s.offset as usize == cut));
    }

    /// A single flipped bit anywhere in the log either fails recovery
    /// with a descriptive hard error (interior corruption) or — when the
    /// flip is indistinguishable from a torn tail — recovers to some
    /// prefix of the committed history. It NEVER yields a state that was
    /// never on disk: no silently altered weight, vote, or version.
    #[test]
    fn bit_flip_never_fabricates_state(
        (n, rounds, trailing) in arb_history(),
        flip_sel in 0usize..100_000,
    ) {
        let (data, shadows) = write_history(n, &rounds, trailing);
        let bit = flip_sel % (data.len() * 8);
        let mut damaged = data.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        let mut g = make_graph(n);
        match replay_wal_bytes(&damaged, &mut g) {
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
            Ok(replay) => {
                let found = shadows.iter().any(|s| {
                    s.bits == bits(&g)
                        && s.version == g.version()
                        && s.pending == replay.pending.votes
                });
                prop_assert!(
                    found,
                    "flip of bit {} recovered to a state not in the committed history \
                     (version {}, {} pending)",
                    bit,
                    g.version(),
                    replay.pending.len()
                );
            }
        }
    }
}
