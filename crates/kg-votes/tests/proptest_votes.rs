//! Property-based tests for the vote pipeline: on random graphs, solving
//! a satisfiable negative vote must promote the voted answer, must keep
//! every weight inside the box, and the optimization must never move
//! weights when there is nothing to do.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_sim::topk::rank_of;
use kg_votes::report::NormalizeMode;
use kg_votes::{
    solve_multi_votes, solve_single_votes, MultiVoteOptions, SingleVoteOptions, Vote, VoteSet,
};
use proptest::prelude::*;

/// A random two-layer answer graph: query -> hubs -> answers, where every
/// answer is reachable. Weights are free, so any vote is satisfiable.
fn arb_scene() -> impl Strategy<Value = (KnowledgeGraph, NodeId, Vec<NodeId>)> {
    (2usize..5, 2usize..5).prop_flat_map(|(hubs, answers)| {
        let weights = proptest::collection::vec(0.1f64..0.9, hubs + hubs * answers);
        weights.prop_map(move |ws| {
            let mut b = GraphBuilder::new();
            let q = b.add_node("q", NodeKind::Query);
            let hub_ids: Vec<NodeId> = (0..hubs)
                .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
                .collect();
            let ans_ids: Vec<NodeId> = (0..answers)
                .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
                .collect();
            let mut w = ws.iter().copied();
            for &h in &hub_ids {
                b.add_edge(q, h, w.next().unwrap()).unwrap();
            }
            for &h in &hub_ids {
                for &a in &ans_ids {
                    b.add_edge(h, a, w.next().unwrap()).unwrap();
                }
            }
            (b.build(), q, ans_ids)
        })
    })
}

fn options() -> MultiVoteOptions {
    MultiVoteOptions {
        normalize: NormalizeMode::None,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single negative vote on a fully-connected answer layer is always
    /// satisfiable, and the multi-vote solution satisfies it.
    #[test]
    fn negative_vote_promotes_answer((g, q, answers) in arb_scene(), pick in 0usize..5) {
        let sim = options().encode.sim;
        let ranked: Vec<NodeId> = answers.clone();
        let best = ranked[pick % ranked.len()];
        let rank_before = rank_of(&g, q, &ranked, &sim, best).unwrap();
        prop_assume!(rank_before > 1); // need a genuinely negative vote

        let mut g = g;
        let votes = VoteSet::from_votes(vec![Vote::new(q, ranked.clone(), best)]);
        let report = solve_multi_votes(&mut g, &votes, &options());
        prop_assert_eq!(
            report.outcomes[0].rank_after, 1,
            "vote not satisfied: {:?}", report.outcomes[0]
        );
    }

    /// All weights stay inside (0, 1] after any optimization.
    #[test]
    fn weights_stay_in_box((g, q, answers) in arb_scene(), pick in 0usize..5) {
        let best = answers[pick % answers.len()];
        let mut g = g;
        let votes = VoteSet::from_votes(vec![Vote::new(q, answers.clone(), best)]);
        solve_multi_votes(&mut g, &votes, &options());
        for e in g.edges() {
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0, "weight {}", e.weight);
        }
    }

    /// A purely positive vote batch that is already *clearly* satisfied
    /// moves nothing beyond solver noise. (With near-tied scores the
    /// Eq. 19 objective legitimately spends drift separating the tie —
    /// σ(w·0) = 0.5 — so the property only holds given a clear winner.)
    #[test]
    fn satisfied_positive_votes_cause_minimal_drift((g, q, answers) in arb_scene()) {
        let sim = options().encode.sim;
        // Vote for the current winner: a positive vote.
        let winner = answers
            .iter()
            .copied()
            .min_by_key(|&a| rank_of(&g, q, &answers, &sim, a).unwrap())
            .unwrap();
        // Require a decisive lead over the runner-up.
        let phi = kg_sim::phi_vector(&g, q, &sim);
        let mut scores: Vec<f64> = answers.iter().map(|a| phi[a.index()]).collect();
        scores.sort_by(|a, b| b.total_cmp(a));
        prop_assume!(scores.len() >= 2 && scores[0] - scores[1] > 0.02);
        let mut g2 = g.clone();
        let snap = WeightSnapshot::capture(&g2);
        let votes = VoteSet::from_votes(vec![Vote::new(
            q,
            {
                // Order the list by current rank so the vote is positive.
                let mut by_rank = answers.clone();
                by_rank.sort_by_key(|&a| rank_of(&g, q, &answers, &sim, a).unwrap());
                by_rank
            },
            winner,
        )]);
        prop_assume!(votes.votes[0].is_positive());
        solve_multi_votes(&mut g2, &votes, &options());
        // Satisfied sigmoids exert little pressure; the proximal term
        // keeps the solution near the start.
        prop_assert!(
            snap.squared_distance(&g2) < 0.05,
            "drift {}", snap.squared_distance(&g2)
        );
    }

    /// The single-vote pipeline also keeps weights valid and only ever
    /// touches edges on paths from the voted queries.
    #[test]
    fn single_vote_touches_only_footprint((g, q, answers) in arb_scene(), pick in 0usize..5) {
        let best = answers[pick % answers.len()];
        let mut g2 = g.clone();
        let snap = WeightSnapshot::capture(&g2);
        let votes = VoteSet::from_votes(vec![Vote::new(q, answers.clone(), best)]);
        let opts = SingleVoteOptions {
            normalize: NormalizeMode::None,
            ..Default::default()
        };
        solve_single_votes(&mut g2, &votes, &opts);
        // Frozen query edges must be untouched.
        for e in g2.out_edges(q) {
            prop_assert_eq!(snap.weight(e.edge), e.weight);
        }
        for e in g2.edges() {
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0);
        }
    }

    /// Votes and reports agree: omega equals the sum of the per-vote rank
    /// differences measured independently.
    #[test]
    fn report_omega_matches_measured_ranks((g, q, answers) in arb_scene(), pick in 0usize..5) {
        let sim = options().encode.sim;
        let best = answers[pick % answers.len()];
        let before = rank_of(&g, q, &answers, &sim, best).unwrap();
        let mut g2 = g.clone();
        let votes = VoteSet::from_votes(vec![Vote::new(q, answers.clone(), best)]);
        let report = solve_multi_votes(&mut g2, &votes, &options());
        let after = rank_of(&g2, q, &answers, &sim, best).unwrap();
        prop_assert_eq!(report.omega(), before as i64 - after as i64);
    }
}
