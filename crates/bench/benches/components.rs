//! Criterion microbenchmarks of the individual components: signomial
//! evaluation/gradients, affinity propagation, the merge rules, and graph
//! normalization. These back the per-component cost claims in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_cluster::{affinity_propagation, merge_deltas, ApOptions, ClusterDelta, MergeRule};
use kg_datasets::{erdos_renyi, GeneratorOptions};
use kg_graph::EdgeId;
use sgp::{Monomial, Signomial, VarId};
use std::collections::HashMap;

fn big_signomial(terms: usize, vars: usize) -> Signomial {
    let mut s = Signomial::zero();
    for t in 0..terms {
        let m = Monomial::from_path(
            0.01 + t as f64 * 1e-4,
            (0..4).map(|i| VarId(((t * 7 + i * 13) % vars) as u32)),
        );
        s.push(m);
    }
    s
}

fn bench_signomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("signomial");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &terms in &[100usize, 1000, 10_000] {
        let vars = 256;
        let s = big_signomial(terms, vars);
        let x = vec![0.5f64; vars];
        group.bench_with_input(BenchmarkId::new("eval", terms), &terms, |b, _| {
            b.iter(|| s.eval(&x))
        });
        group.bench_with_input(BenchmarkId::new("grad", terms), &terms, |b, _| {
            let mut g = vec![0.0; vars];
            b.iter(|| {
                g.iter_mut().for_each(|v| *v = 0.0);
                s.accumulate_grad(&x, &mut g);
            })
        });
    }
    group.finish();
}

fn bench_affinity_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("affinity_propagation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[20usize, 50, 100] {
        // Two-block similarity structure.
        let sim: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            1.0
                        } else if (i < n / 2) == (j < n / 2) {
                            0.8
                        } else {
                            0.1
                        }
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("two_blocks", n), &n, |b, _| {
            b.iter(|| affinity_propagation(&sim, &ApOptions::default()))
        });
    }
    group.finish();
}

fn bench_merge_rules(c: &mut Criterion) {
    let clusters: Vec<ClusterDelta> = (0..8)
        .map(|ci| {
            let deltas: HashMap<EdgeId, f64> = (0..2000u32)
                .map(|e| (EdgeId(e % 1200), (ci as f64 - 3.5) * 1e-3))
                .collect();
            ClusterDelta {
                votes: 5 + ci,
                deltas,
            }
        })
        .collect();
    let mut group = c.benchmark_group("merge_rules");
    for (name, rule) in [
        ("voting_extremal", MergeRule::VotingExtremal),
        ("weighted_mean", MergeRule::WeightedMean),
        ("last_writer", MergeRule::LastWriter),
    ] {
        group.bench_function(name, |b| b.iter(|| merge_deltas(&clusters, rule)));
    }
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let g = erdos_renyi(5_000, 40_000, &GeneratorOptions::default());
    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("normalize_out_edges", |b| {
        b.iter_batched(
            || g.clone(),
            |mut g| g.normalize_out_edges(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("clone", |b| b.iter(|| g.clone()));
    group.bench_function("json_roundtrip", |b| {
        b.iter(|| kg_graph::io::from_json(&kg_graph::io::to_json(&g)).unwrap())
    });
    group.bench_function("binary_roundtrip", |b| {
        b.iter(|| kg_graph::io::from_bytes(kg_graph::io::to_bytes(&g)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_signomial,
    bench_affinity_propagation,
    bench_merge_rules,
    bench_graph_ops
);
criterion_main!(benches);
