//! Criterion bench for Fig. 6: optimization cost of the three solutions
//! as the vote batch grows (Twitter clone workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_bench::setups::{
    experiment_multi_opts, experiment_single_opts, experiment_split_merge_opts, vote_scenario,
};
use kg_cluster::solve_split_merge;
use kg_datasets::TWITTER;
use kg_votes::{solve_multi_votes, solve_single_votes};
use std::time::Duration;

fn bench_solutions(c: &mut Criterion) {
    let budget = Duration::from_secs(30);
    let mut group = c.benchmark_group("fig6_solutions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[4usize, 8, 16] {
        let scenario = vote_scenario(&TWITTER, n, 0.01, 42);
        group.bench_with_input(BenchmarkId::new("multi_vote", n), &n, |b, _| {
            b.iter_batched(
                || scenario.graph.clone(),
                |mut g| solve_multi_votes(&mut g, &scenario.votes, &experiment_multi_opts(budget)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("split_merge", n), &n, |b, _| {
            b.iter_batched(
                || scenario.graph.clone(),
                |mut g| {
                    solve_split_merge(
                        &mut g,
                        &scenario.votes,
                        &experiment_split_merge_opts(budget, 1),
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("split_merge_parallel", n), &n, |b, _| {
            b.iter_batched(
                || scenario.graph.clone(),
                |mut g| {
                    solve_split_merge(
                        &mut g,
                        &scenario.votes,
                        &experiment_split_merge_opts(budget, 4),
                    )
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("single_vote", n), &n, |b, _| {
            b.iter_batched(
                || scenario.graph.clone(),
                |mut g| {
                    solve_single_votes(&mut g, &scenario.votes, &experiment_single_opts(budget))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solutions);
criterion_main!(benches);
