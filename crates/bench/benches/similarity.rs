//! Criterion bench for Table VI: similarity-evaluation cost vs answer-set
//! size — per-answer random walk (linear in |A|) vs extended inverse
//! P-distance (flat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_datasets::{generate_votes, synthesize, SyntheticVotes, VoteGenConfig, TAOBAO};
use kg_sim::topk::rank_answers;
use kg_sim::{ppr_vector, random_walk_similarity, PprOptions, SimilarityConfig};

fn world(n_answers: usize) -> SyntheticVotes {
    let base = synthesize(&TAOBAO, 0.15, 42);
    let n = base.node_count();
    let cfg = VoteGenConfig {
        n_queries: 3,
        n_answers,
        subgraph_nodes: n,
        link_degree: 4,
        top_k: 20,
        sim: SimilarityConfig::default(),
        seed: 42,
        ..Default::default()
    };
    generate_votes(&base, &cfg)
}

fn bench_similarity(c: &mut Criterion) {
    let sim = SimilarityConfig::default();
    let mut group = c.benchmark_group("table6_similarity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &na in &[100usize, 200, 400, 800] {
        let w = world(na);
        let q = w.queries[0];
        group.bench_with_input(BenchmarkId::new("random_walk", na), &na, |b, _| {
            b.iter(|| random_walk_similarity(&w.graph, q, &w.answers, &sim))
        });
        group.bench_with_input(BenchmarkId::new("ext_inv_pdistance", na), &na, |b, _| {
            b.iter(|| rank_answers(&w.graph, q, &w.answers, &sim, 20))
        });
        group.bench_with_input(BenchmarkId::new("ppr_power_iteration", na), &na, |b, _| {
            b.iter(|| ppr_vector(&w.graph, q, &PprOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
