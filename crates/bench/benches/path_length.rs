//! Criterion bench for Fig. 7(b): the cost of similarity evaluation,
//! path enumeration, and vote encoding as the pruning bound `L` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_bench::setups::vote_scenario;
use kg_datasets::DIGG;
use kg_sim::pdist::{enumerate_paths, phi_vector};
use kg_sim::SimilarityConfig;
use kg_votes::encode::{encode_multi, EncodeOptions, MultiParams};

fn bench_path_length(c: &mut Criterion) {
    let scenario = vote_scenario(&DIGG, 4, 0.01, 42);
    let vote = &scenario.votes.votes[0];
    let mut group = c.benchmark_group("fig7_path_length");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for l in [2usize, 3, 4, 5, 6] {
        let sim = SimilarityConfig::new(0.15, l);
        group.bench_with_input(BenchmarkId::new("phi_vector", l), &l, |b, _| {
            b.iter(|| phi_vector(&scenario.graph, vote.query, &sim))
        });
        group.bench_with_input(BenchmarkId::new("enumerate_paths", l), &l, |b, _| {
            b.iter(|| enumerate_paths(&scenario.graph, vote.query, &vote.answers, &sim, 2_000_000))
        });
        group.bench_with_input(BenchmarkId::new("encode_multi", l), &l, |b, _| {
            let opts = EncodeOptions {
                sim,
                ..Default::default()
            };
            b.iter(|| {
                encode_multi(
                    &scenario.graph,
                    &scenario.votes.votes,
                    &opts,
                    &MultiParams::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_length);
criterion_main!(benches);
