//! Shared utilities for the experiment harness: a tiny flag parser, an
//! aligned table printer, and common experiment configurations.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). All binaries accept:
//!
//! * `--scale <f>` — shrink dataset sizes and vote counts by this factor
//!   (default: a quick profile; pass `--scale 1.0` for paper-scale runs);
//! * `--seed <u64>` — RNG seed (default 42);
//! * `--telemetry json|prom` — collect `votekg.*` metrics during the run
//!   and dump per-phase latencies to stderr on exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod load;
pub mod setups;
pub mod table;

pub use args::{Args, TelemetryFormat, TelemetryGuard};
pub use table::Table;
