//! Fig. 6 regenerator: number of votes vs elapsed time (a–c) and vs
//! `Ω_avg` (d–f) on the Twitter, Digg and Gnutella clones, for four
//! solutions:
//!
//! * the basic multi-vote solution (one SGP over everything),
//! * the split-and-merge strategy (S-M),
//! * the distributed S-M strategy (4 worker threads),
//! * the single-vote solution.
//!
//! Paper shapes to reproduce: basic multi-vote blows up with the vote
//! count (the paper OOMs past ~70 votes); S-M is ≥6× faster at larger
//! counts and the distributed variant roughly another order faster than
//! basic; single-vote is fastest but clearly worst on `Ω_avg`; S-M's
//! `Ω_avg` tracks (or beats) basic multi-vote.
//!
//! Run: `cargo run -p kg-bench --release --bin fig6_scaling [--scale f] [--seed u] [--votes n,n,...]`

use kg_bench::setups::{
    experiment_multi_opts, experiment_single_opts, experiment_split_merge_opts, vote_scenario,
};
use kg_bench::table::{dur, f2};
use kg_bench::{Args, Table};
use kg_cluster::solve_split_merge;
use kg_datasets::{DatasetSpec, DIGG, GNUTELLA, TWITTER};
use kg_votes::{solve_multi_votes, solve_single_votes};
use std::time::{Duration, Instant};

fn vote_counts(args: &Args) -> Vec<usize> {
    if let Some(pos) = args.rest.iter().position(|a| a == "--votes") {
        if let Some(list) = args.rest.get(pos + 1) {
            return list
                .split(',')
                .map(|s| s.parse().expect("--votes wants n,n,..."))
                .collect();
        }
    }
    // The vote counts are the experiment's x-axis (Fig. 6 uses 10..200);
    // they stay fixed while --scale shrinks the graphs.
    vec![10, 30, 50, 100, 150, 200]
}

fn run_dataset(spec: &DatasetSpec, counts: &[usize], args: &Args) {
    println!("== {} ==", spec.name);
    let budget = Duration::from_secs(60);
    let mut t = Table::new(&[
        "votes",
        "multi time",
        "S-M time",
        "dist S-M time",
        "single time",
        "multi Omega",
        "S-M Omega",
        "single Omega",
    ]);
    for &n in counts {
        let scenario = vote_scenario(spec, n, args.scale, args.seed);
        let used = scenario.votes.len();

        let mut g = scenario.graph.clone();
        let started = Instant::now();
        let multi = solve_multi_votes(&mut g, &scenario.votes, &experiment_multi_opts(budget));
        let multi_time = started.elapsed();

        let mut g = scenario.graph.clone();
        let started = Instant::now();
        let sm = solve_split_merge(
            &mut g,
            &scenario.votes,
            &experiment_split_merge_opts(budget, 1),
        );
        let sm_time = started.elapsed();

        let mut g = scenario.graph.clone();
        let started = Instant::now();
        let _dist = solve_split_merge(
            &mut g,
            &scenario.votes,
            &experiment_split_merge_opts(budget, 4),
        );
        let dist_time = started.elapsed();

        let mut g = scenario.graph.clone();
        let started = Instant::now();
        let single = solve_single_votes(&mut g, &scenario.votes, &experiment_single_opts(budget));
        let single_time = started.elapsed();

        t.row(&[
            format!("{used}"),
            dur(multi_time),
            dur(sm_time),
            dur(dist_time),
            dur(single_time),
            f2(multi.omega_avg()),
            f2(sm.report.omega_avg()),
            f2(single.omega_avg()),
        ]);
    }
    t.print();
    println!();
}

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();
    println!(
        "Fig. 6 — votes vs elapsed time and Omega_avg (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let counts = vote_counts(&args);
    for spec in [&TWITTER, &DIGG, &GNUTELLA] {
        run_dataset(spec, &counts, &args);
    }
}
