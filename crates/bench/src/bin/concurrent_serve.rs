//! Concurrent serving benchmark: reader threads racing a live
//! incremental optimization, snapshot serving vs the old mutex path.
//!
//! Both arms process the *same* votes with the *same* incremental
//! pipeline (arrival-order batches, delta-based re-ranking between
//! batches) while `--readers` threads hammer rank requests the whole
//! time:
//!
//! * **mutex** — the pre-snapshot architecture: one big lock around the
//!   graph and its [`kg_serve::ScoreServer`]. The writer holds it for
//!   each batch's solve + re-rank (the old `&mut self` API serialized
//!   exactly like this), and every reader takes it per request, so reads
//!   stall for the whole round whenever one is being solved.
//! * **snapshot** — [`votekg::Framework::optimize_incremental`] publishes
//!   epoch-stamped [`votekg::GraphSnapshot`]s; readers serve through a
//!   cloned [`votekg::ServeHandle`] over the lock-free
//!   [`votekg::SnapshotServer`] and never block on the writer. A sample
//!   of reads is verified byte-identical to an uncached
//!   [`kg_sim::rank_answers`] evaluation of the exact snapshot served.
//!
//! Two throughput numbers are reported per arm:
//!
//! * **overall** — reads per second over the arm's whole optimization
//!   window (rounds plus the gaps between them);
//! * **during rounds** — reads per second counting only requests whose
//!   service time overlaps a round being applied. This is the headline
//!   metric: it measures whether the system can serve *while* the
//!   optimizer is live, which is the one thing the mutex architecture
//!   cannot do (its readers are parked until the round's lock drops —
//!   visible here as a near-zero during-rounds rate and a `max` read
//!   latency of a full round's wall-clock).
//!
//! Results land in `BENCH_concurrent_serve.json`.
//!
//! Run: `cargo run -p kg-bench --release --bin concurrent_serve
//!       [--scale f] [--seed u] [--votes n] [--rounds n] [--readers n] [--out path]`

use kg_bench::setups::{experiment_multi_opts, vote_scenario};
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_datasets::TWITTER;
use kg_graph::{KnowledgeGraph, NodeId};
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::{rank_answers, BatchQuery, SimilarityConfig};
use kg_votes::{solve_multi_votes, VoteSet};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use votekg::{Framework, FrameworkConfig, Strategy};

/// How often a snapshot-arm reader proves a served ranking against an
/// uncached evaluation (1 = every read; larger = cheaper sampling).
const VERIFY_EVERY: usize = 256;

/// One timed read: start offset and duration, both nanoseconds relative
/// to the arm's epoch.
#[derive(Clone, Copy)]
struct ReadSample {
    start_ns: u64,
    dur_ns: u64,
}

/// One arm's outcome: reader-side service quality while the optimizer
/// was running.
#[derive(Debug, Serialize)]
struct ArmOut {
    /// Total rank requests completed during the optimization window.
    reads: u64,
    /// Wall-clock of the whole incremental optimization (the window).
    elapsed_ms: f64,
    /// Optimization rounds applied.
    rounds: usize,
    /// Wall-clock spent inside rounds (solve + re-rank).
    round_time_ms: f64,
    /// Aggregate reads per second over the whole window.
    reads_per_sec: f64,
    /// Reads whose service time overlapped a round being applied.
    reads_during_rounds: u64,
    /// Aggregate reads per second while a round was in flight.
    reads_per_sec_during_rounds: f64,
    /// Median read latency, microseconds (within-bucket interpolated,
    /// [`kg_telemetry::Histogram::quantile`]).
    p50_us: f64,
    /// 90th-percentile read latency, microseconds (interpolated).
    p90_us: f64,
    /// 99th-percentile read latency, microseconds (interpolated).
    p99_us: f64,
    /// 99.9th-percentile read latency, microseconds (interpolated).
    p999_us: f64,
    /// Worst observed read latency, microseconds. In the mutex arm this
    /// is readers parked behind a whole round.
    max_us: f64,
    /// Reads verified byte-identical against an uncached evaluation
    /// (snapshot arm only; the mutex arm reads under the lock and is
    /// coherent by construction).
    verified: u64,
}

/// The emitted `BENCH_concurrent_serve.json` document.
#[derive(Debug, Serialize)]
struct ConcurrentServeBench {
    dataset: String,
    scale: f64,
    seed: u64,
    votes: usize,
    batch: usize,
    queries: usize,
    readers: usize,
    k: usize,
    mutex: ArmOut,
    snapshot: ArmOut,
    /// snapshot / mutex, during-rounds reads per second — service
    /// availability under a live optimizer, the headline number.
    during_rounds_speedup: f64,
    /// snapshot / mutex, whole-window reads per second.
    overall_speedup: f64,
    snapshot_stats: kg_serve::ServeStats,
}

fn flag(args: &Args, name: &str) -> Option<String> {
    args.rest
        .iter()
        .position(|a| a == name)
        .and_then(|p| args.rest.get(p + 1).cloned())
}

fn num_flag(args: &Args, name: &str, default: usize) -> usize {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

/// Folds raw samples + round intervals into the reported arm metrics.
/// Latency quantiles go through a standalone log-scale
/// [`kg_telemetry::Histogram`] with within-bucket interpolation — the
/// same summarization the telemetry exporters use, so bench numbers and
/// production dumps are comparable.
fn arm_out(
    samples: &[ReadSample],
    elapsed: Duration,
    intervals: &[(u64, u64)],
    verified: u64,
) -> ArmOut {
    let lat = kg_telemetry::Histogram::standalone();
    let mut max_ns = 0u64;
    for s in samples {
        lat.record(s.dur_ns);
        max_ns = max_ns.max(s.dur_ns);
    }
    let reads = samples.len() as u64;
    let round_ns: u64 = intervals.iter().map(|(a, b)| b - a).sum();
    let during = samples
        .iter()
        .filter(|s| {
            let end = s.start_ns + s.dur_ns;
            intervals.iter().any(|&(a, b)| s.start_ns < b && end > a)
        })
        .count() as u64;
    ArmOut {
        reads,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rounds: intervals.len(),
        round_time_ms: round_ns as f64 / 1e6,
        reads_per_sec: reads as f64 / elapsed.as_secs_f64().max(1e-9),
        reads_during_rounds: during,
        reads_per_sec_during_rounds: during as f64 / (round_ns as f64 / 1e9).max(1e-9),
        p50_us: lat.quantile(0.50) / 1e3,
        p90_us: lat.quantile(0.90) / 1e3,
        p99_us: lat.quantile(0.99) / 1e3,
        p999_us: lat.quantile(0.999) / 1e3,
        max_us: max_ns as f64 / 1e3,
        verified,
    }
}

/// The old architecture: one lock serializes every reader against the
/// writer's whole per-batch solve + re-rank.
fn run_mutex_arm(
    graph: &KnowledgeGraph,
    votes: &VoteSet,
    questions: &[(NodeId, Vec<NodeId>)],
    sim: SimilarityConfig,
    batch: usize,
    readers: usize,
    k: usize,
) -> ArmOut {
    let opts = experiment_multi_opts(Duration::from_secs(60));
    let shared = Mutex::new((
        graph.clone(),
        ScoreServer::new(ServeConfig {
            sim,
            ..Default::default()
        }),
    ));
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    let mut sample_threads: Vec<Vec<ReadSample>> = Vec::new();
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..readers {
            let shared = &shared;
            let stop = &stop;
            handles.push(s.spawn(move || {
                let mut samples = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let (q, answers) = &questions[i % questions.len()];
                    i += 1;
                    let start = epoch.elapsed().as_nanos() as u64;
                    let started = Instant::now();
                    let (ref graph, ref mut server) = *shared.lock().unwrap();
                    let r = server.rank(graph, *q, answers, k);
                    samples.push(ReadSample {
                        start_ns: start,
                        dur_ns: started.elapsed().as_nanos() as u64,
                    });
                    assert!(!r.is_empty());
                }
                samples
            }));
        }

        // Writer: the incremental pipeline, whole batch under the lock.
        let started = Instant::now();
        for chunk in votes.votes.chunks(batch) {
            let (ref mut graph, ref mut server) = *shared.lock().unwrap();
            let round_start = epoch.elapsed().as_nanos() as u64;
            let version_before = graph.version();
            solve_multi_votes(graph, &VoteSet::from_votes(chunk.to_vec()), &opts);
            let delta = graph.changes_since(version_before);
            if !delta.is_empty() {
                let qs: Vec<NodeId> = questions.iter().map(|(q, _)| *q).collect();
                let affected = kg_sim::affected_queries(graph, &delta.edges, &qs, &sim);
                let requests: Vec<BatchQuery<'_>> = questions
                    .iter()
                    .filter(|(q, _)| affected.contains(q))
                    .map(|(q, answers)| BatchQuery {
                        query: *q,
                        answers,
                        k: answers.len(),
                    })
                    .collect();
                server.rank_batch(graph, &requests);
            }
            intervals.push((round_start, epoch.elapsed().as_nanos() as u64));
        }
        elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            sample_threads.push(h.join().expect("reader thread"));
        }
    });
    let samples: Vec<ReadSample> = sample_threads.concat();
    arm_out(&samples, elapsed, &intervals, 0)
}

/// The snapshot architecture: the framework's incremental pipeline
/// publishes between batches; readers serve lock-free through
/// `ServeHandle`s. Votes are fed batch by batch so each round's wall
/// clock can be timed from outside.
fn run_snapshot_arm(
    graph: &KnowledgeGraph,
    votes: &VoteSet,
    questions: &[(NodeId, Vec<NodeId>)],
    sim: SimilarityConfig,
    batch: usize,
    readers: usize,
    k: usize,
) -> (ArmOut, kg_serve::ServeStats) {
    let mut config = FrameworkConfig {
        multi: experiment_multi_opts(Duration::from_secs(60)),
        ..Default::default()
    };
    config.multi.encode.sim = sim;
    let mut fw = Framework::new(graph.clone(), config);
    let handle = fw.handle();
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    let mut sample_threads: Vec<(Vec<ReadSample>, u64)> = Vec::new();
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..readers {
            let handle = handle.clone();
            let stop = &stop;
            handles.push(s.spawn(move || {
                let mut samples = Vec::new();
                let mut verified = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let (q, answers) = &questions[i % questions.len()];
                    i += 1;
                    let start = epoch.elapsed().as_nanos() as u64;
                    let started = Instant::now();
                    let (snap, r) = handle.rank_snapshot(*q, answers, k);
                    samples.push(ReadSample {
                        start_ns: start,
                        dur_ns: started.elapsed().as_nanos() as u64,
                    });
                    assert!(!r.is_empty());
                    if i % VERIFY_EVERY == 0 {
                        // Coherence gate: the served ranking must be
                        // byte-identical to an uncached evaluation of the
                        // exact snapshot it was served from.
                        assert_eq!(
                            r,
                            rank_answers(&snap, *q, answers, &sim, k),
                            "snapshot serving diverged at epoch {}",
                            snap.epoch()
                        );
                        verified += 1;
                    }
                }
                (samples, verified)
            }));
        }

        let started = Instant::now();
        for chunk in votes.votes.chunks(batch) {
            for v in chunk {
                fw.record_vote(v.clone());
            }
            let round_start = epoch.elapsed().as_nanos() as u64;
            fw.optimize_incremental(Strategy::MultiVote, chunk.len());
            intervals.push((round_start, epoch.elapsed().as_nanos() as u64));
        }
        elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            sample_threads.push(h.join().expect("reader thread"));
        }
    });
    let verified: u64 = sample_threads.iter().map(|(_, v)| *v).sum();
    let samples: Vec<ReadSample> = sample_threads
        .iter()
        .flat_map(|(s, _)| s.iter().copied())
        .collect();
    (
        arm_out(&samples, elapsed, &intervals, verified),
        handle.stats(),
    )
}

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();
    let n_votes = num_flag(&args, "--votes", 48);
    let rounds = num_flag(&args, "--rounds", 12).max(1);
    let readers = num_flag(&args, "--readers", 4).max(1);
    let out_path =
        flag(&args, "--out").unwrap_or_else(|| "BENCH_concurrent_serve.json".to_string());
    let k = 10usize;

    println!(
        "Concurrent serving bench — {readers} readers racing incremental optimization, \
         snapshot serving vs one big mutex (scale {}, seed {})\n",
        args.scale, args.seed
    );

    let scenario = vote_scenario(&TWITTER, n_votes, args.scale, args.seed);
    let sim = SimilarityConfig::default();
    let mut questions: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for v in &scenario.votes.votes {
        if !questions.iter().any(|(q, _)| *q == v.query) {
            questions.push((v.query, v.answers.clone()));
        }
    }
    let batch = scenario.votes.len().div_ceil(rounds);
    println!(
        "workload: {} votes over {} queries, batches of {batch}\n",
        scenario.votes.len(),
        questions.len(),
    );

    let mutex = run_mutex_arm(
        &scenario.graph,
        &scenario.votes,
        &questions,
        sim,
        batch,
        readers,
        k,
    );
    let (snapshot, snapshot_stats) = run_snapshot_arm(
        &scenario.graph,
        &scenario.votes,
        &questions,
        sim,
        batch,
        readers,
        k,
    );

    let mut t = Table::new(&[
        "arm",
        "reads",
        "elapsed ms",
        "reads/s",
        "in-round reads/s",
        "p50 us",
        "p99 us",
        "max us",
    ]);
    for (name, arm) in [("mutex", &mutex), ("snapshot", &snapshot)] {
        t.row(&[
            name.to_string(),
            format!("{}", arm.reads),
            f2(arm.elapsed_ms),
            f2(arm.reads_per_sec),
            f2(arm.reads_per_sec_during_rounds),
            f2(arm.p50_us),
            f2(arm.p99_us),
            f2(arm.max_us),
        ]);
    }
    t.print();

    let ratio = |snap: f64, base: f64| {
        if base > 0.0 {
            snap / base
        } else {
            f64::MAX
        }
    };
    let during_rounds_speedup = ratio(
        snapshot.reads_per_sec_during_rounds,
        mutex.reads_per_sec_during_rounds,
    );
    let overall_speedup = ratio(snapshot.reads_per_sec, mutex.reads_per_sec);
    println!(
        "\nread throughput with a round in flight: {:.2}x vs the mutex path \
         (overall window: {:.2}x; {} snapshot reads verified against uncached evaluation)",
        during_rounds_speedup, overall_speedup, snapshot.verified
    );

    let bench = ConcurrentServeBench {
        dataset: scenario.name.clone(),
        scale: args.scale,
        seed: args.seed,
        votes: scenario.votes.len(),
        batch,
        queries: questions.len(),
        readers,
        k,
        mutex,
        snapshot,
        during_rounds_speedup,
        overall_speedup,
        snapshot_stats,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!("wrote {out_path}");
}
