//! Network-serving load harness: drives a live [`kg_server::KgServer`]
//! over real sockets with a simulated voter population and reports
//! wire-level latency/throughput while optimization rounds run mid-load.
//!
//! The workload is a deterministic [`kg_bench::load::LoadPlan`]
//! (Zipfian question mix, exponential think times, vote bursts, open-
//! loop arrival schedule — all a pure function of the seed) replayed in
//! one or both loop disciplines:
//!
//! * **closed** — each client waits for the response, thinks, then
//!   sends the next request; latency is service time.
//! * **open** — each client fires at its plan's absolute arrival
//!   offsets regardless of responses; latency is measured from the
//!   *scheduled* arrival, so queueing delay under overload is charged
//!   to the server (no coordinated omission).
//!
//! A trigger thread fires `POST /optimize` rounds at event-count
//! thresholds, so part of every run executes against a live optimizer —
//! the serving path's headline condition. Clients mix the HTTP/1.1 and
//! binary wire formats (`--binary-frac`), verify per-connection epoch
//! monotonicity, and count every protocol/io error.
//!
//! Results land in `BENCH_server.json` (schema: DESIGN.md, "Network
//! serving"). With `--enforce`, any error, epoch regression, or unclean
//! drain exits nonzero — this is the `scripts/check.sh` smoke gate.
//!
//! Run: `cargo run -p kg-bench --release --bin server_load --
//!       [--scale f] [--seed u] [--clients n] [--requests n]
//!       [--mode closed|open|both] [--binary-frac f] [--vote-frac f]
//!       [--burst n] [--zipf f] [--think-us n] [--open-rate f]
//!       [--server-workers n] [--shards n] [--queue-depth n]
//!       [--opt-rounds n] [--batch n] [--votes n] [--durable]
//!       [--enforce] [--out path]`

use kg_bench::load::{EventKind, LoadConfig, LoadPlan, PlanSummary};
use kg_bench::setups::vote_scenario;
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_datasets::TWITTER;
use kg_server::{BinClient, ClientError, HttpClient, KgServer, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use votekg::{Framework, FrameworkConfig};

use serde::Serialize;

/// One question the clients can ask: a query node plus its answer set.
struct Question {
    query: u32,
    answers: Vec<u32>,
}

/// Everything a single mode run needs.
struct RunParams<'a> {
    addr: SocketAddr,
    questions: &'a [Question],
    plan: &'a LoadPlan,
    binary_frac: f64,
    open_loop: bool,
    k: usize,
    opt_rounds: usize,
    opt_batch: usize,
}

/// What one client observed: latency samples plus error tallies.
#[derive(Default)]
struct ClientOutcome {
    /// `(is_vote, latency_ns)` per completed request.
    samples: Vec<(bool, u64)>,
    io_errors: u64,
    protocol_errors: u64,
    server_errors: u64,
    epoch_regressions: u64,
    reconnects: u64,
    late_sends: u64,
    max_late_ns: u64,
    min_epoch: u64,
    max_epoch: u64,
}

/// Latency summary for one request class, microseconds, interpolated
/// quantiles from a log-scale [`kg_telemetry::Histogram`].
#[derive(Debug, Serialize)]
struct LatencyOut {
    count: u64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

/// One optimization round fired mid-run.
#[derive(Debug, Serialize)]
struct TriggerOut {
    /// Events completed when the trigger fired.
    at_event: u64,
    /// Incremental rounds the server ran for this trigger.
    rounds: u64,
    /// Votes applied across those rounds.
    votes_applied: u64,
    /// Server-side wall clock of the optimize call.
    elapsed_ms: u64,
    /// Published epoch after the call.
    epoch: u64,
}

/// One loop discipline's results.
#[derive(Debug, Serialize)]
struct ModeOut {
    mode: &'static str,
    wall_ms: f64,
    requests: u64,
    requests_per_sec: f64,
    /// Requests per second divided by available cores — the container
    /// has one, so this is the honest per-core number.
    requests_per_sec_per_core: f64,
    rank: LatencyOut,
    vote: LatencyOut,
    io_errors: u64,
    protocol_errors: u64,
    server_errors: u64,
    /// Responses whose epoch went backwards on one connection (must
    /// stay 0: snapshot publication is monotone).
    epoch_regressions: u64,
    /// Transparent HTTP keep-alive reconnects.
    reconnects: u64,
    /// Open loop only: sends that fired behind schedule.
    late_sends: u64,
    /// Open loop only: worst schedule slip.
    max_late_us: f64,
    /// Lowest / highest epoch any response carried — a live optimizer
    /// shows up as max > min.
    epoch_min: u64,
    epoch_max: u64,
    /// Optimization rounds fired while this mode's clients were running.
    triggers: Vec<TriggerOut>,
}

/// The emitted `BENCH_server.json` document.
#[derive(Debug, Serialize)]
struct ServerBench {
    dataset: String,
    scale: f64,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    binary_frac: f64,
    questions: usize,
    k: usize,
    cores: usize,
    server_workers: usize,
    serve_shards: usize,
    queue_depth: usize,
    durable: bool,
    plan: PlanSummary,
    closed: Option<ModeOut>,
    open: Option<ModeOut>,
    drain_clean: bool,
    queued_at_shutdown: u64,
    server_stats: kg_server::ServerStatsSnapshot,
}

fn flag(args: &Args, name: &str) -> Option<String> {
    args.rest
        .iter()
        .position(|a| a == name)
        .and_then(|p| args.rest.get(p + 1).cloned())
}

fn num_flag(args: &Args, name: &str, default: usize) -> usize {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

fn float_flag(args: &Args, name: &str, default: f64) -> f64 {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

/// A client connection in either wire format, with a uniform
/// rank/vote surface that reports the response's epoch (votes carry
/// none).
enum Conn {
    Http(HttpClient),
    Bin(BinClient),
}

impl Conn {
    fn dial(addr: SocketAddr, binary: bool) -> Result<Conn, ClientError> {
        if binary {
            BinClient::connect(addr).map(Conn::Bin)
        } else {
            HttpClient::connect(addr).map(Conn::Http)
        }
    }

    fn rank(&mut self, q: &Question, k: usize) -> Result<u64, ClientError> {
        match self {
            Conn::Http(http) => {
                let body = rank_body(q, k);
                let resp = http.post_json("/rank", &body)?;
                let doc = resp.json()?;
                doc.get("epoch")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| ClientError::Protocol("rank response lacks epoch".to_string()))
            }
            Conn::Bin(bin) => Ok(bin.rank(q.query, &q.answers, k as u16)?.epoch),
        }
    }

    fn vote(&mut self, q: &Question, best: u32) -> Result<(), ClientError> {
        match self {
            Conn::Http(http) => {
                let body = vote_body(q, best);
                http.post_json("/vote", &body).map(|_| ())
            }
            Conn::Bin(bin) => bin.vote(q.query, best, &q.answers).map(|_| ()),
        }
    }

    fn reconnects(&self) -> u64 {
        match self {
            Conn::Http(http) => http.reconnects,
            Conn::Bin(_) => 0,
        }
    }
}

fn rank_body(q: &Question, k: usize) -> String {
    format!(
        "{{\"query\":{},\"answers\":[{}],\"k\":{k}}}",
        q.query,
        join_ids(&q.answers)
    )
}

fn vote_body(q: &Question, best: u32) -> String {
    format!(
        "{{\"query\":{},\"answers\":[{}],\"best\":{best}}}",
        q.query,
        join_ids(&q.answers)
    )
}

fn join_ids(ids: &[u32]) -> String {
    ids.iter()
        .map(|id| id.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn classify(outcome: &mut ClientOutcome, e: &ClientError) {
    match e {
        ClientError::Io(_) => outcome.io_errors += 1,
        ClientError::Protocol(_) => outcome.protocol_errors += 1,
        ClientError::Server { .. } => outcome.server_errors += 1,
    }
}

/// Replays one client's schedule against the server. Closed loop paces
/// with think times; open loop fires at the plan's arrival offsets and
/// measures latency from the *scheduled* send, so a server that falls
/// behind pays for its queue.
fn run_client(
    params: &RunParams<'_>,
    client_idx: usize,
    start: Instant,
    completed: &AtomicU64,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        min_epoch: u64::MAX,
        ..Default::default()
    };
    let share = (client_idx as f64 + 0.5) / params.plan.clients.len() as f64;
    let binary = share < params.binary_frac;
    let mut conn = match Conn::dial(params.addr, binary) {
        Ok(conn) => conn,
        Err(e) => {
            classify(&mut outcome, &e);
            return outcome;
        }
    };
    for event in &params.plan.clients[client_idx].events {
        let q = &params.questions[event.question % params.questions.len()];
        // Pace the send, and fix the instant latency is measured from.
        let latency_from = if params.open_loop {
            let scheduled = Duration::from_nanos(event.arrival_ns);
            let now = start.elapsed();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            } else {
                let late = (now - scheduled).as_nanos() as u64;
                if late > 1_000 {
                    outcome.late_sends += 1;
                    outcome.max_late_ns = outcome.max_late_ns.max(late);
                }
            }
            start.checked_add(scheduled).unwrap_or_else(Instant::now)
        } else {
            if event.think_ns > 0 {
                std::thread::sleep(Duration::from_nanos(event.think_ns));
            }
            Instant::now()
        };
        let (is_vote, result) = match event.kind {
            EventKind::Rank => (false, conn.rank(q, params.k).map(Some)),
            EventKind::Vote { best_pos } => {
                let best = q.answers[best_pos % q.answers.len()];
                (true, conn.vote(q, best).map(|()| None))
            }
        };
        completed.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(epoch) => {
                outcome
                    .samples
                    .push((is_vote, latency_from.elapsed().as_nanos() as u64));
                if let Some(epoch) = epoch {
                    if epoch < outcome.max_epoch {
                        outcome.epoch_regressions += 1;
                    }
                    outcome.min_epoch = outcome.min_epoch.min(epoch);
                    outcome.max_epoch = outcome.max_epoch.max(epoch);
                }
            }
            Err(e) => classify(&mut outcome, &e),
        }
    }
    outcome.reconnects = conn.reconnects();
    outcome
}

/// Fires `opt_rounds` optimize calls as the global completed-event
/// counter crosses evenly spaced thresholds — optimization runs *while*
/// clients are mid-schedule, which is the condition being measured.
fn trigger_loop(
    params: &RunParams<'_>,
    completed: &AtomicU64,
    done: &AtomicBool,
) -> (Vec<TriggerOut>, u64) {
    let mut triggers = Vec::new();
    let mut errors = 0u64;
    if params.opt_rounds == 0 {
        return (triggers, errors);
    }
    let total: u64 = params.plan.total_events();
    let mut http = match HttpClient::connect(params.addr) {
        Ok(c) => c,
        Err(_) => return (triggers, 1),
    };
    let body = format!(
        "{{\"strategy\":\"multi\",\"batch\":{}}}",
        params.opt_batch.max(1)
    );
    for i in 1..=params.opt_rounds as u64 {
        let threshold = total * i / (params.opt_rounds as u64 + 1);
        loop {
            let now = completed.load(Ordering::Relaxed);
            if now >= threshold || done.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let at_event = completed.load(Ordering::Relaxed);
        match http.post_json("/optimize", &body).and_then(|r| r.json()) {
            Ok(doc) => {
                let field = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                triggers.push(TriggerOut {
                    at_event,
                    rounds: field("rounds"),
                    votes_applied: field("votes_applied"),
                    elapsed_ms: field("elapsed_ms"),
                    epoch: field("epoch"),
                });
            }
            Err(_) => errors += 1,
        }
    }
    (triggers, errors)
}

/// Folds per-class samples into the reported quantiles.
fn latency_out(samples: &[(bool, u64)], votes: bool) -> LatencyOut {
    let lat = kg_telemetry::Histogram::standalone();
    let mut count = 0u64;
    let mut max_ns = 0u64;
    for &(is_vote, ns) in samples {
        if is_vote == votes {
            lat.record(ns);
            count += 1;
            max_ns = max_ns.max(ns);
        }
    }
    LatencyOut {
        count,
        p50_us: lat.quantile(0.50) / 1e3,
        p90_us: lat.quantile(0.90) / 1e3,
        p99_us: lat.quantile(0.99) / 1e3,
        p999_us: lat.quantile(0.999) / 1e3,
        max_us: max_ns as f64 / 1e3,
    }
}

/// Runs one loop discipline: all clients in parallel, the optimize
/// trigger thread racing them, then folds the outcomes.
fn run_mode(params: &RunParams<'_>) -> ModeOut {
    let completed = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut triggers = Vec::new();
    let mut trigger_errors = 0u64;
    std::thread::scope(|s| {
        let trigger_handle = s.spawn(|| trigger_loop(params, &completed, &done));
        let handles: Vec<_> = (0..params.plan.clients.len())
            .map(|i| {
                let completed = &completed;
                s.spawn(move || run_client(params, i, start, completed))
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("client thread"));
        }
        done.store(true, Ordering::Relaxed);
        (triggers, trigger_errors) = trigger_handle.join().expect("trigger thread");
    });
    let wall = start.elapsed();

    let samples: Vec<(bool, u64)> = outcomes.iter().flat_map(|o| o.samples.clone()).collect();
    let sum = |f: fn(&ClientOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    let requests = samples.len() as u64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rps = requests as f64 / wall.as_secs_f64().max(1e-9);
    ModeOut {
        mode: if params.open_loop { "open" } else { "closed" },
        wall_ms: wall.as_secs_f64() * 1e3,
        requests,
        requests_per_sec: rps,
        requests_per_sec_per_core: rps / cores as f64,
        rank: latency_out(&samples, false),
        vote: latency_out(&samples, true),
        io_errors: sum(|o| o.io_errors),
        protocol_errors: sum(|o| o.protocol_errors),
        server_errors: sum(|o| o.server_errors) + trigger_errors,
        epoch_regressions: sum(|o| o.epoch_regressions),
        reconnects: sum(|o| o.reconnects),
        late_sends: sum(|o| o.late_sends),
        max_late_us: outcomes.iter().map(|o| o.max_late_ns).max().unwrap_or(0) as f64 / 1e3,
        epoch_min: outcomes
            .iter()
            .map(|o| o.min_epoch)
            .min()
            .unwrap_or(u64::MAX),
        epoch_max: outcomes.iter().map(|o| o.max_epoch).max().unwrap_or(0),
        triggers,
    }
}

fn mode_row(t: &mut Table, m: &ModeOut) {
    t.row(&[
        m.mode.to_string(),
        format!("{}", m.requests),
        f2(m.wall_ms),
        f2(m.requests_per_sec_per_core),
        f2(m.rank.p50_us),
        f2(m.rank.p99_us),
        f2(m.rank.p999_us),
        f2(m.vote.p99_us),
        format!(
            "{}",
            m.io_errors + m.protocol_errors + m.server_errors + m.epoch_regressions
        ),
    ]);
}

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();

    let clients = num_flag(&args, "--clients", 8).max(1);
    let requests = num_flag(&args, "--requests", 40).max(1);
    let n_votes = num_flag(&args, "--votes", 24);
    let server_workers = num_flag(&args, "--server-workers", 4);
    let shards = num_flag(&args, "--shards", 0);
    let queue_depth = num_flag(&args, "--queue-depth", 128);
    let opt_rounds = num_flag(&args, "--opt-rounds", 2);
    let opt_batch = num_flag(&args, "--batch", 4);
    let binary_frac = float_flag(&args, "--binary-frac", 0.5);
    let vote_frac = float_flag(&args, "--vote-frac", 0.15);
    let burst = num_flag(&args, "--burst", 3);
    let zipf_s = float_flag(&args, "--zipf", 1.1);
    let think_us = num_flag(&args, "--think-us", 300) as u64;
    let open_rate = float_flag(&args, "--open-rate", 1500.0);
    let mode = flag(&args, "--mode").unwrap_or_else(|| "both".to_string());
    let durable = args.has_flag("--durable");
    let enforce = args.has_flag("--enforce");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_server.json".to_string());
    let k = 10usize;

    println!(
        "Server load bench — {clients} clients x {requests} events over live wire \
         ({} workers, scale {}, seed {})\n",
        server_workers.max(1),
        args.scale,
        args.seed
    );

    // Workload: the Section VII vote scenario's questions become the
    // serving question pool.
    let scenario = vote_scenario(&TWITTER, n_votes, args.scale, args.seed);
    let mut questions: Vec<Question> = Vec::new();
    for v in &scenario.votes.votes {
        if !questions.iter().any(|q| q.query == v.query.0) {
            questions.push(Question {
                query: v.query.0,
                answers: v.answers.iter().map(|a| a.0).collect(),
            });
        }
    }
    assert!(!questions.is_empty(), "scenario produced no questions");

    let plan = LoadPlan::generate(&LoadConfig {
        clients,
        requests_per_client: requests,
        questions: questions.len(),
        zipf_s,
        vote_fraction: vote_frac,
        vote_burst: burst,
        mean_think_us: think_us,
        open_rate_rps: open_rate,
        seed: args.seed,
    });
    println!(
        "plan: {} ranks + {} votes in {} bursts over {} questions\n",
        plan.summary.ranks,
        plan.summary.votes,
        plan.summary.vote_bursts,
        questions.len()
    );

    // The served framework, optionally durable in a scratch WAL dir.
    let wal_dir = std::env::temp_dir().join(format!("votekg-server-load-{}", std::process::id()));
    let mut fw = if durable {
        let (fw, _report) = Framework::open_durable(
            &wal_dir,
            scenario.graph.clone(),
            FrameworkConfig::default(),
            votekg::DurableOptions::default(),
        )
        .expect("open durable framework");
        fw
    } else {
        Framework::new(scenario.graph.clone(), FrameworkConfig::default())
    };
    if shards > 0 {
        fw = fw.with_serve_shards(shards);
    }
    let server = KgServer::start(
        fw,
        ServerConfig {
            workers: server_workers,
            queue_depth,
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let run = |open_loop: bool| {
        run_mode(&RunParams {
            addr,
            questions: &questions,
            plan: &plan,
            binary_frac,
            open_loop,
            k,
            opt_rounds,
            opt_batch,
        })
    };
    let closed = matches!(mode.as_str(), "closed" | "both").then(|| run(false));
    let open = matches!(mode.as_str(), "open" | "both").then(|| run(true));
    assert!(
        closed.is_some() || open.is_some(),
        "--mode must be closed | open | both, got {mode:?}"
    );

    let report = server.shutdown();
    if durable {
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    let mut t = Table::new(&[
        "mode",
        "requests",
        "wall ms",
        "req/s/core",
        "rank p50 us",
        "rank p99 us",
        "rank p999 us",
        "vote p99 us",
        "errors",
    ]);
    for m in closed.iter().chain(open.iter()) {
        mode_row(&mut t, m);
    }
    t.print();

    let mut failures: Vec<String> = Vec::new();
    for m in closed.iter().chain(open.iter()) {
        let errors = m.io_errors + m.protocol_errors + m.server_errors;
        if errors > 0 {
            failures.push(format!("{}: {errors} wire errors", m.mode));
        }
        if m.epoch_regressions > 0 {
            failures.push(format!(
                "{}: {} epoch regressions",
                m.mode, m.epoch_regressions
            ));
        }
        if opt_rounds > 0 && m.triggers.is_empty() {
            failures.push(format!("{}: no optimize round fired mid-run", m.mode));
        }
    }
    if !report.clean {
        failures.push(format!(
            "unclean drain: {} handler panics",
            report.stats.handler_panics
        ));
    }

    let bench = ServerBench {
        dataset: scenario.name.clone(),
        scale: args.scale,
        seed: args.seed,
        clients,
        requests_per_client: requests,
        binary_frac,
        questions: questions.len(),
        k,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        server_workers: server_workers.max(1),
        serve_shards: shards,
        queue_depth,
        durable,
        plan: plan.summary.clone(),
        closed,
        open,
        drain_clean: report.clean,
        queued_at_shutdown: report.queued_at_shutdown,
        server_stats: report.stats,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!("\nwrote {out_path}");

    if !failures.is_empty() {
        eprintln!("\nserver load harness found problems:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        if enforce {
            std::process::exit(1);
        }
    } else if enforce {
        println!("enforce: zero wire errors, monotone epochs, clean drain");
    }
}
