//! Table IV regenerator: ranking of best answers in the test dataset.
//!
//! Reports, for the original deployed graph and the graphs optimized by
//! the single-vote and multi-vote solutions:
//!
//! * `R_avg` — average rank of the ground-truth best answers,
//! * `Ω_avg` — average rank gain relative to the original graph,
//! * `P_avg` — average percentage-wise rank improvement.
//!
//! Paper reference values (real Taobao study): original 3.56; single-vote
//! 3.59 (Ω_avg −0.03, −0.84%); multi-vote 2.86 (Ω_avg 0.67, +18.82%). The
//! reproduction target is the *shape*: multi-vote clearly improves,
//! single-vote does not (it ignores positive votes).
//!
//! Run: `cargo run -p kg-bench --release --bin table4_ranking [--scale f] [--seed u]`

use kg_bench::setups::run_user_study;
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_metrics::{mean_rank, omega_avg, pavg, RankPair};

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Table IV — ranking of best answers in the test dataset (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let o = run_user_study(args.scale, args.seed);

    let original = o.study.test_ranks(&o.study.deployed, &o.sim);
    let single = o.study.test_ranks(&o.single_graph, &o.sim);
    let multi = o.study.test_ranks(&o.multi_graph, &o.sim);

    let pairs = |after: &[usize]| -> Vec<RankPair> {
        original
            .iter()
            .zip(after)
            .map(|(&b, &a)| RankPair {
                before: b,
                after: a,
            })
            .collect()
    };

    let mut t = Table::new(&["Graph", "Ravg", "Omega_avg", "Pavg"]);
    t.row(&[
        "Original Graph".into(),
        f2(mean_rank(&original)),
        "-".into(),
        "-".into(),
    ]);
    for (name, ranks) in [("single-vote", &single), ("multi-vote", &multi)] {
        let p = pairs(ranks);
        t.row(&[
            format!("Optimized by {name} solution"),
            f2(mean_rank(ranks)),
            f2(omega_avg(&p)),
            format!("{:+.2}%", 100.0 * pavg(&p)),
        ]);
    }
    t.print();
    println!(
        "\ntest queries: {}   votes: {} ({} negative / {} positive, {} discarded by judgment)",
        original.len(),
        o.study.votes.len(),
        o.study.votes.counts().0,
        o.study.votes.counts().1,
        o.multi_report.discarded_votes,
    );
}
