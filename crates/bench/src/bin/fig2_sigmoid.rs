//! Fig. 2 regenerator: the step function vs its sigmoid approximation.
//!
//! Prints sample points of both functions over `d ∈ [−1, 1]` for the
//! paper's steepness `w = 300` (and a shallow `w = 10` for contrast), plus
//! the worst-case approximation error outside a small dead zone.
//!
//! Run: `cargo run -p kg-bench --release --bin fig2_sigmoid`

use kg_bench::table::f3;
use kg_bench::Table;
use sgp::sigmoid::{approximation_error, sigmoid, step};

fn main() {
    println!("Fig. 2 — step function vs sigmoid approximation\n");
    let mut t = Table::new(&["d", "step(d)", "sigmoid(w=300)", "sigmoid(w=10)"]);
    let samples = 21;
    for i in 0..samples {
        let d = -1.0 + 2.0 * i as f64 / (samples - 1) as f64;
        t.row(&[
            format!("{d:+.1}"),
            f3(step(d)),
            f3(sigmoid(d, 300.0)),
            f3(sigmoid(d, 10.0)),
        ]);
    }
    t.print();

    println!("\nWorst |sigmoid - step| outside |d| < 0.05:");
    let mut t2 = Table::new(&["w", "max error"]);
    for w in [10.0, 50.0, 100.0, 300.0, 1000.0] {
        t2.row(&[
            format!("{w}"),
            format!("{:.2e}", approximation_error(w, 0.05, 2000)),
        ]);
    }
    t2.print();
    println!("\nAs in the paper, w = 300 makes the sigmoid indistinguishable from the step");
    println!("outside a tiny neighborhood of zero while staying smooth for the solver.");
}
