//! Table V regenerator: promotion of best answers in the top-k list.
//!
//! `H@k` (fraction of test questions whose ground-truth best answer ranks
//! no lower than `k`) for five methods:
//!
//! * **IR** — entity-overlap coincidence between the question's and the
//!   document's entity sets (no graph walk);
//! * **RW Q&A \[5\]** — random-walk evaluation of the deployed graph
//!   (Monte-Carlo walks; the paper observes it matches the KG approach
//!   since PPR and random walks are equivalent in similarity evaluation);
//! * **KG without optimization** — extended inverse P-distance on the
//!   deployed graph;
//! * **KG + single-vote / multi-vote** — same, after optimization.
//!
//! Paper shape to reproduce: all KG methods beat IR by a wide margin;
//! single-vote *degrades* H@1/H@3 but helps H@5/H@10; multi-vote is best
//! everywhere.
//!
//! Run: `cargo run -p kg-bench --release --bin table5_hits [--scale f] [--seed u]`

use kg_bench::setups::run_user_study;
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_graph::{KnowledgeGraph, NodeId};
use kg_metrics::hits_at_k;
use kg_sim::random_walk::{monte_carlo_similarity, MonteCarloOptions};
use std::collections::HashSet;

/// Rank of `best` among `answers` for `query` by entity-overlap IR: the
/// question's linked entities vs the document's linked entities.
fn ir_rank(graph: &KnowledgeGraph, query: NodeId, answers: &[NodeId], best: NodeId) -> usize {
    let q_entities: HashSet<NodeId> = graph.out_edges(query).map(|e| e.to).collect();
    let mut scored: Vec<(NodeId, f64)> = answers
        .iter()
        .map(|&a| {
            let a_entities: HashSet<NodeId> = graph.in_edges(a).map(|e| e.from).collect();
            let inter = q_entities.intersection(&a_entities).count();
            let union = q_entities.union(&a_entities).count().max(1);
            (a, inter as f64 / union as f64)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored
        .iter()
        .position(|&(a, _)| a == best)
        .expect("best is an answer")
        + 1
}

/// Rank of `best` by Monte-Carlo random walks on `graph`.
fn rw_rank(
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    best: NodeId,
    seed: u64,
) -> usize {
    let opts = MonteCarloOptions {
        walks: 50_000,
        max_steps: 5,
        seed,
    };
    let sims = monte_carlo_similarity(graph, query, answers, 0.15, &opts);
    let mut scored: Vec<(NodeId, f64)> = answers.iter().copied().zip(sims).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored
        .iter()
        .position(|&(a, _)| a == best)
        .expect("best is an answer")
        + 1
}

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Table V — promotion of best answers in the top-k list (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let o = run_user_study(args.scale, args.seed);
    let study = &o.study;

    let ir: Vec<usize> = study
        .test_queries
        .iter()
        .zip(&study.test_best)
        .map(|(&q, &b)| ir_rank(&study.deployed, q, &study.answers, b))
        .collect();
    let rw: Vec<usize> = study
        .test_queries
        .iter()
        .zip(&study.test_best)
        .enumerate()
        .map(|(i, (&q, &b))| rw_rank(&study.deployed, q, &study.answers, b, args.seed + i as u64))
        .collect();
    let kg = study.test_ranks(&study.deployed, &o.sim);
    let kg_single = study.test_ranks(&o.single_graph, &o.sim);
    let kg_multi = study.test_ranks(&o.multi_graph, &o.sim);

    let mut t = Table::new(&["Method", "H@1", "H@3", "H@5", "H@10"]);
    for (name, ranks) in [
        ("IR", &ir),
        ("RW Q&A [5]", &rw),
        ("KG without optimization", &kg),
        ("KG optimized by single-vote", &kg_single),
        ("KG optimized by multi-vote", &kg_multi),
    ] {
        t.row(&[
            name.to_string(),
            f2(hits_at_k(ranks, 1)),
            f2(hits_at_k(ranks, 3)),
            f2(hits_at_k(ranks, 5)),
            f2(hits_at_k(ranks, 10)),
        ]);
    }
    t.print();
    println!("\ntest questions: {}", study.test_queries.len());
}
