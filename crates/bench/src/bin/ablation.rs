//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Merge rule** — the paper's voting-extremal rule vs weighted mean
//!    vs last-writer (the single-vote solution's order bias).
//! 2. **λ1 / λ2 trade-off** — drift penalty vs vote satisfaction.
//! 3. **Sigmoid steepness `w`** — how sharply violations are counted.
//! 4. **Solver** — exterior penalty vs augmented Lagrangian, and the
//!    eliminated multi-vote form vs explicit deviation variables.
//!
//! Run: `cargo run -p kg-bench --release --bin ablation [--scale f] [--seed u]`

use kg_bench::setups::{experiment_split_merge_opts, run_user_study, vote_scenario};
use kg_bench::table::{dur, f2};
use kg_bench::{Args, Table};
use kg_cluster::{solve_split_merge, MergeRule};
use kg_datasets::TWITTER;
use kg_metrics::mean_rank;
use kg_votes::{solve_multi_votes, MultiVoteOptions};
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse(0.1);
    let _telemetry = args.telemetry_guard();
    println!("Ablations (scale {}, seed {})\n", args.scale, args.seed);

    merge_rule_ablation(&args);
    lambda_ablation(&args);
    steepness_ablation(&args);
    solver_ablation(&args);
}

fn merge_rule_ablation(args: &Args) {
    // A deliberately dense workload (small graph, many votes) so clusters
    // overlap and the merge rules actually disagree.
    println!("1. merge rule (split-and-merge, dense Twitter clone)\n");
    let scenario = vote_scenario(&TWITTER, args.scaled(60, 24), 0.015, args.seed);
    let mut t = Table::new(&["rule", "Omega_avg", "conflicts", "time"]);
    for (name, rule) in [
        ("voting-extremal (paper)", MergeRule::VotingExtremal),
        ("weighted mean", MergeRule::WeightedMean),
        ("last writer", MergeRule::LastWriter),
    ] {
        let mut opts = experiment_split_merge_opts(Duration::from_secs(60), 1);
        opts.merge_rule = rule;
        let mut g = scenario.graph.clone();
        let started = Instant::now();
        let rep = solve_split_merge(&mut g, &scenario.votes, &opts);
        t.row(&[
            name.into(),
            f2(rep.report.omega_avg()),
            format!("{}", rep.merge_conflicts),
            dur(started.elapsed()),
        ]);
    }
    t.print();
    println!();
}

fn lambda_ablation(args: &Args) {
    println!("2. lambda1 (drift) vs lambda2 (satisfaction), user study\n");
    let mut t = Table::new(&["lambda1", "lambda2", "votes Omega_avg", "test Ravg"]);
    // One study, several objectives.
    let o = run_user_study(args.scale, args.seed);
    for (l1, l2) in [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1), (0.99, 0.01)] {
        let mut opts = MultiVoteOptions::default();
        opts.params.lambda1 = l1;
        opts.params.lambda2 = l2;
        let mut g = o.study.deployed.clone();
        let rep = solve_multi_votes(&mut g, &o.study.votes, &opts);
        let ranks = o.study.test_ranks(&g, &o.sim);
        t.row(&[
            format!("{l1}"),
            format!("{l2}"),
            f2(rep.omega_avg()),
            f2(mean_rank(&ranks)),
        ]);
    }
    t.print();
    println!();
}

fn steepness_ablation(args: &Args) {
    println!("3. sigmoid steepness w (paper uses 300), user study\n");
    let o = run_user_study(args.scale, args.seed);
    let mut t = Table::new(&["w", "votes Omega_avg", "test Ravg"]);
    for w in [10.0, 50.0, 300.0, 1000.0] {
        let mut opts = MultiVoteOptions::default();
        opts.params.steepness = w;
        let mut g = o.study.deployed.clone();
        let rep = solve_multi_votes(&mut g, &o.study.votes, &opts);
        let ranks = o.study.test_ranks(&g, &o.sim);
        t.row(&[format!("{w}"), f2(rep.omega_avg()), f2(mean_rank(&ranks))]);
    }
    t.print();
    println!();
}

fn solver_ablation(args: &Args) {
    println!("4. solver / formulation, user study\n");
    let o = run_user_study(args.scale, args.seed);
    let mut t = Table::new(&["configuration", "votes Omega_avg", "test Ravg", "time"]);
    let cases: Vec<(&str, MultiVoteOptions)> = vec![
        (
            "penalty + eliminated form (default)",
            MultiVoteOptions::default(),
        ),
        (
            "auglag + eliminated form",
            MultiVoteOptions {
                use_auglag: true,
                ..Default::default()
            },
        ),
        (
            "auglag + deviation variables",
            MultiVoteOptions {
                params: kg_votes::encode::MultiParams {
                    deviation_vars: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        ),
        (
            "penalty + projected gradient inner",
            MultiVoteOptions {
                inner: kg_votes::InnerOpt::ProjGrad,
                ..Default::default()
            },
        ),
        (
            "penalty + L-BFGS inner",
            MultiVoteOptions {
                inner: kg_votes::InnerOpt::Lbfgs,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in cases {
        let mut g = o.study.deployed.clone();
        let started = Instant::now();
        let rep = solve_multi_votes(&mut g, &o.study.votes, &opts);
        let ranks = o.study.test_ranks(&g, &o.sim);
        t.row(&[
            name.into(),
            f2(rep.omega_avg()),
            f2(mean_rank(&ranks)),
            dur(started.elapsed()),
        ]);
    }
    t.print();
}
