//! Vote-volume sensitivity (beyond the paper): how much feedback does the
//! multi-vote solution need before held-out quality saturates?
//!
//! Runs the simulated user study once, then optimizes with growing
//! prefixes of the vote set and reports held-out `R_avg` / `MRR` per
//! prefix, plus the effect of majority-aggregating duplicated votes.
//!
//! Run: `cargo run -p kg-bench --release --bin sensitivity [--scale f] [--seed u]`

use kg_bench::table::{f2, f3};
use kg_bench::{Args, Table};
use kg_datasets::{simulate_user_study, UserStudyConfig};
use kg_metrics::{mean_rank, mrr};
use kg_sim::SimilarityConfig;
use kg_votes::{aggregate_votes, solve_multi_votes, MultiVoteOptions, VoteSet};

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Vote-volume sensitivity (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let scaled = |full: usize, min: usize| ((full as f64 * args.scale).round() as usize).max(min);
    let cfg = UserStudyConfig {
        entities: scaled(1_663, 60),
        edges: scaled(17_591, 400),
        n_docs: scaled(2_379, 40),
        n_votes: scaled(100, 12),
        n_test: scaled(100, 12),
        top_k: 10,
        link_degree: 4,
        noise: 0.6,
        corrupt_fraction: 0.2,
        test_overlap: 0.9,
        sim: SimilarityConfig::default(),
        seed: args.seed,
    };
    let study = simulate_user_study(&cfg);
    let baseline = study.test_ranks(&study.deployed, &cfg.sim);
    println!(
        "baseline (no votes): Ravg {} MRR {}\n",
        f2(mean_rank(&baseline)),
        f3(mrr(&baseline))
    );

    let total = study.votes.len();
    let mut t = Table::new(&["votes used", "test Ravg", "test MRR", "votes satisfied"]);
    for percent in [10usize, 25, 50, 75, 100] {
        let n = (total * percent / 100).max(1);
        let subset = VoteSet::from_votes(study.votes.votes[..n].to_vec());
        let mut g = study.deployed.clone();
        let report = solve_multi_votes(&mut g, &subset, &MultiVoteOptions::default());
        let ranks = study.test_ranks(&g, &cfg.sim);
        t.row(&[
            format!("{n} ({percent}%)"),
            f2(mean_rank(&ranks)),
            f3(mrr(&ranks)),
            format!("{}/{}", report.satisfied_votes(), report.outcomes.len()),
        ]);
    }
    t.print();

    // Duplicate the vote set three times (three users answering the same
    // questions) and compare raw vs aggregated processing.
    println!("\nduplicated traffic (3 users x same questions): raw vs aggregated\n");
    let mut tripled = VoteSet::new();
    for _ in 0..3 {
        for v in &study.votes.votes {
            tripled.push(v.clone());
        }
    }
    let mut t = Table::new(&["input", "votes encoded", "test Ravg", "solve time"]);
    for (name, votes) in [
        ("raw (3x duplicates)", tripled.clone()),
        ("aggregated", aggregate_votes(&tripled).0),
    ] {
        let mut g = study.deployed.clone();
        let started = std::time::Instant::now();
        let _ = solve_multi_votes(&mut g, &votes, &MultiVoteOptions::default());
        let elapsed = started.elapsed();
        let ranks = study.test_ranks(&g, &cfg.sim);
        t.row(&[
            name.to_string(),
            format!("{}", votes.len()),
            f2(mean_rank(&ranks)),
            kg_bench::table::dur(elapsed),
        ]);
    }
    t.print();
}
