//! Table VI regenerator: average elapsed time per query of similarity
//! evaluation as the answer set grows.
//!
//! Compares the per-answer random-walk evaluation (cost linear in `|A|`)
//! against the extended inverse P-distance (one frontier DP per query,
//! cost independent of `|A|`). Paper reference: random walk 3.0 → 28 s as
//! `|A|` goes 5,000 → 40,000 while the extended inverse P-distance stays
//! at 2.6 → 3.0 s. The reproduction target is the *scaling shape*: linear
//! growth vs near-flat.
//!
//! Run: `cargo run -p kg-bench --release --bin table6_similarity_time [--scale f] [--seed u]`

use kg_bench::table::dur;
use kg_bench::{Args, Table};
use kg_datasets::{generate_votes, synthesize, VoteGenConfig, TAOBAO};
use kg_sim::topk::rank_answers;
use kg_sim::{random_walk_similarity, SimilarityConfig};
use std::time::Instant;

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();
    println!(
        "Table VI — average elapsed time per query vs |A| (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let sim = SimilarityConfig::default();
    let answer_counts: Vec<usize> = [5_000usize, 10_000, 20_000, 40_000]
        .iter()
        .map(|&n| args.scaled(n, 50))
        .collect();
    let n_queries = 5usize;

    let mut t = Table::new(&["|A|", "Random Walk [5]", "Extended Inverse P-Distance"]);
    for &na in &answer_counts {
        // A fresh augmented graph per answer-set size, on a Taobao-shaped
        // base large enough to host the answers.
        let base = synthesize(&TAOBAO, (args.scale * 4.0).min(1.0), args.seed);
        let cfg = VoteGenConfig {
            n_queries,
            n_answers: na,
            subgraph_nodes: base.node_count(),
            link_degree: 4,
            top_k: 20,
            sim,
            seed: args.seed,
            ..Default::default()
        };
        let world = generate_votes(&base, &cfg);

        // Random-walk baseline: similarity of every answer, per query.
        let started = Instant::now();
        for &q in &world.queries {
            let sims = random_walk_similarity(&world.graph, q, &world.answers, &sim);
            std::hint::black_box(sims);
        }
        let rw = started.elapsed() / n_queries as u32;

        // Extended inverse P-distance: one DP ranks all answers.
        let started = Instant::now();
        for &q in &world.queries {
            let ranked = rank_answers(&world.graph, q, &world.answers, &sim, 20);
            std::hint::black_box(ranked);
        }
        let pd = started.elapsed() / n_queries as u32;

        t.row(&[format!("{na}"), dur(rw), dur(pd)]);
    }
    t.print();
    println!("\nExpected shape: the random-walk column grows linearly with |A|,");
    println!("the extended inverse P-distance column stays (near-)flat.");
}
