//! Serving benchmark: replays N optimize rounds over a fig6-style vote
//! workload and, after every round, re-ranks the full query universe two
//! ways —
//!
//! * **uncached**: a full [`kg_sim::rank_answers`] recompute for every
//!   query, every round (what the pipeline did before `kg-serve`);
//! * **cached**: one [`kg_serve::ScoreServer::rank_batch`] call, which
//!   invalidates only the queries within `L − 1` hops of the round's
//!   changed edges and recomputes just those.
//!
//! Both arms run on the *same* graph states, and every cached ranking is
//! asserted byte-identical to the uncached one, so the speedup is never
//! bought with staleness. Results land in `BENCH_serve.json` (repo root
//! when run through `scripts/bench_serve.sh`).
//!
//! A second phase sweeps *edge churn* (0.1%, 1%, 10% of edges perturbed
//! per round) and re-ranks three ways — uncached, cached with the old
//! evict-and-recompute sync, cached with `delta_phi` repair — writing
//! the per-level costs and the repair/evict crossover into the
//! `churn_sweep` section of the JSON. `--enforce-delta` turns the
//! 1%-churn numbers into a hard gate: repairs must actually run, beat
//! same-run full recompute, and be >= 3x faster than the seed's
//! full-recompute cached path.
//!
//! Run: `cargo run -p kg-bench --release --bin serve
//!       [--scale f] [--seed u] [--votes n] [--rounds n] [--workers n]
//!       [--churn-rounds n] [--enforce-delta] [--out path]`

use kg_bench::setups::{experiment_multi_opts, vote_scenario};
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_datasets::TWITTER;
use kg_graph::{EdgeId, KnowledgeGraph, NodeId};
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::{rank_answers, BatchQuery, DeltaConfig, SimilarityConfig};
use kg_votes::{solve_multi_votes, VoteSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Per-round measurement: both arms' re-rank wall-clock plus how much of
/// the cache the round's weight changes actually touched.
#[derive(Debug, Serialize)]
struct RoundRow {
    round: usize,
    votes: usize,
    edges_changed: usize,
    uncached_ms: f64,
    cached_ms: f64,
    invalidated: u64,
    recomputed: u64,
}

/// Interpolated latency quantiles of one arm's per-round re-rank times
/// (within-bucket interpolation over a log-scale
/// [`kg_telemetry::Histogram`] — the telemetry exporters' summarization,
/// so bench numbers and production dumps are comparable).
#[derive(Debug, Serialize)]
struct LatencySummary {
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

impl LatencySummary {
    fn of(h: &kg_telemetry::Histogram) -> LatencySummary {
        LatencySummary {
            p50_ms: h.quantile(0.50) / 1e6,
            p90_ms: h.quantile(0.90) / 1e6,
            p99_ms: h.quantile(0.99) / 1e6,
        }
    }
}

/// One churn level of the delta-repair sweep: the same random edge
/// perturbations re-ranked three ways (full recompute, cached with
/// repair disabled, cached with delta repair), all asserted
/// byte-identical.
#[derive(Debug, Serialize)]
struct ChurnRow {
    /// Fraction of all edges perturbed per round.
    churn: f64,
    edges_per_round: usize,
    rounds: usize,
    /// Mean per-round re-rank cost of each arm.
    uncached_ms: f64,
    evict_ms: f64,
    repair_ms: f64,
    /// `evict_ms / repair_ms` — how much repairing entries in place beats
    /// evicting and recomputing them.
    repair_speedup: f64,
    /// Entries patched through `delta_phi` across the sweep.
    repaired: u64,
    /// Entries the repair declined (fallback) and recomputed instead.
    fallback_evicted: u64,
}

/// The seed benchmark's full-recompute cached path: `cached_ms` from the
/// committed `BENCH_serve.json` before the delta-repair path existed
/// (ROADMAP's "cached 2.3 ms/round" figure). The sweep gates the
/// repair path's 1%-churn cost against it.
const SEED_CACHED_MS: f64 = 2.3366;

/// The delta-repair churn sweep: where incremental repair stops paying
/// off as more of the graph changes per round. `crossover_churn` is the
/// largest measured churn level at which repair still beats eviction —
/// the data behind `DeltaConfig::bulk_churn_ceiling`'s default. The
/// sweep itself runs with that ceiling lifted, so the numbers measure
/// repair economics rather than the guard derived from them.
#[derive(Debug, Serialize)]
struct ChurnSweep {
    rows: Vec<ChurnRow>,
    crossover_churn: Option<f64>,
    /// The frozen pre-delta cached baseline ([`SEED_CACHED_MS`]).
    seed_cached_ms: f64,
    /// Mean per-round cost of the repair arm at the 1% churn level.
    repair_1pct_ms: f64,
    /// [`SEED_CACHED_MS`] / `repair_1pct_ms` — the acceptance headline.
    repair_1pct_vs_seed_cached: f64,
    /// Same-run full recompute / `repair_1pct_ms`.
    repair_1pct_vs_uncached: f64,
}

/// The emitted `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct ServeBench {
    dataset: String,
    scale: f64,
    seed: u64,
    votes: usize,
    rounds: usize,
    batch: usize,
    queries: usize,
    k: usize,
    workers: usize,
    warmup_ms: f64,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    uncached_latency: LatencySummary,
    cached_latency: LatencySummary,
    stats: kg_serve::ServeStats,
    per_round: Vec<RoundRow>,
    churn_sweep: ChurnSweep,
}

/// Runs the churn sweep on the post-optimization graph: for each churn
/// level, perturb that fraction of edges per round and re-rank the full
/// query universe uncached, cached-with-eviction, and
/// cached-with-repair. Every arm is asserted byte-identical, so the
/// repair speedup is never bought with staleness.
#[allow(clippy::too_many_arguments)]
fn churn_sweep(
    graph: &KnowledgeGraph,
    questions: &[(NodeId, Vec<NodeId>)],
    requests: &[BatchQuery<'_>],
    sim: SimilarityConfig,
    delta: DeltaConfig,
    workers: usize,
    k: usize,
    rounds: usize,
    seed: u64,
) -> ChurnSweep {
    let mut t = Table::new(&[
        "churn",
        "edges/round",
        "uncached ms",
        "evict ms",
        "repair ms",
        "speedup",
        "repaired",
        "fallback",
    ]);
    let mut rows = Vec::new();
    for &churn in &[0.001, 0.01, 0.1] {
        let edges_per_round = ((graph.edge_count() as f64 * churn).ceil() as usize).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (churn * 1e6) as u64);
        let mut sweep_graph = graph.clone();
        let mut repair_server = ScoreServer::new(ServeConfig {
            sim,
            workers,
            // Lift the bulk-churn ceiling: this sweep produces the data
            // the ceiling's default is derived from, so it must measure
            // repair even past the crossover.
            delta: if delta.enabled {
                delta.with_bulk_churn_ceiling(1.0)
            } else {
                delta
            },
            ..Default::default()
        });
        let mut evict_server = ScoreServer::new(ServeConfig {
            sim,
            workers,
            delta: DeltaConfig::disabled(),
            ..Default::default()
        });
        repair_server.rank_batch(&sweep_graph, requests);
        evict_server.rank_batch(&sweep_graph, requests);
        let mut uncached_total = Duration::ZERO;
        let mut evict_total = Duration::ZERO;
        let mut repair_total = Duration::ZERO;
        for round in 0..rounds {
            for _ in 0..edges_per_round {
                let e = EdgeId(rng.gen_range(0..sweep_graph.edge_count() as u32));
                let w = sweep_graph.weight(e);
                let next = (w * rng.gen_range(0.6f64..1.4)).clamp(1e-6, 8.0);
                sweep_graph.set_weight(e, next).unwrap();
            }
            let started = Instant::now();
            let uncached: Vec<_> = questions
                .iter()
                .map(|(q, answers)| rank_answers(&sweep_graph, *q, answers, &sim, k))
                .collect();
            uncached_total += started.elapsed();

            let started = Instant::now();
            let repaired = repair_server.rank_batch(&sweep_graph, requests);
            repair_total += started.elapsed();

            let started = Instant::now();
            let evicted = evict_server.rank_batch(&sweep_graph, requests);
            evict_total += started.elapsed();

            assert_eq!(
                repaired, uncached,
                "repair arm diverged (churn {churn}, round {round})"
            );
            assert_eq!(
                evicted, uncached,
                "evict arm diverged (churn {churn}, round {round})"
            );
        }
        let stats = repair_server.stats();
        let evict_ms = ms(evict_total) / rounds as f64;
        let repair_ms = ms(repair_total) / rounds as f64;
        let row = ChurnRow {
            churn,
            edges_per_round,
            rounds,
            uncached_ms: ms(uncached_total) / rounds as f64,
            evict_ms,
            repair_ms,
            repair_speedup: if repair_ms > 0.0 {
                evict_ms / repair_ms
            } else {
                f64::INFINITY
            },
            repaired: stats.repaired,
            fallback_evicted: stats.invalidated,
        };
        t.row(&[
            format!("{churn}"),
            format!("{edges_per_round}"),
            f2(row.uncached_ms),
            f2(row.evict_ms),
            f2(row.repair_ms),
            format!("{:.2}x", row.repair_speedup),
            format!("{}", row.repaired),
            format!("{}", row.fallback_evicted),
        ]);
        rows.push(row);
    }
    t.print();
    let crossover_churn = rows
        .iter()
        .filter(|r| r.repaired > 0 && r.repair_speedup > 1.0)
        .map(|r| r.churn)
        .fold(None, |acc: Option<f64>, c| {
            Some(acc.map_or(c, |a| a.max(c)))
        });
    let one_pct = rows
        .iter()
        .find(|r| r.churn == 0.01)
        .expect("sweep includes the 1% churn level");
    let repair_1pct_ms = one_pct.repair_ms;
    let repair_1pct_vs_uncached = if repair_1pct_ms > 0.0 {
        one_pct.uncached_ms / repair_1pct_ms
    } else {
        f64::INFINITY
    };
    ChurnSweep {
        rows,
        crossover_churn,
        seed_cached_ms: SEED_CACHED_MS,
        repair_1pct_ms,
        repair_1pct_vs_seed_cached: if repair_1pct_ms > 0.0 {
            SEED_CACHED_MS / repair_1pct_ms
        } else {
            f64::INFINITY
        },
        repair_1pct_vs_uncached,
    }
}

fn flag(args: &Args, name: &str) -> Option<String> {
    args.rest
        .iter()
        .position(|a| a == name)
        .and_then(|p| args.rest.get(p + 1).cloned())
}

fn num_flag(args: &Args, name: &str, default: usize) -> usize {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

/// `--max-churn f` overrides the repair budget of every delta-enabled
/// server in the run (negative disables delta repair entirely) —
/// the knob behind the sweep that data-derives `DeltaConfig::max_churn`.
fn delta_flag(args: &Args) -> DeltaConfig {
    match flag(args, "--max-churn") {
        None => DeltaConfig::default(),
        Some(v) => {
            let f: f64 = v
                .parse()
                .unwrap_or_else(|_| panic!("--max-churn wants a number"));
            if f < 0.0 {
                DeltaConfig::disabled()
            } else {
                DeltaConfig::default().with_max_churn(f)
            }
        }
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();
    let n_votes = num_flag(&args, "--votes", 128);
    let rounds = num_flag(&args, "--rounds", 32).max(1);
    let workers = num_flag(&args, "--workers", 1).max(1);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let k = 10usize;

    println!(
        "Serving bench — {rounds} optimize rounds, cached vs uncached re-ranking \
         (scale {}, seed {})\n",
        args.scale, args.seed
    );

    let scenario = vote_scenario(&TWITTER, n_votes, args.scale, args.seed);
    let mut graph = scenario.graph.clone();
    let sim = SimilarityConfig::default();

    // The query universe: every distinct voted question, in arrival
    // order — the set a deployment would keep warm.
    let mut questions: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for v in &scenario.votes.votes {
        if !questions.iter().any(|(q, _)| *q == v.query) {
            questions.push((v.query, v.answers.clone()));
        }
    }
    let requests: Vec<BatchQuery<'_>> = questions
        .iter()
        .map(|(q, answers)| BatchQuery {
            query: *q,
            answers,
            k,
        })
        .collect();
    let batch = scenario.votes.len().div_ceil(rounds);
    println!(
        "workload: {} votes over {} queries ({} per round)\n",
        scenario.votes.len(),
        questions.len(),
        batch
    );

    let mut server = ScoreServer::new(ServeConfig {
        sim,
        workers,
        delta: delta_flag(&args),
        ..Default::default()
    });

    // Warm both arms once on the pristine graph (the cached arm fills its
    // cache; the uncached arm has no state to warm, its pass is just the
    // baseline cost of a cold full recompute).
    let started = Instant::now();
    server.rank_batch(&graph, &requests);
    let warmup = started.elapsed();

    let budget = Duration::from_secs(60);
    let opts = experiment_multi_opts(budget);
    let mut per_round = Vec::new();
    let mut uncached_total = Duration::ZERO;
    let mut cached_total = Duration::ZERO;
    let uncached_hist = kg_telemetry::Histogram::standalone();
    let cached_hist = kg_telemetry::Histogram::standalone();
    let mut t = Table::new(&[
        "round",
        "votes",
        "edges",
        "uncached ms",
        "cached ms",
        "invalidated",
        "recomputed",
    ]);
    for (round, chunk) in scenario.votes.votes.chunks(batch).enumerate() {
        let version_before = graph.version();
        let report = solve_multi_votes(&mut graph, &VoteSet::from_votes(chunk.to_vec()), &opts);
        let edges_changed = graph.changes_since(version_before).len();

        let started = Instant::now();
        let uncached: Vec<_> = questions
            .iter()
            .map(|(q, answers)| rank_answers(&graph, *q, answers, &sim, k))
            .collect();
        let uncached_time = started.elapsed();

        let stats_before = server.stats();
        let started = Instant::now();
        let cached = server.rank_batch(&graph, &requests);
        let cached_time = started.elapsed();
        let stats_after = server.stats();

        // Coherence gate: a stale ranking disqualifies the measurement.
        assert_eq!(cached, uncached, "cache diverged on round {round}");
        let _ = report;

        uncached_total += uncached_time;
        cached_total += cached_time;
        uncached_hist.record_duration(uncached_time);
        cached_hist.record_duration(cached_time);
        let invalidated = stats_after.invalidated - stats_before.invalidated;
        let recomputed = stats_after.misses - stats_before.misses;
        t.row(&[
            format!("{round}"),
            format!("{}", chunk.len()),
            format!("{edges_changed}"),
            f2(ms(uncached_time)),
            f2(ms(cached_time)),
            format!("{invalidated}"),
            format!("{recomputed}"),
        ]);
        per_round.push(RoundRow {
            round,
            votes: chunk.len(),
            edges_changed,
            uncached_ms: ms(uncached_time),
            cached_ms: ms(cached_time),
            invalidated,
            recomputed,
        });
    }
    t.print();

    let speedup = if cached_total.is_zero() {
        f64::INFINITY
    } else {
        uncached_total.as_secs_f64() / cached_total.as_secs_f64()
    };
    let uncached_latency = LatencySummary::of(&uncached_hist);
    let cached_latency = LatencySummary::of(&cached_hist);
    println!(
        "\ntotal re-rank: uncached {} ms, cached {} ms — {:.2}x speedup",
        f2(ms(uncached_total)),
        f2(ms(cached_total)),
        speedup
    );
    println!(
        "per-round latency (interpolated): uncached p50 {} / p90 {} / p99 {} ms, \
         cached p50 {} / p90 {} / p99 {} ms",
        f2(uncached_latency.p50_ms),
        f2(uncached_latency.p90_ms),
        f2(uncached_latency.p99_ms),
        f2(cached_latency.p50_ms),
        f2(cached_latency.p90_ms),
        f2(cached_latency.p99_ms),
    );

    println!(
        "\nchurn sweep — {} rounds per level, repair vs evict vs uncached:\n",
        num_flag(&args, "--churn-rounds", 8)
    );
    let sweep = churn_sweep(
        &graph,
        &questions,
        &requests,
        sim,
        delta_flag(&args),
        workers,
        k,
        num_flag(&args, "--churn-rounds", 8).max(1),
        args.seed,
    );
    match sweep.crossover_churn {
        Some(c) => println!("\nrepair beats eviction up to {c} edge churn per round"),
        None => println!("\nrepair never beat eviction on this workload"),
    }
    println!(
        "repair at 1% churn: {} ms/round — {:.1}x vs the seed's {} ms \
         full-recompute cached path, {:.1}x vs same-run full recompute",
        f2(sweep.repair_1pct_ms),
        sweep.repair_1pct_vs_seed_cached,
        f2(sweep.seed_cached_ms),
        sweep.repair_1pct_vs_uncached,
    );
    if args.rest.iter().any(|a| a == "--enforce-delta") {
        let one_pct = sweep
            .rows
            .iter()
            .find(|r| r.churn == 0.01)
            .expect("sweep includes the 1% churn level");
        // Byte equality of all three arms is asserted inside the sweep
        // itself; this gate holds the *performance* claims.
        assert!(
            one_pct.repaired > 0,
            "--enforce-delta: no entries were repaired at 1% churn"
        );
        assert!(
            sweep.repair_1pct_vs_seed_cached >= 3.0,
            "--enforce-delta: repair at 1% churn must be >= 3x faster than \
             the seed's {} ms full-recompute cached path, measured {:.2}x \
             ({} ms per round)",
            f2(sweep.seed_cached_ms),
            sweep.repair_1pct_vs_seed_cached,
            f2(sweep.repair_1pct_ms),
        );
        assert!(
            sweep.repair_1pct_vs_uncached > 1.0,
            "--enforce-delta: repair at 1% churn must beat same-run full \
             recompute, measured {:.2}x ({} ms vs {} ms per round)",
            sweep.repair_1pct_vs_uncached,
            f2(sweep.repair_1pct_ms),
            f2(one_pct.uncached_ms),
        );
        println!(
            "--enforce-delta OK: {:.2}x vs seed cached path, {:.2}x vs full \
             recompute at 1% churn",
            sweep.repair_1pct_vs_seed_cached, sweep.repair_1pct_vs_uncached,
        );
    }

    let bench = ServeBench {
        dataset: scenario.name.clone(),
        scale: args.scale,
        seed: args.seed,
        votes: scenario.votes.len(),
        rounds: per_round.len(),
        batch,
        queries: questions.len(),
        k,
        workers,
        warmup_ms: ms(warmup),
        uncached_ms: ms(uncached_total),
        cached_ms: ms(cached_total),
        speedup,
        uncached_latency,
        cached_latency,
        stats: server.stats(),
        per_round,
        churn_sweep: sweep,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!("wrote {out_path}");
}
