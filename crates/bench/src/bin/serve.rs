//! Serving benchmark: replays N optimize rounds over a fig6-style vote
//! workload and, after every round, re-ranks the full query universe two
//! ways —
//!
//! * **uncached**: a full [`kg_sim::rank_answers`] recompute for every
//!   query, every round (what the pipeline did before `kg-serve`);
//! * **cached**: one [`kg_serve::ScoreServer::rank_batch`] call, which
//!   invalidates only the queries within `L − 1` hops of the round's
//!   changed edges and recomputes just those.
//!
//! Both arms run on the *same* graph states, and every cached ranking is
//! asserted byte-identical to the uncached one, so the speedup is never
//! bought with staleness. Results land in `BENCH_serve.json` (repo root
//! when run through `scripts/bench_serve.sh`).
//!
//! Run: `cargo run -p kg-bench --release --bin serve
//!       [--scale f] [--seed u] [--votes n] [--rounds n] [--workers n] [--out path]`

use kg_bench::setups::{experiment_multi_opts, vote_scenario};
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_datasets::TWITTER;
use kg_graph::NodeId;
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::{rank_answers, BatchQuery, SimilarityConfig};
use kg_votes::{solve_multi_votes, VoteSet};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Per-round measurement: both arms' re-rank wall-clock plus how much of
/// the cache the round's weight changes actually touched.
#[derive(Debug, Serialize)]
struct RoundRow {
    round: usize,
    votes: usize,
    edges_changed: usize,
    uncached_ms: f64,
    cached_ms: f64,
    invalidated: u64,
    recomputed: u64,
}

/// Interpolated latency quantiles of one arm's per-round re-rank times
/// (within-bucket interpolation over a log-scale
/// [`kg_telemetry::Histogram`] — the telemetry exporters' summarization,
/// so bench numbers and production dumps are comparable).
#[derive(Debug, Serialize)]
struct LatencySummary {
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

impl LatencySummary {
    fn of(h: &kg_telemetry::Histogram) -> LatencySummary {
        LatencySummary {
            p50_ms: h.quantile(0.50) / 1e6,
            p90_ms: h.quantile(0.90) / 1e6,
            p99_ms: h.quantile(0.99) / 1e6,
        }
    }
}

/// The emitted `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct ServeBench {
    dataset: String,
    scale: f64,
    seed: u64,
    votes: usize,
    rounds: usize,
    batch: usize,
    queries: usize,
    k: usize,
    workers: usize,
    warmup_ms: f64,
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    uncached_latency: LatencySummary,
    cached_latency: LatencySummary,
    stats: kg_serve::ServeStats,
    per_round: Vec<RoundRow>,
}

fn flag(args: &Args, name: &str) -> Option<String> {
    args.rest
        .iter()
        .position(|a| a == name)
        .and_then(|p| args.rest.get(p + 1).cloned())
}

fn num_flag(args: &Args, name: &str, default: usize) -> usize {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = Args::parse(0.05);
    let _telemetry = args.telemetry_guard();
    let n_votes = num_flag(&args, "--votes", 128);
    let rounds = num_flag(&args, "--rounds", 32).max(1);
    let workers = num_flag(&args, "--workers", 1).max(1);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let k = 10usize;

    println!(
        "Serving bench — {rounds} optimize rounds, cached vs uncached re-ranking \
         (scale {}, seed {})\n",
        args.scale, args.seed
    );

    let scenario = vote_scenario(&TWITTER, n_votes, args.scale, args.seed);
    let mut graph = scenario.graph.clone();
    let sim = SimilarityConfig::default();

    // The query universe: every distinct voted question, in arrival
    // order — the set a deployment would keep warm.
    let mut questions: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for v in &scenario.votes.votes {
        if !questions.iter().any(|(q, _)| *q == v.query) {
            questions.push((v.query, v.answers.clone()));
        }
    }
    let requests: Vec<BatchQuery<'_>> = questions
        .iter()
        .map(|(q, answers)| BatchQuery {
            query: *q,
            answers,
            k,
        })
        .collect();
    let batch = scenario.votes.len().div_ceil(rounds);
    println!(
        "workload: {} votes over {} queries ({} per round)\n",
        scenario.votes.len(),
        questions.len(),
        batch
    );

    let mut server = ScoreServer::new(ServeConfig {
        sim,
        workers,
        ..Default::default()
    });

    // Warm both arms once on the pristine graph (the cached arm fills its
    // cache; the uncached arm has no state to warm, its pass is just the
    // baseline cost of a cold full recompute).
    let started = Instant::now();
    server.rank_batch(&graph, &requests);
    let warmup = started.elapsed();

    let budget = Duration::from_secs(60);
    let opts = experiment_multi_opts(budget);
    let mut per_round = Vec::new();
    let mut uncached_total = Duration::ZERO;
    let mut cached_total = Duration::ZERO;
    let uncached_hist = kg_telemetry::Histogram::standalone();
    let cached_hist = kg_telemetry::Histogram::standalone();
    let mut t = Table::new(&[
        "round",
        "votes",
        "edges",
        "uncached ms",
        "cached ms",
        "invalidated",
        "recomputed",
    ]);
    for (round, chunk) in scenario.votes.votes.chunks(batch).enumerate() {
        let version_before = graph.version();
        let report = solve_multi_votes(&mut graph, &VoteSet::from_votes(chunk.to_vec()), &opts);
        let edges_changed = graph.changes_since(version_before).len();

        let started = Instant::now();
        let uncached: Vec<_> = questions
            .iter()
            .map(|(q, answers)| rank_answers(&graph, *q, answers, &sim, k))
            .collect();
        let uncached_time = started.elapsed();

        let stats_before = server.stats();
        let started = Instant::now();
        let cached = server.rank_batch(&graph, &requests);
        let cached_time = started.elapsed();
        let stats_after = server.stats();

        // Coherence gate: a stale ranking disqualifies the measurement.
        assert_eq!(cached, uncached, "cache diverged on round {round}");
        let _ = report;

        uncached_total += uncached_time;
        cached_total += cached_time;
        uncached_hist.record_duration(uncached_time);
        cached_hist.record_duration(cached_time);
        let invalidated = stats_after.invalidated - stats_before.invalidated;
        let recomputed = stats_after.misses - stats_before.misses;
        t.row(&[
            format!("{round}"),
            format!("{}", chunk.len()),
            format!("{edges_changed}"),
            f2(ms(uncached_time)),
            f2(ms(cached_time)),
            format!("{invalidated}"),
            format!("{recomputed}"),
        ]);
        per_round.push(RoundRow {
            round,
            votes: chunk.len(),
            edges_changed,
            uncached_ms: ms(uncached_time),
            cached_ms: ms(cached_time),
            invalidated,
            recomputed,
        });
    }
    t.print();

    let speedup = if cached_total.is_zero() {
        f64::INFINITY
    } else {
        uncached_total.as_secs_f64() / cached_total.as_secs_f64()
    };
    let uncached_latency = LatencySummary::of(&uncached_hist);
    let cached_latency = LatencySummary::of(&cached_hist);
    println!(
        "\ntotal re-rank: uncached {} ms, cached {} ms — {:.2}x speedup",
        f2(ms(uncached_total)),
        f2(ms(cached_total)),
        speedup
    );
    println!(
        "per-round latency (interpolated): uncached p50 {} / p90 {} / p99 {} ms, \
         cached p50 {} / p90 {} / p99 {} ms",
        f2(uncached_latency.p50_ms),
        f2(uncached_latency.p90_ms),
        f2(uncached_latency.p99_ms),
        f2(cached_latency.p50_ms),
        f2(cached_latency.p90_ms),
        f2(cached_latency.p99_ms),
    );

    let bench = ServeBench {
        dataset: scenario.name.clone(),
        scale: args.scale,
        seed: args.seed,
        votes: scenario.votes.len(),
        rounds: per_round.len(),
        batch,
        queries: questions.len(),
        k,
        workers,
        warmup_ms: ms(warmup),
        uncached_ms: ms(uncached_total),
        cached_ms: ms(cached_total),
        speedup,
        uncached_latency,
        cached_latency,
        stats: server.stats(),
        per_round,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!("wrote {out_path}");
}
